"""A timed pub-sub overlay: Siena brokers on simulated CPUs and links.

``SimulatedPubSub`` reproduces the experimental setup of Section 5.2: a
complete ``arity``-ary tree of broker nodes whose links carry the WAN
latencies of the generated topology, the publisher at the root, and
subscribers attached to leaf brokers.  Per-message processing costs (event
matching, tokenized matching, key derivation, encryption/decryption) are
injected by the harness as cost functions, so the same overlay measures
plain Siena and every PSGuard variant.

The overlay optionally runs a **reliable at-least-once delivery stack**
on top of a :class:`~repro.net.faults.FaultInjector`:

- per-hop acknowledgements with retransmission on timeout (exponential
  backoff plus jitter, bounded by a retry budget with dead-letter
  accounting);
- hop-level duplicate suppression, so retransmissions never re-enter the
  routing fabric twice;
- a heartbeat failure detector: each broker pings its tree neighbours
  and marks them down after consecutive misses, parking outbound events
  instead of burning the retry budget against a dead peer;
- restart recovery: heartbeats carry an incarnation number, so
  neighbours notice a broker that lost its volatile routing state and
  replay subscription state (children re-announce their forwarded
  filter tables; locally attached clients re-subscribe).

With ``reliability=None`` (the default) the overlay is the original
fire-and-forget transport -- under a fault plan that is the chaos
baseline.  When the heartbeat loop is running the event queue never
drains, so drive the simulator with ``sim.run(until=...)``.

Passing a :class:`~repro.flow.FlowControlPolicy` activates the
**overload-protection stack** on top of either transport:

- every broker gets a bounded, priority-classed ingress queue
  (:class:`~repro.flow.BoundedPriorityQueue`); a service pump feeds the
  broker CPU one event at a time, so the unbounded ``ProcessingNode``
  backlog of the unprotected overlay collapses to the explicit queue;
- every directed broker link gets a :class:`~repro.flow.CreditGate`
  plus a bounded egress buffer: data sends consume a credit, the
  receiver returns it when it *dequeues* the message for service
  (credit grants ride the instantaneous control plane, like
  subscriptions), and senders without credits queue -- or shed -- at
  egress instead of overrunning a slow peer;
- overflow sheds follow the policy's shed discipline and always hit
  the worst priority class present; every shed feeds the per-broker
  :class:`~repro.flow.OverloadBreaker`, which degrades best-effort
  admission at the root while open;
- sheds are surfaced to publishers via :meth:`SimulatedPubSub.on_shed`
  (the AIMD overload signal) and to operators via the ``flow_*``
  metric families.
"""

from __future__ import annotations

import random
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.flow.breaker import OverloadBreaker
from repro.flow.credit import CreditGate
from repro.flow.policy import FlowControlPolicy, priority_name, priority_of
from repro.flow.queues import BoundedPriorityQueue
from repro.net.faults import FaultInjector
from repro.net.links import Link
from repro.net.node import ProcessingNode
from repro.net.sim import Simulator
from repro.obs import Observability
from repro.obs.metrics import Counter, MetricsRegistry, RegistryBackedStats
from repro.recovery.dedup import DedupWindow
from repro.recovery.journal import JournalStore
from repro.recovery.repair import RepairCoordinator, RepairPolicy
from repro.siena.broker import Broker, MatchPredicate, _plain_match
from repro.siena.events import Event
from repro.siena.filters import Filter

#: Cost (seconds) to process one publication at a broker / subscriber.
BrokerCostFn = Callable[[Hashable, Event], float]
SubscriberCostFn = Callable[[Hashable, Event], float]

_SEQ_ATTRIBUTE = "_seq"
_ACK_SIZE = 16
_HEARTBEAT_SIZE = 24


@dataclass
class DeliveryRecord:
    """One event delivered to one subscriber, with timing."""

    seq: int
    subscriber_id: Hashable
    published_at: float
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.published_at


@dataclass
class _Publication:
    routable: Event
    carrier: object
    size: int
    published_at: float
    deliveries: int = 0


@dataclass
class RetryPolicy:
    """At-least-once delivery knobs for the reliable overlay."""

    #: Total transmission attempts per hop (first try included).
    max_attempts: int = 6
    #: Ack timeout for the first attempt; must exceed one round trip.
    ack_timeout: float = 0.05
    #: Multiplier applied to the timeout after every failed attempt.
    backoff: float = 2.0
    #: Uniform +-fraction perturbing each timeout (desynchronizes storms).
    jitter: float = 0.1
    #: Heartbeat cadence of the failure detector.
    heartbeat_interval: float = 0.2
    #: Consecutive missed heartbeats before a neighbour is marked down.
    miss_threshold: int = 3
    #: Uniform +-fraction perturbing every heartbeat period, so beat
    #: loops (and the parked-traffic flushes they trigger) desynchronize
    #: after a partition heals instead of stampeding in lock-step.  Drawn
    #: from a dedicated RNG stream: enabling it never perturbs the
    #: retry-jitter sequence of an otherwise identical run.
    heartbeat_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one transmission attempt")
        if self.ack_timeout <= 0:
            raise ValueError("ack timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter fraction must be within [0, 1)")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be at least one beat")
        if not 0.0 <= self.heartbeat_jitter < 1.0:
            raise ValueError("heartbeat jitter fraction must be within [0, 1)")

    def timeout_for(self, attempt: int, rng: random.Random) -> float:
        """The ack timeout for (0-based) *attempt*, with jitter applied."""
        timeout = self.ack_timeout * (self.backoff ** attempt)
        if self.jitter:
            timeout *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return timeout


class ReliabilityStats(RegistryBackedStats):
    """Counters the reliable overlay keeps for the chaos reports.

    Registry-backed (``net_<field>_total``): the attribute API is a thin
    view over shared counters, so the chaos reports keep reading
    ``rstats.retries`` while exporters see the same series.
    """

    _int_fields = (
        "data_sends",
        # Batched data transmissions (one wire message carrying a whole
        # sub-batch on the fire-and-forget transport).
        "batch_sends",
        "retries",
        "acks_sent",
        "dead_letters",
        # Hop-level duplicate arrivals suppressed by the dedup filter.
        "duplicates_suppressed",
        # Subscriber-level duplicate deliveries suppressed.
        "duplicate_deliveries",
        "heartbeats_sent",
        "failures_detected",
        "recoveries_detected",
        # Events parked while the next hop was marked down, then re-sent.
        "parked",
        "parked_flushes",
        "warmup_deferred",
        "subscriptions_replayed",
        # Oldest parked events dropped by the bounded retransmit buffer.
        "retx_evicted",
        # Restarted brokers whose routing state came back from a journal.
        "journal_restores",
        # Journaled in-flight events re-published (restart or repair).
        "events_salvaged",
    )
    _metric_prefix = "net_"

    def __init__(self, registry: MetricsRegistry | None = None, **labels):
        super().__init__(registry, **labels)
        self.detection_latencies: list[float] = []
        self.recovery_latencies: list[float] = []

    def mean_detection_latency(self) -> float:
        if not self.detection_latencies:
            return float("nan")
        return sum(self.detection_latencies) / len(self.detection_latencies)

    def mean_recovery_latency(self) -> float:
        if not self.recovery_latencies:
            return float("nan")
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    def __eq__(self, other) -> bool:
        base = super().__eq__(other)
        if base is not True:
            return base
        return (
            self.detection_latencies == other.detection_latencies
            and self.recovery_latencies == other.recovery_latencies
        )


def _zero_cost(_node: Hashable, _event: Event) -> float:
    return 0.0


class _BrokerFlow:
    """Per-broker overload-protection state: ingress queue + breaker.

    ``busy`` is the service pump's one-job-in-flight latch: the pump
    dequeues one ingress item, runs it on the broker CPU, and only takes
    the next on completion -- so queueing is explicit (and bounded) in
    the ingress queue rather than implicit in the CPU backlog.
    """

    __slots__ = ("ingress", "breaker", "busy")

    def __init__(
        self, ingress: BoundedPriorityQueue, breaker: OverloadBreaker
    ):
        self.ingress = ingress
        self.breaker = breaker
        self.busy = False


class _LinkFlow:
    """Per-directed-link flow state: credit gate + bounded egress buffer."""

    __slots__ = ("gate", "egress")

    def __init__(self, gate: CreditGate, egress: BoundedPriorityQueue):
        self.gate = gate
        self.egress = egress


class SimulatedPubSub:
    """The timed broker overlay used by the Fig 9-11 experiments.

    *faults* binds a :class:`~repro.net.faults.FaultInjector` (on the
    same simulator) whose crash/restart transitions are applied to the
    brokers and whose link state governs every transmission.  With
    *reliability* set, the at-least-once stack described in the module
    docstring is active; *seed* feeds the retry-jitter RNG.
    """

    def __init__(
        self,
        sim: Simulator,
        num_brokers: int,
        arity: int = 2,
        link_latency: Callable[[Hashable, Hashable], float] | float = 0.010,
        client_latency: float = 0.002,
        match: MatchPredicate = _plain_match,
        broker_cost: BrokerCostFn = _zero_cost,
        subscriber_cost: SubscriberCostFn = _zero_cost,
        per_send_s: float = 0.0,
        reliability: RetryPolicy | None = None,
        faults: FaultInjector | None = None,
        seed: int = 0,
        obs: Observability | None = None,
        journals: JournalStore | None = None,
        repair: RepairPolicy | None = None,
        park_limit: int = 4096,
        dedup_window: int | None = None,
        flow: FlowControlPolicy | None = None,
    ):
        if num_brokers < 1:
            raise ValueError("need at least the root broker")
        if park_limit < 1:
            raise ValueError("parked-event buffer needs room for one event")
        if repair is not None and reliability is None:
            raise ValueError(
                "tree repair rides the failure detector; it requires the "
                "reliable stack (pass a RetryPolicy)"
            )
        self.sim = sim
        # Observability: metrics always accumulate (into the supplied
        # registry or a private one); per-event tracing only when an
        # Observability bundle is threaded in.  Neither path touches the
        # RNG or schedules simulator events, so seeded runs are bitwise
        # identical with and without instrumentation.
        self.obs = obs
        self.registry = obs.registry if obs is not None else MetricsRegistry()
        self._tracer = obs.tracer if obs is not None else None
        self.arity = arity
        self.match = match
        self.broker_cost = broker_cost
        self.subscriber_cost = subscriber_cost
        self.per_send_s = per_send_s
        self._latency_of = (
            link_latency
            if callable(link_latency)
            else (lambda _a, _b: float(link_latency))
        )
        self.client_latency = client_latency
        self.reliability = reliability
        self.faults = faults
        self.journals = journals
        self._park_limit = park_limit
        self._rng = random.Random(seed)
        # Heartbeat jitter draws from its own stream so that enabling it
        # leaves the retry-jitter sequence (and every seeded test pinned
        # to it) untouched.
        self._hb_rng = random.Random(f"heartbeat-jitter-{seed}")

        self.brokers: dict[Hashable, Broker] = {}
        self.nodes: dict[Hashable, ProcessingNode] = {}
        self.links: dict[tuple[Hashable, Hashable], Link] = {}
        self.subscriber_nodes: dict[Hashable, ProcessingNode] = {}
        self._subscriber_home: dict[Hashable, Hashable] = {}
        self._client_filters: dict[Hashable, list[Filter]] = {}
        self._inflight: dict[int, _Publication] = {}
        self._next_seq = 0
        self.deliveries: list[DeliveryRecord] = []
        self._delivered_keys: set[tuple[int, Hashable]] = set()
        # Optional bounded replacement for the exact _delivered_keys set:
        # with dedup_window set, subscriber-level duplicate suppression
        # runs through a sliding DedupWindow instead (bounded memory, the
        # production configuration of the recovery scenario).
        self._dedup = (
            DedupWindow(window=dedup_window, registry=self.registry)
            if dedup_window is not None
            else None
        )
        self._client_links: dict[Hashable, Link] = {}
        self._monitor_interval: float | None = None

        # Reliable-delivery state.
        self.rstats = ReliabilityStats(self.registry)
        self._h_delivery = self.registry.histogram(
            "net_delivery_latency_seconds"
        )
        self._h_detection = self.registry.histogram(
            "net_detection_latency_seconds"
        )
        self._h_recovery = self.registry.histogram(
            "net_recovery_latency_seconds"
        )
        self._c_ack_timeouts = self.registry.counter("net_ack_timeouts_total")
        self._link_counters: dict[tuple, Counter] = {}
        self.dead_letters: list[tuple[int, Hashable, Hashable]] = []
        self._neighbors: dict[Hashable, list[Hashable]] = {}
        self._hop_seen: set[tuple[Hashable, Hashable, int]] = set()
        self._hop_queued: set[tuple[Hashable, Hashable, int]] = set()
        self._pending: dict[tuple[Hashable, Hashable, int], object] = {}
        self._parked: dict[
            tuple[Hashable, Hashable], deque[tuple[int, Event]]
        ] = {}
        self._neighbor_down: set[tuple[Hashable, Hashable]] = set()
        self._last_heard: dict[tuple[Hashable, Hashable], float] = {}
        self._known_incarnation: dict[tuple[Hashable, Hashable], int] = {}
        self._last_crash_at: dict[Hashable, float] = {}
        self._last_restart_at: dict[Hashable, float] = {}
        # Self-healing state: excised brokers map to their adopters, and
        # (sender, seq) -> outstanding receivers drives journal retention.
        self._reroute: dict[Hashable, Hashable] = {}
        self._obligations: dict[tuple[Hashable, int], set[Hashable]] = {}
        self._c_journal_replayed = self.registry.counter(
            "journal_replayed_events_total"
        )

        # Overload-protection state (active only with a flow policy):
        # per-broker bounded ingress + breaker, per-directed-link credit
        # gate + bounded egress, and the credits currently held by
        # in-flight hop sends (keyed like the ack machinery).
        self.flow = flow
        self._broker_flow: dict[Hashable, _BrokerFlow] = {}
        self._link_flow: dict[tuple[Hashable, Hashable], _LinkFlow] = {}
        self._credit_held: set[tuple] = set()
        self._shed_listeners: list[Callable[[int, str, Hashable], None]] = []
        self.shed_events = 0
        self._h_delivery_prio: dict[int, object] = {}

        for index in range(num_brokers):
            self.brokers[index] = Broker(
                index, match=match, registry=self.registry
            )
            if self.journals is not None:
                self.brokers[index].bind_journal(
                    self.journals.journal_for(index)
                )
            self.nodes[index] = ProcessingNode(sim, index)
            self._neighbors[index] = []
            if flow is not None:
                self._broker_flow[index] = self._make_broker_flow(index)
        for index in range(1, num_brokers):
            parent = (index - 1) // arity
            self._connect(parent, index)

        self.repair = (
            RepairCoordinator(self, repair, tracer=self._tracer)
            if repair is not None
            else None
        )
        if self.faults is not None:
            self.faults.on_transition(self._on_fault_transition)
        if self.reliability is not None:
            self._start_heartbeats()

    # -- wiring --------------------------------------------------------------

    def _connect(self, parent: Hashable, child: Hashable) -> None:
        latency = self._latency_of(parent, child)
        self.links[(parent, child)] = Link(self.sim, latency)
        self.links[(child, parent)] = Link(self.sim, latency)
        self._neighbors[parent].append(child)
        self._neighbors[child].append(parent)
        # Every broker starts at incarnation 0; seeding the known value
        # lets neighbours spot a restart even before the first heartbeat.
        self._known_incarnation[(parent, child)] = 0
        self._known_incarnation[(child, parent)] = 0
        self.brokers[parent].attach_child(child, self._sender(parent, child))
        self.brokers[child].attach_parent(parent, self._sender(child, parent))

    def _sender(self, from_id: Hashable, to_id: Hashable):
        def send(kind: str, payload: object) -> None:
            if kind in ("subscribe", "unsubscribe"):
                # Control plane: instantaneous (setup time is not measured);
                # a crashed target drops it (Broker guards on ``alive``).
                assert isinstance(payload, Filter)
                if kind == "subscribe":
                    self.brokers[to_id].subscribe(from_id, payload)
                else:
                    self.brokers[to_id].unsubscribe(from_id, payload)
                return
            if kind == "publish_batch":
                assert isinstance(payload, list)
                if self.reliability is None:
                    self._transmit_batch_once(from_id, to_id, payload)
                else:
                    # The ack/retry/dedup machinery is per-sequence-number;
                    # a batch splits into per-event reliable transmissions
                    # at the first hop so at-least-once semantics (and the
                    # chaos scenarios built on them) are untouched.
                    for event in payload:
                        self._transmit_reliable(
                            from_id, to_id, event.get(_SEQ_ATTRIBUTE), event, 0
                        )
                return
            assert isinstance(payload, Event)
            seq = payload.get(_SEQ_ATTRIBUTE)
            if self.reliability is None:
                self._transmit_once(from_id, to_id, seq, payload)
            else:
                self._transmit_reliable(from_id, to_id, seq, payload, 0)

        return send

    # -- flow control --------------------------------------------------------

    def _make_broker_flow(self, broker_id: Hashable) -> _BrokerFlow:
        policy = self.flow
        capacity = policy.queue_capacity
        high = max(1, round(policy.high_watermark * capacity))
        low = max(0, min(high - 1, int(policy.low_watermark * capacity)))
        ingress = BoundedPriorityQueue(
            capacity,
            policy.shed_policy,
            registry=self.registry,
            broker=str(broker_id),
            queue="ingress",
        )
        breaker = OverloadBreaker(
            high_depth=high,
            low_depth=low,
            cooldown=policy.breaker_cooldown,
            degrade_floor=policy.degrade_floor,
            registry=self.registry,
            broker=str(broker_id),
        )
        return _BrokerFlow(ingress, breaker)

    def _link_flow_for(
        self, from_id: Hashable, to_id: Hashable
    ) -> _LinkFlow:
        """The credit gate + egress buffer of one directed link (lazy,
        so links grafted by tree repair are covered too)."""
        lf = self._link_flow.get((from_id, to_id))
        if lf is None:
            policy = self.flow
            link = f"{from_id}->{to_id}"
            gate = CreditGate(
                policy.credit_window,
                registry=self.registry,
                clock=lambda: self.sim.now,
                link=link,
            )
            egress = BoundedPriorityQueue(
                policy.queue_capacity,
                policy.shed_policy,
                registry=self.registry,
                link=link,
                queue="egress",
            )
            lf = _LinkFlow(gate, egress)
            self._link_flow[(from_id, to_id)] = lf
        return lf

    def on_shed(
        self, listener: Callable[[int, str, Hashable], None]
    ) -> None:
        """Call ``listener(priority, stage, broker_id)`` on every shed.

        This is the explicit overload signal publishers feed their AIMD
        limiters with; ``stage`` is ``"admission"``, ``"ingress"``, or
        ``"egress"``.
        """
        self._shed_listeners.append(listener)

    def _notify_shed(
        self, priority: int, stage: str, broker_id: Hashable
    ) -> None:
        self.shed_events += 1
        for listener in self._shed_listeners:
            listener(priority, stage, broker_id)

    def _acquire_or_queue(
        self,
        from_id: Hashable,
        to_id: Hashable,
        key: tuple,
        priority: int,
        item: tuple,
    ) -> bool:
        """Hold a hop credit for *key*, or buffer *item* at egress.

        True means the caller owns a credit (retries already do) and may
        put the message on the wire; False means the send was deferred
        until a credit returns -- or shed, if the egress buffer was full.
        """
        if self.flow is None:
            return True
        if key in self._credit_held:
            return True
        lf = self._link_flow_for(from_id, to_id)
        if lf.gate.try_acquire():
            self._credit_held.add(key)
            return True
        result = lf.egress.offer(item, priority)
        if result.shed is not None:
            shed_item, shed_priority = result.shed
            self._notify_shed(shed_priority, "egress", from_id)
            if shed_item[0] == "rel":
                # The hop send never happened and never will: that is
                # this hop's delivery giving up, so it books as a dead
                # letter exactly like an exhausted retry budget.
                self.rstats.dead_letters += 1
                self.dead_letters.append((shed_item[1], from_id, to_id))
        return False

    def _credit_release(self, key: tuple) -> None:
        """Return the credit held for *key* (idempotent) and pump the
        sender's egress buffer with the freed slot."""
        if key not in self._credit_held:
            return
        self._credit_held.discard(key)
        lf = self._link_flow.get((key[0], key[1]))
        if lf is None:
            return
        lf.gate.release()
        self._pump_egress(key[0], key[1])

    def _pump_egress(self, from_id: Hashable, to_id: Hashable) -> None:
        lf = self._link_flow[(from_id, to_id)]
        while len(lf.egress) and lf.gate.available > 0:
            item, _priority = lf.egress.take()
            kind = item[0]
            if kind == "ff":
                self._transmit_once(from_id, to_id, item[1], item[2])
            elif kind == "batch":
                self._transmit_batch_once(from_id, to_id, item[1])
            else:
                self._transmit_reliable(from_id, to_id, item[1], item[2], 0)

    def _flow_enqueue(
        self, broker_id: Hashable, item: tuple, priority: int
    ) -> bool:
        """Offer *item* to a broker's bounded ingress; pump on accept."""
        bf = self._broker_flow[broker_id]
        result = bf.ingress.offer(item, priority)
        now = self.sim.now
        if result.shed is not None:
            shed_item, shed_priority = result.shed
            bf.breaker.record_shed(now)
            self._on_ingress_shed(broker_id, shed_item, shed_priority)
        bf.breaker.observe_depth(len(bf.ingress), now)
        if result.accepted:
            self._pump_broker(broker_id)
        return result.accepted

    def _on_ingress_shed(
        self, broker_id: Hashable, item: tuple, priority: int
    ) -> None:
        self._notify_shed(priority, "ingress", broker_id)
        kind = item[0]
        if kind in ("ff", "ffbatch", "rel"):
            # The shed message occupied a credit-reserved slot; free it
            # so the upstream sender is not stalled by a dead event.
            self._credit_release(item[1])
            if kind == "rel":
                # No ack will come; un-mark it so the sender's retry is
                # not suppressed as an already-queued duplicate.
                self._hop_queued.discard(item[1])

    def _pump_broker(self, broker_id: Hashable) -> None:
        """Feed the broker CPU one ingress item at a time."""
        bf = self._broker_flow[broker_id]
        if bf.busy:
            return
        entry = bf.ingress.take()
        if entry is None:
            return
        item, _priority = entry
        bf.breaker.observe_depth(len(bf.ingress), self.sim.now)
        bf.busy = True
        cost, work = self._flow_service(broker_id, item)

        def done() -> None:
            bf.busy = False
            work()
            self._pump_broker(broker_id)

        self.nodes[broker_id].submit(cost, done)

    def _flow_service(
        self, broker_id: Hashable, item: tuple
    ) -> tuple[float, Callable[[], None]]:
        """(cost, completion work) for one dequeued ingress item.

        Hop credits are returned here -- at dequeue-for-service time --
        so the upstream sender can pipeline its next event while this
        one occupies the CPU, without ever overrunning the ingress bound.
        """
        kind = item[0]
        broker = self.brokers[broker_id]
        if kind == "pub":
            event = item[1]

            def work() -> None:
                if broker.alive:
                    broker.publish(event, arrived_from=None)

            return self._service_cost(broker_id, event), work
        if kind == "pubbatch":
            batch = item[1]

            def work() -> None:
                if broker.alive:
                    broker.publish(batch, arrived_from=None)

            cost = sum(
                self._service_cost(broker_id, event) for event in batch
            )
            return cost, work
        if kind == "ff":
            key, payload, from_id = item[1], item[2], item[3]
            self._credit_release(key)

            def work() -> None:
                if broker.alive:
                    broker.publish(payload, arrived_from=from_id)

            return self._service_cost(broker_id, payload), work
        if kind == "ffbatch":
            key, batch, from_id = item[1], item[2], item[3]
            self._credit_release(key)

            def work() -> None:
                if broker.alive:
                    broker.publish(batch, arrived_from=from_id)

            cost = sum(
                self._service_cost(broker_id, event) for event in batch
            )
            return cost, work
        assert kind == "rel"
        key, payload = item[1], item[2]
        self._credit_release(key)

        def work() -> None:
            self._hop_queued.discard(key)
            if not broker.alive:
                return  # crashed while queued: sender retries
            broker.publish(payload, arrived_from=key[0])
            self._hop_seen.add(key)
            self._send_ack(broker_id, key[0], key)

        return self._service_cost(broker_id, payload), work

    def _drop_broker_flow_state(self, broker_id: Hashable) -> None:
        """A crashed broker loses its volatile ingress queue; free the
        credits its queued events were holding."""
        bf = self._broker_flow.get(broker_id)
        if bf is None:
            return
        for item, _priority in bf.ingress.drain():
            if item[0] in ("ff", "ffbatch", "rel"):
                self._credit_release(item[1])
                if item[0] == "rel":
                    self._hop_queued.discard(item[1])
        bf.busy = False

    def _service_cost(self, broker_id: Hashable, event: Event) -> float:
        """Broker matching cost, scaled by any active slowdown fault."""
        cost = self.broker_cost(broker_id, event)
        if self.faults is not None:
            factor = self.faults.cost_factor(broker_id)
            if factor != 1.0:
                cost *= factor
        return cost

    # -- transport -----------------------------------------------------------

    def _link_counter(
        self, name: str, from_id: Hashable, to_id: Hashable
    ) -> Counter:
        """Per-link counter, cached so hot paths skip the registry lookup."""
        key = (name, from_id, to_id)
        counter = self._link_counters.get(key)
        if counter is None:
            counter = self.registry.counter(
                name, link=f"{from_id}->{to_id}"
            )
            self._link_counters[key] = counter
        return counter

    def _hop_send(
        self,
        from_id: Hashable,
        to_id: Hashable,
        size: int,
        on_arrival: Callable[[], None],
    ) -> bool:
        """One transmission over a (possibly faulty) broker-broker link.

        Returns whether the message survived the medium; lost messages
        still count against the link's traffic statistics.
        """
        link = self.links[(from_id, to_id)]
        if self.faults is not None and not self.faults.deliverable(
            from_id, to_id
        ):
            link.stats.messages += 1
            link.stats.bytes += size
            self._link_counter(
                "net_link_drops_total", from_id, to_id
            ).inc()
            return False
        extra = (
            self.faults.extra_latency(from_id, to_id)
            if self.faults is not None
            else 0.0
        )
        link.send(size, on_arrival, extra_delay=extra)
        return True

    def _transmit_once(
        self, from_id: Hashable, to_id: Hashable, seq: int, payload: Event
    ) -> None:
        """Fire-and-forget forwarding (the pre-fault-tolerance transport)."""
        key = (from_id, to_id, seq)
        if self.flow is not None and not self._acquire_or_queue(
            from_id, to_id, key, priority_of(payload), ("ff", seq, payload)
        ):
            return
        self.rstats.data_sends += 1
        publication = self._inflight[seq]
        # Serialization work for this send occupies the sender's CPU;
        # it is what makes a 32-way fan-out at a lone publisher more
        # expensive than a 2-way forward inside the tree.
        if self.per_send_s > 0:
            self.nodes[from_id].submit(self.per_send_s, lambda: None)
        sent_at = self.sim.now

        def on_arrival() -> None:
            if self._tracer is not None:
                self._tracer.span(
                    seq, "hop", to_id, sent_at, self.sim.now,
                    link=f"{from_id}->{to_id}", attempt=0,
                )
            if not self.brokers[to_id].alive:
                self._credit_release(key)
                return
            if self.flow is not None:
                self._flow_enqueue(
                    to_id, ("ff", key, payload, from_id), priority_of(payload)
                )
                return
            cost = self._service_cost(to_id, payload)
            self.nodes[to_id].submit(
                cost,
                lambda: self.brokers[to_id].publish(
                    payload, arrived_from=from_id
                ),
            )

        survived = self._hop_send(from_id, to_id, publication.size, on_arrival)
        if not survived:
            self._credit_release(key)
            if self._tracer is not None:
                self._tracer.span(
                    seq, "drop", to_id, sent_at,
                    link=f"{from_id}->{to_id}", attempt=0,
                )

    def _transmit_batch_once(
        self, from_id: Hashable, to_id: Hashable, batch: list[Event]
    ) -> None:
        """One wire message carrying a whole sub-batch (fire-and-forget).

        The amortization the engine is built around: one serialization
        charge and one link transmission for the batch instead of one per
        event.  Per-event broker processing costs still accrue at the
        receiver (matching work is not amortized away), and the receiving
        broker routes the batch with :meth:`Broker.publish_batch`, so
        per-subscriber delivery semantics equal the per-event path.
        """
        seqs = [event.get(_SEQ_ATTRIBUTE) for event in batch]
        key = (from_id, to_id, ("b", seqs[0]))
        batch_priority = min(priority_of(event) for event in batch)
        if self.flow is not None and not self._acquire_or_queue(
            from_id, to_id, key, batch_priority, ("batch", batch)
        ):
            return
        self.rstats.data_sends += 1
        self.rstats.batch_sends += 1
        total_size = sum(self._inflight[seq].size for seq in seqs)
        if self.per_send_s > 0:
            self.nodes[from_id].submit(self.per_send_s, lambda: None)
        sent_at = self.sim.now

        def on_arrival() -> None:
            if self._tracer is not None:
                for seq in seqs:
                    self._tracer.span(
                        seq, "hop", to_id, sent_at, self.sim.now,
                        link=f"{from_id}->{to_id}", attempt=0, batched=True,
                    )
            if not self.brokers[to_id].alive:
                self._credit_release(key)
                return
            if self.flow is not None:
                self._flow_enqueue(
                    to_id, ("ffbatch", key, batch, from_id), batch_priority
                )
                return
            cost = sum(self._service_cost(to_id, event) for event in batch)
            self.nodes[to_id].submit(
                cost,
                lambda: self.brokers[to_id].publish(
                    batch, arrived_from=from_id
                ),
            )

        survived = self._hop_send(from_id, to_id, total_size, on_arrival)
        if not survived:
            self._credit_release(key)
            if self._tracer is not None:
                for seq in seqs:
                    self._tracer.span(
                        seq, "drop", to_id, sent_at,
                        link=f"{from_id}->{to_id}", attempt=0, batched=True,
                    )

    def _transmit_reliable(
        self,
        from_id: Hashable,
        to_id: Hashable,
        seq: int,
        payload: Event,
        attempt: int,
    ) -> None:
        """One acknowledged transmission attempt, with retry on timeout."""
        if to_id in self._reroute:
            # The target was declared permanently dead and excised; its
            # traffic flows through the adopter instead.
            self._redirect(from_id, to_id, seq, payload)
            return
        if (from_id, to_id) in self._neighbor_down:
            # The failure detector says the peer is dead: park instead of
            # burning the retry budget; flushed on detected recovery.
            self._park(from_id, to_id, seq, payload)
            return
        if (
            self.flow is not None
            and attempt == 0
            and not self._acquire_or_queue(
                from_id,
                to_id,
                (from_id, to_id, seq),
                priority_of(payload),
                ("rel", seq, payload),
            )
        ):
            return
        if self.journals is not None and attempt == 0:
            # Durable accept: the event hits the sender's WAL before the
            # wire, and stays there until every receiver has acked.
            self.journals.journal_for(from_id).log_event(seq, payload)
            self._obligations.setdefault((from_id, seq), set()).add(to_id)
        self.rstats.data_sends += 1
        if attempt > 0:
            self.rstats.retries += 1
            self._link_counter(
                "net_hop_retries_total", from_id, to_id
            ).inc()
        if self.per_send_s > 0:
            self.nodes[from_id].submit(self.per_send_s, lambda: None)
        publication = self._inflight[seq]
        key = (from_id, to_id, seq)
        sent_at = self.sim.now

        def on_processed() -> None:
            self._hop_queued.discard(key)
            if not self.brokers[to_id].alive:
                return  # crashed while queued: drop silently, sender retries
            self.brokers[to_id].publish(payload, arrived_from=from_id)
            self._hop_seen.add(key)
            self._send_ack(to_id, from_id, key)

        def on_arrival() -> None:
            if self._tracer is not None:
                self._tracer.span(
                    seq, "hop", to_id, sent_at, self.sim.now,
                    link=f"{from_id}->{to_id}", attempt=attempt,
                )
            if not self.brokers[to_id].alive:
                return  # no ack from a dead broker
            restarted_at = self._last_restart_at.get(to_id)
            if (
                restarted_at is not None
                and self.sim.now
                < restarted_at + self.reliability.heartbeat_interval
            ):
                # Warm-up after a restart: neighbour replays may still be
                # in flight (the recovery handshake rides lossy links), so
                # the filter table can be incomplete.  Acking now would
                # cancel the sender's retry and silently unsubscribe a
                # whole subtree; staying silent makes the sender try again
                # after the table has settled.
                self.rstats.warmup_deferred += 1
                return
            if key in self._hop_seen:
                # Processed before; the earlier ack was lost. Ack again.
                self.rstats.duplicates_suppressed += 1
                self._send_ack(to_id, from_id, key)
                return
            if key in self._hop_queued:
                # A copy is already awaiting the CPU; its completion ack
                # will cancel the sender's timer.
                self.rstats.duplicates_suppressed += 1
                return
            # The ack is deferred until the broker has actually matched
            # and forwarded the event: a crash between arrival and
            # processing must NOT look like a successful handoff, or the
            # event dies in the wiped CPU queue with the retry already
            # cancelled.
            self._hop_queued.add(key)
            if self.flow is not None:
                # Bounded ingress instead of the raw CPU queue; a shed
                # here clears _hop_queued and the credit so the sender's
                # retry (or dead-letter) accounting takes over.
                self._flow_enqueue(
                    to_id, ("rel", key, payload), priority_of(payload)
                )
                return
            self.nodes[to_id].submit(
                self._service_cost(to_id, payload), on_processed
            )

        survived = self._hop_send(from_id, to_id, publication.size, on_arrival)
        if not survived and self._tracer is not None:
            self._tracer.span(
                seq, "drop", to_id, sent_at,
                link=f"{from_id}->{to_id}", attempt=attempt,
            )
        timeout = self.reliability.timeout_for(attempt, self._rng)
        handle = self.sim.schedule(
            timeout,
            lambda: self._on_ack_timeout(from_id, to_id, seq, payload, attempt),
        )
        self._pending[key] = handle

    def _send_ack(
        self,
        from_id: Hashable,
        to_id: Hashable,
        key: tuple[Hashable, Hashable, int],
    ) -> None:
        self.rstats.acks_sent += 1

        def on_ack() -> None:
            handle = self._pending.pop(key, None)
            if handle is not None:
                handle.cancel()
            self._note_hop_settled(key)
            self._credit_release(key)

        self._hop_send(from_id, to_id, _ACK_SIZE, on_ack)

    def _on_ack_timeout(
        self,
        from_id: Hashable,
        to_id: Hashable,
        seq: int,
        payload: Event,
        attempt: int,
    ) -> None:
        key = (from_id, to_id, seq)
        if key not in self._pending:
            return  # acked in the meantime
        del self._pending[key]
        self._c_ack_timeouts.inc()
        if self._durable() and not self.brokers[from_id].alive:
            # A crashed sender retransmits nothing; its journal replays
            # this event on restart (or the repair salvage does).
            return
        if to_id in self._reroute:
            self._redirect(from_id, to_id, seq, payload)
            return
        if (from_id, to_id) in self._neighbor_down:
            self._park(from_id, to_id, seq, payload)
            return
        if attempt + 1 >= self.reliability.max_attempts:
            self.rstats.dead_letters += 1
            self.dead_letters.append((seq, from_id, to_id))
            self._note_hop_settled(key)
            self._credit_release(key)
            return
        self._transmit_reliable(from_id, to_id, seq, payload, attempt + 1)

    def _durable(self) -> bool:
        """Whether brokers journal state (and crashed senders go silent).

        Without journals the overlay keeps PR 1's lenient model -- a
        crashed broker's already-armed retransmit timers still fire --
        because existing chaos baselines pin that behaviour.  With
        journals the realistic rule applies: a dead process sends
        nothing, and its WAL replay (or the repair salvage) re-publishes
        whatever it had accepted.
        """
        return self.journals is not None

    def _park(
        self, from_id: Hashable, to_id: Hashable, seq: int, payload: Event
    ) -> None:
        """Queue an event for a down peer, bounded oldest-first."""
        self._credit_release((from_id, to_id, seq))
        queue = self._parked.setdefault((from_id, to_id), deque())
        queue.append((seq, payload))
        self.rstats.parked += 1
        if len(queue) > self._park_limit:
            # A long-parked peer cannot grow memory without limit: shed
            # the oldest event.  With journals it survives on the WAL.
            queue.popleft()
            self.rstats.retx_evicted += 1

    def _note_hop_settled(
        self, key: tuple[Hashable, Hashable, int]
    ) -> None:
        """One receiver acked (or dead-lettered); release the journal
        entry once no receiver remains outstanding."""
        if self.journals is None:
            return
        sender, receiver, seq = key
        outstanding = self._obligations.get((sender, seq))
        if outstanding is None:
            return
        outstanding.discard(receiver)
        if not outstanding:
            del self._obligations[(sender, seq)]
            self.journals.journal_for(sender).mark_done(seq)

    def _redirect(
        self, from_id: Hashable, dead: Hashable, seq: int, payload: Event
    ) -> None:
        """Route traffic aimed at an excised broker through its adopter."""
        self._credit_release((from_id, dead, seq))
        target = self._reroute.get(dead)
        hops = 0
        while target in self._reroute and hops <= len(self._reroute):
            target = self._reroute[target]
            hops += 1
        if target is None or not self.brokers[target].alive:
            self.rstats.dead_letters += 1
            self.dead_letters.append((seq, from_id, dead))
            return
        if target == from_id:
            # The sender itself adopted the dead broker's subtree; the
            # event re-enters its (repaired) routing table and flows down
            # the grafted interfaces.  Hop dedup absorbs the re-sends on
            # branches that already saw it.
            self._republish_locally(from_id, payload)
            return
        self._transmit_reliable(from_id, target, seq, payload, 0)

    def _republish_locally(self, broker_id: Hashable, event: Event) -> None:
        """Re-enter *event* at *broker_id*, routing downward only."""

        def route() -> None:
            broker = self.brokers[broker_id]
            if broker.alive:
                broker.publish(event, arrived_from=broker.parent)

        self.nodes[broker_id].submit(
            self._service_cost(broker_id, event), route
        )

    def _replay_inflight(
        self,
        broker_id: Hashable,
        inflight: list[tuple[int, Event]],
    ) -> int:
        """Re-publish journaled in-flight events at *broker_id*."""
        for seq, event in inflight:
            self.rstats.events_salvaged += 1
            self._c_journal_replayed.inc()
            self._republish_locally(broker_id, event)
        return len(inflight)

    # -- failure detection & recovery ---------------------------------------

    def _start_heartbeats(self) -> None:
        def beat() -> None:
            now = self.sim.now
            for broker_id, neighbors in list(self._neighbors.items()):
                broker = self.brokers[broker_id]
                if not broker.alive:
                    continue
                for neighbor in list(neighbors):
                    self._check_neighbor(broker_id, neighbor, now)
                    self.rstats.heartbeats_sent += 1
                    self._hop_send(
                        broker_id,
                        neighbor,
                        _HEARTBEAT_SIZE,
                        lambda s=broker_id, n=neighbor, i=broker.incarnation:
                            self._on_heartbeat(n, s, i),
                    )
            self.sim.schedule(self._heartbeat_delay(), beat)

        self.sim.schedule(self._heartbeat_delay(), beat)

    def _heartbeat_delay(self) -> float:
        """The next beat period, jittered when the policy asks for it."""
        policy = self.reliability
        interval = policy.heartbeat_interval
        if policy.heartbeat_jitter:
            interval *= 1.0 + policy.heartbeat_jitter * (
                2.0 * self._hb_rng.random() - 1.0
            )
        return interval

    def _check_neighbor(
        self, observer: Hashable, neighbor: Hashable, now: float
    ) -> None:
        if (observer, neighbor) in self._neighbor_down:
            return
        policy = self.reliability
        last = self._last_heard.get((observer, neighbor), 0.0)
        if now - last <= policy.miss_threshold * policy.heartbeat_interval:
            return
        self._neighbor_down.add((observer, neighbor))
        self.rstats.failures_detected += 1
        crash_at = self._last_crash_at.get(neighbor)
        if crash_at is not None and crash_at <= now:
            self.rstats.detection_latencies.append(now - crash_at)
            self._h_detection.observe(now - crash_at)
        if self.repair is not None:
            self.repair.neighbor_down(observer, neighbor, now)

    def _on_heartbeat(
        self, observer: Hashable, sender: Hashable, sender_incarnation: int
    ) -> None:
        if not self.brokers[observer].alive:
            return
        self._last_heard[(observer, sender)] = self.sim.now
        known = self._known_incarnation.get((observer, sender))
        restarted = known is not None and sender_incarnation != known
        self._known_incarnation[(observer, sender)] = sender_incarnation
        if (observer, sender) in self._neighbor_down:
            self._neighbor_down.discard((observer, sender))
            self.rstats.recoveries_detected += 1
            if self.repair is not None:
                self.repair.neighbor_up(observer, sender, self.sim.now)
            restart_at = self._last_restart_at.get(sender)
            if restart_at is not None:
                self.rstats.recovery_latencies.append(
                    self.sim.now - restart_at
                )
                self._h_recovery.observe(self.sim.now - restart_at)
            restarted = True
        if restarted:
            # The peer lost (or may have lost) its volatile routing state:
            # replay what this broker needs it to know before parked
            # events flow again.  The replay is an instantaneous control
            # message, so it lands before any re-sent data message.
            if sender == self.brokers[observer].parent:
                self.rstats.subscriptions_replayed += self.brokers[
                    observer
                ].replay_upstream()
            self._flush_parked(observer, sender)

    def _flush_parked(self, from_id: Hashable, to_id: Hashable) -> None:
        parked = self._parked.pop((from_id, to_id), None)
        if not parked:
            return
        self.rstats.parked_flushes += len(parked)
        for seq, payload in parked:
            self._transmit_reliable(from_id, to_id, seq, payload, 0)

    def _on_fault_transition(self, kind: str, broker_id: Hashable) -> None:
        broker = self.brokers.get(broker_id)
        if broker is None:
            return
        if kind == "crash":
            broker.crash()
            self._last_crash_at[broker_id] = self.sim.now
            if self.flow is not None:
                self._drop_broker_flow_state(broker_id)
            return
        broker.restart()
        self._last_restart_at[broker_id] = self.sim.now
        if self.journals is not None and broker_id in self.journals:
            # Durable disks make recovery local: replay the WAL+snapshot
            # into the fresh incarnation instead of waiting for every
            # neighbour to notice and re-send its filters, then re-publish
            # whatever was journaled in flight (dedup keeps it invisible
            # to anyone who already got it).
            state = self.journals.journal_for(broker_id).replay()
            broker.restore(state.subscriptions, state.forwarded_upstream)
            self.rstats.journal_restores += 1
            if self._tracer is not None:
                trace_id = ("journal", broker_id, broker.incarnation)
                self._tracer.start_trace(
                    trace_id, at=self.sim.now, broker=str(broker_id)
                )
                self._tracer.span(
                    trace_id, "journal.replay", broker_id,
                    self.sim.now, self.sim.now,
                    registrations=len(state.subscriptions),
                    inflight=len(state.inflight),
                )
            self._replay_inflight(broker_id, state.inflight)
        # A restarted broker trusts no stale detector state of its own.
        for neighbor in self._neighbors.get(broker_id, []):
            self._last_heard[(broker_id, neighbor)] = self.sim.now
        if self.reliability is None:
            return
        # Recovery handshake: announce the new incarnation immediately
        # instead of waiting for the next heartbeat tick, so neighbours
        # replay subscription state before data flows through the empty
        # tables.  (The announcement rides the lossy link; a lost one is
        # recovered by the regular heartbeat cadence.)
        for neighbor in self._neighbors.get(broker_id, []):
            self.rstats.heartbeats_sent += 1
            self._hop_send(
                broker_id,
                neighbor,
                _HEARTBEAT_SIZE,
                lambda n=neighbor, s=broker_id, i=broker.incarnation:
                    self._on_heartbeat(n, s, i),
            )
        # Locally attached clients notice the restart via their keepalive
        # and re-subscribe after one client round trip.
        for subscriber_id, home in self._subscriber_home.items():
            if home != broker_id:
                continue
            for subscription in self._client_filters.get(subscriber_id, []):
                self.rstats.subscriptions_replayed += 1
                self.sim.schedule(
                    self.client_latency,
                    lambda b=broker, s=subscriber_id, f=subscription:
                        b.subscribe(s, f),
                )

    # -- tree surgery (driven by the repair coordinator) ----------------------

    def is_marked_down(self, observer: Hashable, neighbor: Hashable) -> bool:
        """Whether *observer*'s failure detector holds *neighbor* down."""
        return (observer, neighbor) in self._neighbor_down

    def crash_time_of(self, broker_id: Hashable) -> float | None:
        """When *broker_id* last crashed, if it ever did."""
        return self._last_crash_at.get(broker_id)

    def prune_dead(self, dead: Hashable, adopter: Hashable) -> None:
        """Excise *dead* from the overlay wiring and register its adopter.

        The dead broker's interface (and every filter registered through
        it) leaves its parent's table, both sides stop heartbeating the
        corpse, and from here on any traffic aimed at *dead* re-routes
        through *adopter* (:meth:`_redirect`).
        """
        self._reroute[dead] = adopter
        parent = self.brokers[dead].parent
        if parent is not None:
            self.brokers[parent].detach_child(dead)
            if dead in self._neighbors.get(parent, []):
                self._neighbors[parent].remove(dead)
        self._neighbors[dead] = []

    def adopt(self, orphan: Hashable, adopter: Hashable) -> None:
        """Re-parent *orphan* (child of a pruned broker) to *adopter*.

        Wires a fresh link pair when none exists, primes the failure
        detector for the new pair (so the grafted edge does not start
        life marked down), and replays the orphan's covering-reduced
        filter set to the adopter so routing converges immediately.
        """
        old_parent = self.brokers[orphan].parent
        if old_parent is not None:
            self.brokers[old_parent].children.pop(orphan, None)
            if old_parent in self._neighbors.get(orphan, []):
                self._neighbors[orphan].remove(old_parent)
        if (adopter, orphan) not in self.links:
            latency = self._latency_of(adopter, orphan)
            self.links[(adopter, orphan)] = Link(self.sim, latency)
            self.links[(orphan, adopter)] = Link(self.sim, latency)
        if orphan not in self._neighbors[adopter]:
            self._neighbors[adopter].append(orphan)
        if adopter not in self._neighbors[orphan]:
            self._neighbors[orphan].append(adopter)
        now = self.sim.now
        self._last_heard[(adopter, orphan)] = now
        self._last_heard[(orphan, adopter)] = now
        self._neighbor_down.discard((adopter, orphan))
        self._neighbor_down.discard((orphan, adopter))
        self._known_incarnation[(adopter, orphan)] = self.brokers[
            orphan
        ].incarnation
        self._known_incarnation[(orphan, adopter)] = self.brokers[
            adopter
        ].incarnation
        self.brokers[adopter].attach_child(
            orphan, self._sender(adopter, orphan)
        )
        self.rstats.subscriptions_replayed += self.brokers[
            orphan
        ].reattach_parent(adopter, self._sender(orphan, adopter))

    def rehome_clients(self, dead: Hashable, adopter: Hashable) -> int:
        """Re-attach *dead*'s subscriber endpoints at *adopter*.

        Each client re-subscribes after one client round trip, exactly
        like the restart path; returns the number of endpoints moved.
        """
        moved = 0
        for subscriber_id, home in list(self._subscriber_home.items()):
            if home != dead:
                continue
            self._subscriber_home[subscriber_id] = adopter
            self.brokers[adopter].attach_client(
                subscriber_id, self._client_deliver(subscriber_id)
            )
            for subscription in self._client_filters.get(subscriber_id, []):
                self.rstats.subscriptions_replayed += 1
                self.sim.schedule(
                    self.client_latency,
                    lambda b=self.brokers[adopter], s=subscriber_id,
                    f=subscription: b.subscribe(s, f),
                )
            moved += 1
        return moved

    def salvage_inflight(self, dead: Hashable, adopter: Hashable) -> int:
        """Replay *dead*'s journaled in-flight events through *adopter*.

        Models the repair coordinator mounting the dead broker's durable
        volume (or reading its replicated log).  Returns the number of
        events re-published; 0 without journals.
        """
        if self.journals is None or dead not in self.journals:
            return 0
        state = self.journals.journal_for(dead).replay()
        return self._replay_inflight(adopter, state.inflight)

    def flush_rerouted(self, dead: Hashable) -> int:
        """Push every event parked for *dead* through its adopter.

        Called by the coordinator after adoption wired the replacement
        links, so redirected transmissions find live paths.
        """
        redirected = 0
        for pair in [key for key in self._parked if key[1] == dead]:
            for seq, payload in self._parked.pop(pair):
                self._redirect(pair[0], dead, seq, payload)
                redirected += 1
        return redirected

    # -- clients ---------------------------------------------------------------

    def leaf_ids(self) -> list[Hashable]:
        """Brokers with no children."""
        return sorted(
            broker_id
            for broker_id, broker in self.brokers.items()
            if not broker.children
        )

    def attach_subscriber(
        self, subscriber_id: Hashable, broker_id: Hashable
    ) -> None:
        """Attach a subscriber endpoint (own CPU, short client link)."""
        if subscriber_id in self._subscriber_home:
            raise ValueError(f"subscriber {subscriber_id!r} already attached")
        self._subscriber_home[subscriber_id] = broker_id
        self.subscriber_nodes[subscriber_id] = ProcessingNode(
            self.sim, subscriber_id
        )
        self._client_links[subscriber_id] = Link(self.sim, self.client_latency)
        self.brokers[broker_id].attach_client(
            subscriber_id, self._client_deliver(subscriber_id)
        )

    def _client_deliver(self, subscriber_id: Hashable):
        """The broker-side delivery closure for one subscriber endpoint.

        Reads the subscriber's home broker dynamically so tree repair can
        re-home an endpoint by updating ``_subscriber_home`` and attaching
        the same closure at the adopter.
        """

        def deliver(event: Event) -> None:
            seq = event.get(_SEQ_ATTRIBUTE)
            publication = self._inflight[seq]
            home = self._subscriber_home[subscriber_id]
            if self.per_send_s > 0:
                self.nodes[home].submit(self.per_send_s, lambda: None)
            sent_at = self.sim.now

            def on_arrival() -> None:
                cost = self.subscriber_cost(subscriber_id, event)
                self.subscriber_nodes[subscriber_id].submit(
                    cost,
                    lambda: self._record_delivery(
                        seq, subscriber_id, sent_at
                    ),
                )

            self._client_links[subscriber_id].send(
                publication.size, on_arrival
            )

        return deliver

    def _record_delivery(
        self,
        seq: int,
        subscriber_id: Hashable,
        handed_off_at: float | None = None,
    ) -> None:
        if self._dedup is not None:
            if self._dedup.seen(subscriber_id, seq):
                self.rstats.duplicate_deliveries += 1
                return
        else:
            key = (seq, subscriber_id)
            if key in self._delivered_keys:
                self.rstats.duplicate_deliveries += 1
                return
            self._delivered_keys.add(key)
        publication = self._inflight[seq]
        publication.deliveries += 1
        self.deliveries.append(
            DeliveryRecord(
                seq, subscriber_id, publication.published_at, self.sim.now
            )
        )
        self._h_delivery.observe(self.sim.now - publication.published_at)
        if self.flow is not None:
            # Per-priority delivery quantiles: the graceful-degradation
            # gates compare the high-priority tail to best-effort's.
            priority = priority_of(publication.routable)
            histogram = self._h_delivery_prio.get(priority)
            if histogram is None:
                histogram = self.registry.histogram(
                    "net_delivery_latency_seconds",
                    priority=priority_name(priority),
                )
                self._h_delivery_prio[priority] = histogram
            histogram.observe(self.sim.now - publication.published_at)
        if self._tracer is not None:
            self._tracer.span(
                seq,
                "deliver",
                subscriber_id,
                handed_off_at if handed_off_at is not None else self.sim.now,
                self.sim.now,
            )

    def subscribe(self, subscriber_id: Hashable, subscription: Filter) -> None:
        """Issue a subscription from an attached subscriber."""
        broker_id = self._subscriber_home[subscriber_id]
        self._client_filters.setdefault(subscriber_id, []).append(
            subscription
        )
        self.brokers[broker_id].subscribe(subscriber_id, subscription)

    # -- publication -------------------------------------------------------------

    def publish(
        self,
        events: "Event | list[Event]",
        carrier: object = None,
        size: "int | list[int] | None" = None,
        delay: float = 0.0,
        *,
        at_time: float | None = None,
        parallel=None,
    ) -> "int | list[int]":
        """Inject one event or a batch at the root -- unified surface.

        A single :class:`Event` schedules one publication after *delay*
        and returns its sequence number; a list schedules the whole batch
        as ONE simulator event (root routes it as one batch call) and
        returns the list of sequence numbers.  *carrier* rides along for
        subscriber-side cost accounting (a parallel list for batches);
        *size* overrides the wire size the same way.

        *at_time* is an absolute simulator time equivalent of *delay*
        (``max(0, at_time - sim.now)``); passing both is an error.
        *parallel* is accepted for signature uniformity and ignored: the
        timed overlay's brokers run inside the single-threaded simulator
        and have no shared match cache, so priming has nothing to seed --
        the documented serial fallback.
        """
        if at_time is not None:
            if delay:
                raise ValueError("pass either delay or at_time, not both")
            delay = max(0.0, at_time - self.sim.now)
        if not isinstance(events, Event):
            return self._publish_many(
                list(events),
                carriers=carrier,
                sizes=size,
                delay=delay,
            )
        routable = events
        seq = self._next_seq
        self._next_seq += 1
        tagged = routable.with_attributes(**{_SEQ_ATTRIBUTE: seq})
        publication = _Publication(
            tagged,
            carrier,
            size if size is not None else tagged.wire_size(),
            self.sim.now + delay,
        )
        self._inflight[seq] = publication
        if self._tracer is not None:
            self._tracer.start_trace(
                seq, at=publication.published_at, size=publication.size
            )
            self._tracer.span(
                seq, "publish", 0, publication.published_at,
                publication.published_at,
            )

        def inject() -> None:
            if self.flow is not None:
                self._admit(("pub", tagged), priority_of(tagged))
                return
            cost = self._service_cost(0, tagged)
            self.nodes[0].submit(
                cost, lambda: self.brokers[0].publish(tagged, arrived_from=None)
            )

        self.sim.schedule(delay, inject)
        return seq

    def _admit(self, item: tuple, priority: int) -> bool:
        """Admission control at the root: breaker first, then ingress.

        A breaker rejection is counted as an admission-stage shed (the
        queue counts its own overflow sheds); both reach the registered
        shed listeners, which is how publishers learn to slow down.
        """
        bf = self._broker_flow[0]
        if not bf.breaker.admits(priority, self.sim.now):
            self.registry.counter(
                "flow_shed_total",
                broker="0",
                queue="admission",
                priority=priority_name(priority),
            ).inc()
            self._notify_shed(priority, "admission", 0)
            return False
        return self._flow_enqueue(0, item, priority)

    def publish_batch(
        self,
        routables: list[Event],
        carriers: list[object] | None = None,
        sizes: list[int] | None = None,
        delay: float = 0.0,
    ) -> list[int]:
        """Deprecated alias for :meth:`publish` with a list of events."""
        warnings.warn(
            "SimulatedPubSub.publish_batch is deprecated and will be "
            "removed in repro 2.0; pass the batch to "
            "SimulatedPubSub.publish instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._publish_many(
            list(routables), carriers=carriers, sizes=sizes, delay=delay
        )

    def _publish_many(
        self,
        routables: list[Event],
        carriers: list[object] | None = None,
        sizes: list[int] | None = None,
        delay: float = 0.0,
    ) -> list[int]:
        """Inject a whole batch at the root after *delay*; returns its seqs.

        The batch is scheduled as ONE simulator event and processed by the
        root as one batched :meth:`Broker.publish` call (per-event broker
        costs still accrue); downstream hops carry batch messages on the
        fire-and-forget transport and split per event when the reliable
        stack is active.
        """
        if carriers is not None and len(carriers) != len(routables):
            raise ValueError("carriers must parallel routables")
        if sizes is not None and len(sizes) != len(routables):
            raise ValueError("sizes must parallel routables")
        tagged_batch: list[Event] = []
        seqs: list[int] = []
        published_at = self.sim.now + delay
        for position, routable in enumerate(routables):
            seq = self._next_seq
            self._next_seq += 1
            tagged = routable.with_attributes(**{_SEQ_ATTRIBUTE: seq})
            publication = _Publication(
                tagged,
                carriers[position] if carriers is not None else None,
                sizes[position] if sizes is not None else tagged.wire_size(),
                published_at,
            )
            self._inflight[seq] = publication
            tagged_batch.append(tagged)
            seqs.append(seq)
            if self._tracer is not None:
                self._tracer.start_trace(
                    seq, at=published_at, size=publication.size
                )
                self._tracer.span(
                    seq, "publish", 0, published_at, published_at,
                )

        def inject() -> None:
            if self.flow is not None:
                priority = min(
                    priority_of(event) for event in tagged_batch
                )
                self._admit(("pubbatch", tagged_batch), priority)
                return
            cost = sum(self._service_cost(0, event) for event in tagged_batch)
            self.nodes[0].submit(
                cost,
                lambda: self.brokers[0].publish(
                    tagged_batch, arrived_from=None
                ),
            )

        self.sim.schedule(delay, inject)
        return seqs

    def carrier_of(self, seq: int) -> object:
        """The carrier object attached to publication *seq*."""
        return self._inflight[seq].carrier

    # -- measurement ----------------------------------------------------------------

    def start_backlog_monitor(self, interval: float = 0.05) -> None:
        """Sample every node's backlog periodically (saturation detection)."""
        self._monitor_interval = interval

        def sample() -> None:
            for node in self.nodes.values():
                node.sample_backlog()
            for node in self.subscriber_nodes.values():
                node.sample_backlog()
            self.sim.schedule(interval, sample)

        self.sim.schedule(interval, sample)

    def flow_depths(self) -> dict[Hashable, int]:
        """Current bounded-ingress depth per broker (empty without flow)."""
        return {
            broker_id: len(bf.ingress)
            for broker_id, bf in self._broker_flow.items()
        }

    def flow_peak_depths(self) -> dict[Hashable, int]:
        """Peak bounded-ingress depth per broker (empty without flow)."""
        return {
            broker_id: bf.ingress.peak_depth
            for broker_id, bf in self._broker_flow.items()
        }

    def flow_egress_peak_depths(self) -> dict[tuple, int]:
        """Peak bounded-egress depth per directed link (empty without flow)."""
        return {
            pair: lf.egress.peak_depth
            for pair, lf in self._link_flow.items()
        }

    def flow_credit_stalls(self) -> tuple[int, float]:
        """(stall count, total stalled seconds) across all credit gates."""
        stalls = 0
        seconds = 0.0
        for lf in self._link_flow.values():
            stalls += lf.gate.stalls
            seconds += lf.gate.stall_seconds
        return stalls, seconds

    def breaker_state(self, broker_id: Hashable) -> str | None:
        """The overload breaker state of *broker_id* (None without flow)."""
        bf = self._broker_flow.get(broker_id)
        return bf.breaker.state_name if bf is not None else None

    def any_saturated(self, window: int = 5) -> bool:
        """Whether any node met the paper's saturation criterion.

        Checks the full backlog history (so overloads that drained after
        the publishing window still count) on brokers and subscriber
        endpoints alike -- the paper monitored every node.
        """
        nodes = list(self.nodes.values()) + list(self.subscriber_nodes.values())
        return any(node.was_saturating(window) for node in nodes)

    def mean_latency(self) -> float:
        """Mean delivery latency over all recorded deliveries."""
        if not self.deliveries:
            return float("nan")
        return sum(d.latency for d in self.deliveries) / len(self.deliveries)


#: The timed broker tree, under the name the public API docs use for it:
#: the overlay above IS the tree topology of :class:`BrokerTree` with a
#: clock, links, and (optionally) the reliable/flow-controlled stacks.
TimedBrokerTree = SimulatedPubSub
