"""A timed pub-sub overlay: Siena brokers on simulated CPUs and links.

``SimulatedPubSub`` reproduces the experimental setup of Section 5.2: a
complete ``arity``-ary tree of broker nodes whose links carry the WAN
latencies of the generated topology, the publisher at the root, and
subscribers attached to leaf brokers.  Per-message processing costs (event
matching, tokenized matching, key derivation, encryption/decryption) are
injected by the harness as cost functions, so the same overlay measures
plain Siena and every PSGuard variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.net.links import Link
from repro.net.node import ProcessingNode
from repro.net.sim import Simulator
from repro.siena.broker import Broker, MatchPredicate, _plain_match
from repro.siena.events import Event
from repro.siena.filters import Filter

#: Cost (seconds) to process one publication at a broker / subscriber.
BrokerCostFn = Callable[[Hashable, Event], float]
SubscriberCostFn = Callable[[Hashable, Event], float]

_SEQ_ATTRIBUTE = "_seq"


@dataclass
class DeliveryRecord:
    """One event delivered to one subscriber, with timing."""

    seq: int
    subscriber_id: Hashable
    published_at: float
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.published_at


@dataclass
class _Publication:
    routable: Event
    carrier: object
    size: int
    published_at: float
    deliveries: int = 0


def _zero_cost(_node: Hashable, _event: Event) -> float:
    return 0.0


class SimulatedPubSub:
    """The timed broker overlay used by the Fig 9-11 experiments."""

    def __init__(
        self,
        sim: Simulator,
        num_brokers: int,
        arity: int = 2,
        link_latency: Callable[[Hashable, Hashable], float] | float = 0.010,
        client_latency: float = 0.002,
        match: MatchPredicate = _plain_match,
        broker_cost: BrokerCostFn = _zero_cost,
        subscriber_cost: SubscriberCostFn = _zero_cost,
        per_send_s: float = 0.0,
    ):
        if num_brokers < 1:
            raise ValueError("need at least the root broker")
        self.sim = sim
        self.arity = arity
        self.match = match
        self.broker_cost = broker_cost
        self.subscriber_cost = subscriber_cost
        self.per_send_s = per_send_s
        self._latency_of = (
            link_latency
            if callable(link_latency)
            else (lambda _a, _b: float(link_latency))
        )
        self.client_latency = client_latency

        self.brokers: dict[Hashable, Broker] = {}
        self.nodes: dict[Hashable, ProcessingNode] = {}
        self.links: dict[tuple[Hashable, Hashable], Link] = {}
        self.subscriber_nodes: dict[Hashable, ProcessingNode] = {}
        self._subscriber_home: dict[Hashable, Hashable] = {}
        self._inflight: dict[int, _Publication] = {}
        self._next_seq = 0
        self.deliveries: list[DeliveryRecord] = []
        self._monitor_interval: float | None = None

        for index in range(num_brokers):
            self.brokers[index] = Broker(index, match=match)
            self.nodes[index] = ProcessingNode(sim, index)
        for index in range(1, num_brokers):
            parent = (index - 1) // arity
            self._connect(parent, index)

    # -- wiring --------------------------------------------------------------

    def _connect(self, parent: Hashable, child: Hashable) -> None:
        latency = self._latency_of(parent, child)
        self.links[(parent, child)] = Link(self.sim, latency)
        self.links[(child, parent)] = Link(self.sim, latency)
        self.brokers[parent].attach_child(child, self._sender(parent, child))
        self.brokers[child].attach_parent(parent, self._sender(child, parent))

    def _sender(self, from_id: Hashable, to_id: Hashable):
        def send(kind: str, payload: object) -> None:
            if kind in ("subscribe", "unsubscribe"):
                # Control plane: instantaneous (setup time is not measured).
                assert isinstance(payload, Filter)
                if kind == "subscribe":
                    self.brokers[to_id].subscribe(from_id, payload)
                else:
                    self.brokers[to_id].unsubscribe(from_id, payload)
                return
            assert isinstance(payload, Event)
            seq = payload.get(_SEQ_ATTRIBUTE)
            publication = self._inflight[seq]
            link = self.links[(from_id, to_id)]
            # Serialization work for this send occupies the sender's CPU;
            # it is what makes a 32-way fan-out at a lone publisher more
            # expensive than a 2-way forward inside the tree.
            if self.per_send_s > 0:
                self.nodes[from_id].submit(self.per_send_s, lambda: None)

            def on_arrival() -> None:
                cost = self.broker_cost(to_id, payload)
                self.nodes[to_id].submit(
                    cost,
                    lambda: self.brokers[to_id].publish(
                        payload, arrived_from=from_id
                    ),
                )

            link.send(publication.size, on_arrival)

        return send

    # -- clients ---------------------------------------------------------------

    def leaf_ids(self) -> list[Hashable]:
        """Brokers with no children."""
        return sorted(
            broker_id
            for broker_id, broker in self.brokers.items()
            if not broker.children
        )

    def attach_subscriber(
        self, subscriber_id: Hashable, broker_id: Hashable
    ) -> None:
        """Attach a subscriber endpoint (own CPU, short client link)."""
        if subscriber_id in self._subscriber_home:
            raise ValueError(f"subscriber {subscriber_id!r} already attached")
        self._subscriber_home[subscriber_id] = broker_id
        self.subscriber_nodes[subscriber_id] = ProcessingNode(
            self.sim, subscriber_id
        )
        link = Link(self.sim, self.client_latency)

        def deliver(event: Event) -> None:
            seq = event.get(_SEQ_ATTRIBUTE)
            publication = self._inflight[seq]
            if self.per_send_s > 0:
                self.nodes[broker_id].submit(self.per_send_s, lambda: None)

            def on_arrival() -> None:
                cost = self.subscriber_cost(subscriber_id, event)
                self.subscriber_nodes[subscriber_id].submit(
                    cost, lambda: self._record_delivery(seq, subscriber_id)
                )

            link.send(publication.size, on_arrival)

        self.brokers[broker_id].attach_client(subscriber_id, deliver)

    def _record_delivery(self, seq: int, subscriber_id: Hashable) -> None:
        publication = self._inflight[seq]
        publication.deliveries += 1
        self.deliveries.append(
            DeliveryRecord(
                seq, subscriber_id, publication.published_at, self.sim.now
            )
        )

    def subscribe(self, subscriber_id: Hashable, subscription: Filter) -> None:
        """Issue a subscription from an attached subscriber."""
        broker_id = self._subscriber_home[subscriber_id]
        self.brokers[broker_id].subscribe(subscriber_id, subscription)

    # -- publication -------------------------------------------------------------

    def publish(
        self,
        routable: Event,
        carrier: object = None,
        size: int | None = None,
        delay: float = 0.0,
    ) -> int:
        """Inject a publication at the root after *delay*; returns its seq.

        *carrier* is the full (sealed) message riding along for subscriber-
        side cost accounting; *size* its wire size in bytes.
        """
        seq = self._next_seq
        self._next_seq += 1
        tagged = routable.with_attributes(**{_SEQ_ATTRIBUTE: seq})
        publication = _Publication(
            tagged,
            carrier,
            size if size is not None else tagged.wire_size(),
            self.sim.now + delay,
        )
        self._inflight[seq] = publication

        def inject() -> None:
            cost = self.broker_cost(0, tagged)
            self.nodes[0].submit(
                cost, lambda: self.brokers[0].publish(tagged, arrived_from=None)
            )

        self.sim.schedule(delay, inject)
        return seq

    def carrier_of(self, seq: int) -> object:
        """The carrier object attached to publication *seq*."""
        return self._inflight[seq].carrier

    # -- measurement ----------------------------------------------------------------

    def start_backlog_monitor(self, interval: float = 0.05) -> None:
        """Sample every node's backlog periodically (saturation detection)."""
        self._monitor_interval = interval

        def sample() -> None:
            for node in self.nodes.values():
                node.sample_backlog()
            for node in self.subscriber_nodes.values():
                node.sample_backlog()
            self.sim.schedule(interval, sample)

        self.sim.schedule(interval, sample)

    def any_saturated(self, window: int = 5) -> bool:
        """Whether any node met the paper's saturation criterion.

        Checks the full backlog history (so overloads that drained after
        the publishing window still count) on brokers and subscriber
        endpoints alike -- the paper monitored every node.
        """
        nodes = list(self.nodes.values()) + list(self.subscriber_nodes.values())
        return any(node.was_saturating(window) for node in nodes)

    def mean_latency(self) -> float:
        """Mean delivery latency over all recorded deliveries."""
        if not self.deliveries:
            return float("nan")
        return sum(d.latency for d in self.deliveries) / len(self.deliveries)
