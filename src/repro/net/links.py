"""Fixed-latency network links.

The experiments replay one-way delays derived from a transit-stub topology
(RTTs of 24-184 ms, Section 5.2).  A link delivers a payload after its
one-way latency plus an optional serialization delay ``size / bandwidth``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.sim import Simulator


@dataclass
class LinkStats:
    """Traffic counters for one link."""

    messages: int = 0
    bytes: int = 0


class Link:
    """A unidirectional link with fixed one-way latency."""

    def __init__(
        self,
        sim: Simulator,
        latency: float,
        bandwidth_bytes_per_s: float | None = None,
    ):
        if latency < 0:
            raise ValueError(f"negative link latency {latency}")
        if bandwidth_bytes_per_s is not None and bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive when given")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth_bytes_per_s
        self.stats = LinkStats()

    def transfer_time(self, size_bytes: int) -> float:
        """Total delay for a message of *size_bytes*."""
        serialization = (
            size_bytes / self.bandwidth if self.bandwidth is not None else 0.0
        )
        return self.latency + serialization

    def send(
        self,
        size_bytes: int,
        on_arrival: Callable[[], None],
        extra_delay: float = 0.0,
    ) -> None:
        """Deliver a message of *size_bytes*; *on_arrival* fires at the far end.

        *extra_delay* adds transient one-way latency (fault injection's
        latency spikes) on top of the link's own transfer time.
        """
        if extra_delay < 0:
            raise ValueError(f"negative extra delay {extra_delay}")
        self.stats.messages += 1
        self.stats.bytes += size_bytes
        self.sim.schedule(
            self.transfer_time(size_bytes) + extra_delay, on_arrival
        )
