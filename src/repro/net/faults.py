"""Deterministic fault injection for the simulated broker overlay.

The paper's Section 4.2.1 argues multi-path dissemination buys fault
tolerance, but the static :class:`~repro.routing.faulttolerance.DroppingNetwork`
adversary only models nodes that *always* drop.  This module supplies the
dynamic failure modes real deployments hit -- broker crashes with later
restarts, lossy links, partitions, and latency spikes -- as a declarative,
seeded :class:`FaultPlan` that a :class:`FaultInjector` replays against the
deterministic :class:`~repro.net.sim.Simulator`.  The same seed and plan
always produce the same failure timeline and the same per-message loss
decisions, so chaos experiments are exactly reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

from repro.net.sim import Simulator

#: Wildcard endpoint for :class:`LinkFault`: matches every link.
ANY = None


@dataclass(frozen=True)
class BrokerCrash:
    """Broker *broker* fails at *at* and restarts ``duration`` later.

    A restarted broker comes back with empty (volatile) routing state; an
    infinite *duration* models a permanent failure.
    """

    broker: Hashable
    at: float
    duration: float = math.inf

    @property
    def restart_at(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class LinkFault:
    """A symmetric link impairment active on ``[start, start + duration)``.

    ``a``/``b`` name the endpoints; either (or both) may be :data:`ANY` to
    match every link.  ``loss`` is the independent per-transmission drop
    probability, ``extra_latency`` a one-way delay added to every message
    (a latency spike), and ``partitioned`` drops everything.
    """

    a: Hashable = ANY
    b: Hashable = ANY
    start: float = 0.0
    duration: float = math.inf
    loss: float = 0.0
    extra_latency: float = 0.0
    partitioned: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss probability {self.loss} outside [0, 1]")
        if self.extra_latency < 0:
            raise ValueError("extra latency must be non-negative")
        if self.duration < 0:
            raise ValueError("fault duration must be non-negative")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def applies(self, x: Hashable, y: Hashable) -> bool:
        if self.a is ANY and self.b is ANY:
            return True
        if self.a is ANY or self.b is ANY:
            endpoint = self.b if self.a is ANY else self.a
            return endpoint in (x, y)
        return {self.a, self.b} == {x, y}


@dataclass(frozen=True)
class BrokerSlowdown:
    """Broker *broker* processes events ``factor``x slower for a while.

    Models CPU contention, GC pauses, or a noisy neighbour: the broker
    stays alive and keeps acking, but every unit of matching work costs
    ``factor`` times as long on ``[start, start + duration)``.  This is
    the overload-adjacent failure mode -- a slow broker whose bounded
    queues must backpressure its parents instead of growing without
    limit.
    """

    broker: Hashable
    start: float = 0.0
    duration: float = math.inf
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1 (1 = no-op)")
        if self.duration < 0:
            raise ValueError("fault duration must be non-negative")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class PartitionFault:
    """A network partition isolating *group* from every other broker.

    While active on ``[start, start + duration)``, every link with
    exactly one endpoint inside *group* drops all traffic in both
    directions; links internal to the group (and links entirely outside
    it) are untouched.  Both sides stay alive -- this is the failure
    mode a repair coordinator must NOT mistake for a dead broker.
    """

    group: tuple
    start: float = 0.0
    duration: float = math.inf

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", tuple(self.group))
        if not self.group:
            raise ValueError("a partition needs at least one broker inside")
        if self.duration < 0:
            raise ValueError("fault duration must be non-negative")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def severs(self, x: Hashable, y: Hashable) -> bool:
        """Whether the link ``x -- y`` crosses the partition boundary."""
        return (x in self.group) != (y in self.group)


@dataclass
class FaultPlan:
    """A declarative failure schedule: what breaks, when, for how long."""

    crashes: list[BrokerCrash] = field(default_factory=list)
    link_faults: list[LinkFault] = field(default_factory=list)
    partitions: list[PartitionFault] = field(default_factory=list)
    slowdowns: list[BrokerSlowdown] = field(default_factory=list)

    @classmethod
    def random(
        cls,
        brokers: Sequence[Hashable],
        horizon: float,
        *,
        seed: int,
        crash_probability: float = 0.2,
        crash_duration: float | None = None,
        permanent_crash_probability: float = 0.0,
        link_loss: float = 0.0,
        latency_spikes: int = 0,
        spike_extra_latency: float = 0.1,
        links: Sequence[tuple[Hashable, Hashable]] | None = None,
    ) -> "FaultPlan":
        """A seeded random plan over *horizon* seconds.

        Each broker independently crashes with *crash_probability* at a
        uniform time in the first 80% of the horizon and restarts after
        *crash_duration* (default: 10% of the horizon, jittered +-50%);
        with *permanent_crash_probability* a crashing broker instead
        never restarts (sampled after the crash decision, so raising it
        does not change which brokers crash or when).  *link_loss*
        applies a background drop probability to every link for the
        whole run; *latency_spikes* adds that many transient delay
        bursts on random *links* (ignored when no links are given).
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= crash_probability <= 1.0:
            raise ValueError("crash probability must be within [0, 1]")
        if not 0.0 <= permanent_crash_probability <= 1.0:
            raise ValueError(
                "permanent crash probability must be within [0, 1]"
            )
        rng = random.Random(seed)
        # Permanence decisions come from their own stream so that raising
        # permanent_crash_probability never perturbs the crash schedule.
        permanence_rng = random.Random(f"permanent-crashes-{seed}")
        base_duration = (
            crash_duration if crash_duration is not None else 0.1 * horizon
        )
        crashes = []
        for broker in brokers:
            if rng.random() >= crash_probability:
                continue
            at = rng.uniform(0.0, 0.8 * horizon)
            duration = base_duration * rng.uniform(0.5, 1.5)
            if permanence_rng.random() < permanent_crash_probability:
                duration = math.inf
            crashes.append(BrokerCrash(broker, at, duration))
        link_faults = []
        if link_loss > 0:
            link_faults.append(LinkFault(loss=link_loss))
        if latency_spikes and links:
            for _ in range(latency_spikes):
                a, b = rng.choice(list(links))
                start = rng.uniform(0.0, 0.8 * horizon)
                link_faults.append(
                    LinkFault(
                        a,
                        b,
                        start=start,
                        duration=0.1 * horizon,
                        extra_latency=spike_extra_latency,
                    )
                )
        return cls(crashes=crashes, link_faults=link_faults)

    # -- analytics (feed the paper's loss model) ----------------------------

    def downtime(self, broker: Hashable, horizon: float) -> float:
        """Total seconds *broker* is down within ``[0, horizon)``."""
        total = 0.0
        for crash in self.crashes:
            if crash.broker != broker:
                continue
            start = max(0.0, crash.at)
            end = min(horizon, crash.restart_at)
            total += max(0.0, end - start)
        return total

    def mean_down_fraction(
        self, brokers: Iterable[Hashable], horizon: float
    ) -> float:
        """Average fraction of the horizon a broker spends crashed."""
        population = list(brokers)
        if not population or horizon <= 0:
            return 0.0
        return sum(
            self.downtime(broker, horizon) for broker in population
        ) / (len(population) * horizon)


class FaultInjector:
    """Replays a :class:`FaultPlan` against a :class:`Simulator`.

    The injector keeps the *current* failure state queryable
    (:meth:`broker_up`, :meth:`link_loss`, :meth:`extra_latency`) and
    samples per-transmission loss decisions from its own seeded RNG
    (:meth:`deliverable`), so every consumer of the same plan + seed sees
    the identical failure trace.  Overlays register a transition listener
    to learn when a broker actually crashes or restarts.
    """

    def __init__(self, sim: Simulator, plan: FaultPlan, seed: int = 0):
        self.sim = sim
        self.plan = plan
        self.rng = random.Random(seed)
        self._down: set[Hashable] = set()
        self._listeners: list[Callable[[str, Hashable], None]] = []
        self._installed = False
        #: Chronological ``(time, "crash" | "restart", broker)`` log.
        self.transitions: list[tuple[float, str, Hashable]] = []

    # -- wiring -------------------------------------------------------------

    def on_transition(self, listener: Callable[[str, Hashable], None]) -> None:
        """Call ``listener(kind, broker)`` on every crash/restart."""
        self._listeners.append(listener)

    def install(self) -> None:
        """Schedule every planned crash/restart on the simulator."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        for crash in self.plan.crashes:
            self.sim.schedule_at(
                crash.at, lambda b=crash.broker: self._crash(b)
            )
            if math.isfinite(crash.restart_at):
                self.sim.schedule_at(
                    crash.restart_at, lambda b=crash.broker: self._restart(b)
                )

    def _crash(self, broker: Hashable) -> None:
        if broker in self._down:
            return
        self._down.add(broker)
        self.transitions.append((self.sim.now, "crash", broker))
        for listener in self._listeners:
            listener("crash", broker)

    def _restart(self, broker: Hashable) -> None:
        if broker not in self._down:
            return
        self._down.discard(broker)
        self.transitions.append((self.sim.now, "restart", broker))
        for listener in self._listeners:
            listener("restart", broker)

    # -- queryable failure state -------------------------------------------

    def broker_up(self, broker: Hashable) -> bool:
        """Whether *broker* is currently alive."""
        return broker not in self._down

    def _active_faults(
        self, a: Hashable, b: Hashable
    ) -> Iterable[LinkFault]:
        now = self.sim.now
        for fault in self.plan.link_faults:
            if fault.active(now) and fault.applies(a, b):
                yield fault

    def partition_severed(self, a: Hashable, b: Hashable) -> bool:
        """Whether an active partition cuts the link ``a -- b`` right now."""
        now = self.sim.now
        return any(
            partition.active(now) and partition.severs(a, b)
            for partition in self.plan.partitions
        )

    def link_loss(self, a: Hashable, b: Hashable) -> float:
        """Combined drop probability on link ``a -- b`` right now."""
        if self.partition_severed(a, b):
            return 1.0
        survive = 1.0
        for fault in self._active_faults(a, b):
            if fault.partitioned:
                return 1.0
            survive *= 1.0 - fault.loss
        return 1.0 - survive

    def extra_latency(self, a: Hashable, b: Hashable) -> float:
        """Additional one-way delay on link ``a -- b`` right now."""
        return sum(
            fault.extra_latency for fault in self._active_faults(a, b)
        )

    def cost_factor(self, broker: Hashable) -> float:
        """Processing-cost multiplier for *broker* right now (>= 1).

        Active :class:`BrokerSlowdown`\\ s compound multiplicatively;
        overlays multiply every unit of broker matching work by this.
        """
        factor = 1.0
        now = self.sim.now
        for slowdown in self.plan.slowdowns:
            if slowdown.broker == broker and slowdown.active(now):
                factor *= slowdown.factor
        return factor

    def deliverable(self, a: Hashable, b: Hashable) -> bool:
        """Sample whether one transmission over ``a -- b`` survives.

        Consumes the injector RNG only when the link is actually lossy,
        so fault-free runs stay byte-identical to un-injected ones.
        """
        loss = self.link_loss(a, b)
        if loss <= 0.0:
            return True
        if loss >= 1.0:
            return False
        return self.rng.random() >= loss
