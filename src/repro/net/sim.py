"""A minimal, deterministic discrete-event simulator.

Time is a float in seconds.  Callbacks scheduled for the same instant fire
in scheduling order (a monotonically increasing sequence number breaks
ties), which keeps runs reproducible for fixed seeds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """The virtual time the callback is scheduled for."""
        return self._event.time


class Simulator:
    """The virtual clock and pending-event queue."""

    def __init__(self):
        self.now = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run *callback* at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = _ScheduledEvent(self.now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Run *callback* at absolute virtual *time* (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at time {time}, which is before now "
                f"{self.now}"
            )
        return self.schedule(time - self.now, callback)

    def peek_time(self) -> float | None:
        """Virtual time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next event; returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """Drain the queue, optionally stopping at time *until* or after
        *max_events* callbacks.

        With ``until``, the clock is advanced exactly to ``until`` even if
        the queue drains early, so periodic monitors see a full window.
        """
        fired = 0
        while self._queue:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and fired >= max_events:
                return
            self.step()
            fired += 1
        if until is not None and self.now < until:
            self.now = until
