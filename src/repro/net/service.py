"""Request/response service endpoints on the simulated network.

The broker overlay (:mod:`repro.net.simnet`) models the *dissemination*
plane; this module models the *control* plane: named service nodes (KDC
replicas, clients) exchanging request/response messages over links that
are subject to the same :class:`~repro.net.faults.FaultInjector` state --
link loss, partitions, latency spikes, and node crash windows.

Semantics are deliberately minimal and failure-realistic:

- a request dispatched to a crashed node, or lost on the link, simply
  vanishes (no error signal: the caller's *timeout* is the only
  failure detector, exactly as over UDP/TCP-with-dead-peer);
- the reply rides the reverse link and is subject to the same fates, so
  a handler may execute while its reply is lost -- which is why service
  handlers must be idempotent (see the request-dedup cache in
  :mod:`repro.core.kdcservice`);
- every loss decision comes from the injector's seeded RNG, so runs are
  exactly reproducible.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.net.faults import FaultInjector
from repro.net.sim import Simulator
from repro.obs.metrics import MetricsRegistry, RegistryBackedStats

#: A service handler: ``handler(sender, payload) -> reply payload``.
#: Returning ``None`` suppresses the reply (the caller will time out).
ServiceHandler = Callable[[Hashable, object], object]


class ServiceStats(RegistryBackedStats):
    """Control-plane traffic counters for the chaos reports.

    Registry-backed (``svc_<field>_total``); the attribute API is a thin
    view over shared counters.
    """

    _int_fields = (
        "requests_sent",
        "requests_delivered",
        "replies_sent",
        "replies_delivered",
        # Messages that vanished: link loss, partition, or a dead endpoint.
        "lost",
    )
    _metric_prefix = "svc_"


class ServiceNetwork:
    """Point-to-point request/response messaging on a :class:`Simulator`.

    *latency* is the one-way delay between any two service nodes (the
    control plane is star-shaped in the experiments; a callable
    ``latency(src, dst)`` models heterogeneous links).  *faults* -- when
    given -- governs deliverability and node liveness: a node is
    reachable only while ``faults.broker_up(node)`` holds at *delivery*
    time, and each transmission survives per ``faults.deliverable``.
    """

    def __init__(
        self,
        sim: Simulator,
        faults: FaultInjector | None = None,
        latency: Callable[[Hashable, Hashable], float] | float = 0.005,
        registry: MetricsRegistry | None = None,
    ):
        self.sim = sim
        self.faults = faults
        self.registry = registry if registry is not None else MetricsRegistry()
        self._latency_of = (
            latency
            if callable(latency)
            else (lambda _src, _dst: float(latency))
        )
        self._handlers: dict[Hashable, ServiceHandler] = {}
        self.stats = ServiceStats(self.registry)

    # -- wiring --------------------------------------------------------------

    def register(self, node_id: Hashable, handler: ServiceHandler) -> None:
        """Bind *handler* as the request processor of *node_id*."""
        if node_id in self._handlers:
            raise ValueError(f"service node {node_id!r} already registered")
        self._handlers[node_id] = handler

    def node_up(self, node_id: Hashable) -> bool:
        """Whether *node_id* is currently alive per the fault injector."""
        return self.faults is None or self.faults.broker_up(node_id)

    # -- messaging -----------------------------------------------------------

    def _transmit(
        self,
        src: Hashable,
        dst: Hashable,
        on_arrival: Callable[[], None],
    ) -> None:
        """One one-way transmission; lost messages vanish silently."""
        if self.faults is not None and not self.faults.deliverable(src, dst):
            self.stats.lost += 1
            return
        delay = self._latency_of(src, dst) + (
            self.faults.extra_latency(src, dst)
            if self.faults is not None
            else 0.0
        )

        def arrive() -> None:
            if not self.node_up(dst):
                self.stats.lost += 1
                return
            on_arrival()

        self.sim.schedule(delay, arrive)

    def request(
        self,
        src: Hashable,
        dst: Hashable,
        payload: object,
        on_reply: Callable[[object], None] | None = None,
    ) -> None:
        """Send *payload* from *src* to *dst*; route any reply back.

        There is no failure signal: if the request or the reply is lost,
        or *dst* is down (or unregistered -- still booting), *on_reply*
        is simply never called.  Callers own their timeouts.
        """
        self.stats.requests_sent += 1

        def deliver() -> None:
            handler = self._handlers.get(dst)
            if handler is None:
                self.stats.lost += 1
                return
            self.stats.requests_delivered += 1
            reply = handler(src, payload)
            if reply is None or on_reply is None:
                return
            self.stats.replies_sent += 1

            def deliver_reply() -> None:
                self.stats.replies_delivered += 1
                on_reply(reply)

            self._transmit(dst, src, deliver_reply)

        self._transmit(src, dst, deliver)
