"""Bounded end-to-end duplicate suppression.

At-least-once hop transport, multipath fan-out, journal replays, and
tree-repair re-publication all have the same failure-compensation shape:
when in doubt, send again.  The receiving edge therefore needs a single,
*bounded* structure that turns "delivered at least once" into "observed
exactly once": a :class:`DedupWindow`.

The window tracks, per event source (a publisher identity, or a
subscriber endpoint on the overlay), the highest sequence number seen and
the set of sequence numbers inside a sliding window below it.  A sequence
number is suppressed when it was already recorded, or when it has fallen
behind the window (the safe direction: an ancient straggler is suppressed
rather than re-delivered -- re-surfacing a duplicate breaks exactly-once,
while suppressing a first delivery that is more than ``window`` events
stale is the documented, bounded-memory trade-off).

Memory is bounded on both axes: at most ``window`` sequence numbers per
source, at most ``max_sources`` sources (LRU-evicted, counted).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


@dataclass
class _SourceWindow:
    """Dedup state for one event source."""

    max_seq: int = -1
    recent: set[int] = field(default_factory=set)


class DedupWindow:
    """Sliding-window exactly-once filter over (source, sequence) pairs.

    ``seen(source, seq)`` is check-and-record: it returns ``True`` when
    the pair must be suppressed as a duplicate and ``False`` exactly once
    per fresh pair, recording it.  Sequence numbers may arrive out of
    order; anything within ``window`` of the source's maximum is tracked
    precisely.

    >>> window = DedupWindow(window=4)
    >>> [window.seen("p", seq) for seq in (0, 1, 1, 0, 2)]
    [False, False, True, True, False]
    """

    def __init__(
        self,
        window: int = 1024,
        max_sources: int = 4096,
        registry: "MetricsRegistry | None" = None,
        **labels: str,
    ):
        if window < 1:
            raise ValueError("dedup window must hold at least one sequence")
        if max_sources < 1:
            raise ValueError("dedup must track at least one source")
        self.window = window
        self.max_sources = max_sources
        self._sources: OrderedDict[Hashable, _SourceWindow] = OrderedDict()
        #: Fresh pairs accepted.
        self.accepted = 0
        #: Duplicates suppressed (exact window hits).
        self.suppressed = 0
        #: Sequences suppressed for having fallen behind the window.
        self.suppressed_stale = 0
        #: Sources dropped by the LRU bound.
        self.sources_evicted = 0
        self._c_suppressed = self._c_evicted = None
        if registry is not None:
            self._c_suppressed = registry.counter(
                "dedup_suppressed_total", **labels
            )
            self._c_evicted = registry.counter(
                "dedup_sources_evicted_total", **labels
            )

    def __len__(self) -> int:
        return len(self._sources)

    def tracked(self, source: Hashable) -> int:
        """Sequence numbers currently tracked for *source*."""
        state = self._sources.get(source)
        return len(state.recent) if state is not None else 0

    def seen(self, source: Hashable, seq: int) -> bool:
        """Whether (source, seq) is a duplicate; records it when fresh."""
        state = self._sources.get(source)
        if state is None:
            state = _SourceWindow()
            self._sources[source] = state
            if len(self._sources) > self.max_sources:
                self._sources.popitem(last=False)
                self.sources_evicted += 1
                if self._c_evicted is not None:
                    self._c_evicted.inc()
        else:
            self._sources.move_to_end(source)

        horizon = state.max_seq - self.window
        if state.max_seq >= 0 and seq <= horizon:
            self.suppressed_stale += 1
            self._count_suppressed()
            return True
        if seq in state.recent:
            self.suppressed += 1
            self._count_suppressed()
            return True

        state.recent.add(seq)
        if seq > state.max_seq:
            state.max_seq = seq
            if len(state.recent) > self.window:
                floor = state.max_seq - self.window
                state.recent = {s for s in state.recent if s > floor}
        self.accepted += 1
        return False

    def _count_suppressed(self) -> None:
        if self._c_suppressed is not None:
            self._c_suppressed.inc()

    def suppressed_total(self) -> int:
        """All suppressions, exact and stale."""
        return self.suppressed + self.suppressed_stale
