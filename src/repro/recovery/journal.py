"""Durable broker state: an in-sim write-ahead log with snapshots.

PR 1's recovery protocol rebuilt a restarted broker's subscription table
by asking the *neighbours* to re-send it (children replay their forwarded
filters, clients re-subscribe).  That works, but it couples recovery
latency to lossy links and makes a restarted broker's correctness depend
on every neighbour noticing the new incarnation.  A production broker
instead journals its own routing state to durable storage and replays it
locally on restart.

:class:`BrokerJournal` models that disk: an append-only log of
subscription-table mutations, compacted into a snapshot every
``snapshot_every`` records, plus a bounded ring of *in-flight* events
(accepted for forwarding but not yet acknowledged by every downstream
hop).  The journal survives the crash of its broker -- that is the whole
point of a disk -- and :meth:`replay` reconstructs the exact table the
broker had when it went down.

:class:`JournalStore` is the per-overlay collection of these disks, keyed
by broker id.  A permanently failed broker's journal remains readable by
the repair coordinator (modeling an operator re-attaching the volume, or
a replicated log), which is how in-flight events caught inside a dead
broker still reach their subscribers.

Everything here is deliberately in-process and deterministic: records are
plain tuples, "disk writes" are list appends, and the only instrumented
costs are the counters exported through :mod:`repro.obs`
(``journal_records_total``, ``journal_snapshots_total``,
``journal_replays_total``, ``journal_replayed_events_total``,
``journal_inflight_evicted_total``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.siena.events import Event
    from repro.siena.filters import Filter

#: WAL record kinds.
SUBSCRIBE = "subscribe"
UNSUBSCRIBE = "unsubscribe"
FORWARDED = "forwarded"
UNFORWARDED = "unforwarded"


@dataclass
class JournalState:
    """A broker's routing state as reconstructed from its journal."""

    #: ``interface -> filters`` registrations, in registration order.
    subscriptions: list[tuple[Hashable, "Filter"]] = field(
        default_factory=list
    )
    #: Filters announced upstream (the covering-reduced set).
    forwarded_upstream: list["Filter"] = field(default_factory=list)
    #: ``(seq, event)`` pairs accepted but not fully handed downstream.
    inflight: list[tuple[int, "Event"]] = field(default_factory=list)


class BrokerJournal:
    """Write-ahead log + snapshot of one broker's durable state."""

    def __init__(
        self,
        broker_id: Hashable,
        snapshot_every: int = 256,
        inflight_capacity: int = 512,
        registry: "MetricsRegistry | None" = None,
    ):
        if snapshot_every < 1:
            raise ValueError("snapshot threshold must be positive")
        if inflight_capacity < 1:
            raise ValueError("in-flight capacity must be positive")
        self.broker_id = broker_id
        self.snapshot_every = snapshot_every
        self.inflight_capacity = inflight_capacity
        self._wal: list[tuple] = []
        self._snapshot: JournalState | None = None
        self._inflight: OrderedDict[int, "Event"] = OrderedDict()
        self.records_appended = 0
        self.snapshots_taken = 0
        self.replays = 0
        self.inflight_evicted = 0
        if registry is not None:
            labels = {"broker": str(broker_id)}
            self._c_records = registry.counter(
                "journal_records_total", **labels
            )
            self._c_snapshots = registry.counter(
                "journal_snapshots_total", **labels
            )
            self._c_replays = registry.counter(
                "journal_replays_total", **labels
            )
            self._c_evicted = registry.counter(
                "journal_inflight_evicted_total", **labels
            )
        else:
            self._c_records = self._c_snapshots = None
            self._c_replays = self._c_evicted = None

    # -- write path ---------------------------------------------------------

    def _append(self, record: tuple) -> None:
        self._wal.append(record)
        self.records_appended += 1
        if self._c_records is not None:
            self._c_records.inc()
        if len(self._wal) >= self.snapshot_every:
            self._compact()

    def log_subscribe(self, interface: Hashable, flt: "Filter") -> None:
        """One new ``(interface, filter)`` registration."""
        self._append((SUBSCRIBE, interface, flt))

    def log_unsubscribe(self, interface: Hashable, flt: "Filter") -> None:
        """One registration withdrawn."""
        self._append((UNSUBSCRIBE, interface, flt))

    def log_forwarded(self, flt: "Filter") -> None:
        """A filter announced upstream (joined the covering set)."""
        self._append((FORWARDED, flt))

    def log_unforwarded(self, flt: "Filter") -> None:
        """A filter withdrawn upstream (left the covering set)."""
        self._append((UNFORWARDED, flt))

    def log_event(self, seq: int, event: "Event") -> None:
        """Record an in-flight event accepted for forwarding."""
        self._inflight[seq] = event
        self._inflight.move_to_end(seq)
        if len(self._inflight) > self.inflight_capacity:
            self._inflight.popitem(last=False)
            self.inflight_evicted += 1
            if self._c_evicted is not None:
                self._c_evicted.inc()

    def mark_done(self, seq: int) -> None:
        """Forget *seq*: every downstream hop has acknowledged it."""
        self._inflight.pop(seq, None)

    # -- compaction ---------------------------------------------------------

    def _compact(self) -> None:
        """Fold the WAL into a fresh snapshot and truncate it."""
        self._snapshot = self._materialize()
        self._wal = []
        self.snapshots_taken += 1
        if self._c_snapshots is not None:
            self._c_snapshots.inc()

    def _materialize(self) -> JournalState:
        state = JournalState()
        if self._snapshot is not None:
            state.subscriptions = list(self._snapshot.subscriptions)
            state.forwarded_upstream = list(
                self._snapshot.forwarded_upstream
            )
        for record in self._wal:
            kind = record[0]
            if kind == SUBSCRIBE:
                _, interface, flt = record
                if (interface, flt) not in state.subscriptions:
                    state.subscriptions.append((interface, flt))
            elif kind == UNSUBSCRIBE:
                _, interface, flt = record
                if (interface, flt) in state.subscriptions:
                    state.subscriptions.remove((interface, flt))
            elif kind == FORWARDED:
                _, flt = record
                if flt not in state.forwarded_upstream:
                    state.forwarded_upstream.append(flt)
            elif kind == UNFORWARDED:
                _, flt = record
                if flt in state.forwarded_upstream:
                    state.forwarded_upstream.remove(flt)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown journal record {kind!r}")
        return state

    # -- read path ----------------------------------------------------------

    def replay(self) -> JournalState:
        """Reconstruct the broker's routing state (snapshot + WAL tail)."""
        self.replays += 1
        if self._c_replays is not None:
            self._c_replays.inc()
        state = self._materialize()
        state.inflight = list(self._inflight.items())
        return state

    def inflight_events(self) -> list[tuple[int, "Event"]]:
        """The in-flight ring, oldest first (for salvage without replay)."""
        return list(self._inflight.items())

    @property
    def wal_length(self) -> int:
        """Records currently in the un-compacted WAL tail."""
        return len(self._wal)


class JournalStore:
    """Per-broker durable disks for one overlay.

    ``snapshot_every`` / ``inflight_capacity`` apply to every journal the
    store creates; *registry* threads the shared metrics registry in so
    each journal's counters are exported with a ``broker`` label.
    """

    def __init__(
        self,
        snapshot_every: int = 256,
        inflight_capacity: int = 512,
        registry: "MetricsRegistry | None" = None,
    ):
        self.snapshot_every = snapshot_every
        self.inflight_capacity = inflight_capacity
        self.registry = registry
        self._journals: dict[Hashable, BrokerJournal] = {}

    def journal_for(self, broker_id: Hashable) -> BrokerJournal:
        """The journal (disk) of *broker_id*, created on first use."""
        journal = self._journals.get(broker_id)
        if journal is None:
            journal = BrokerJournal(
                broker_id,
                snapshot_every=self.snapshot_every,
                inflight_capacity=self.inflight_capacity,
                registry=self.registry,
            )
            self._journals[broker_id] = journal
        return journal

    def __contains__(self, broker_id: Hashable) -> bool:
        return broker_id in self._journals

    def __iter__(self) -> Iterable[Hashable]:
        return iter(self._journals)

    def total_records(self) -> int:
        """Records appended across every journal (reporting helper)."""
        return sum(
            journal.records_appended
            for journal in self._journals.values()
        )
