"""Self-healing overlay subsystem: durable state, repair, exactly-once.

Three cooperating pieces turn the at-least-once overlay of PR 1 into a
self-healing one:

- :mod:`repro.recovery.journal` -- per-broker durable disks (WAL +
  snapshot + bounded in-flight ring) so a restarted broker replays its
  own routing state instead of depending on neighbours re-sending it;
- :mod:`repro.recovery.repair` -- the coordinator that declares a
  permanently silent broker dead, re-parents its orphaned subtree to the
  nearest live ancestor, and salvages journaled in-flight events;
- :mod:`repro.recovery.dedup` -- the bounded sliding-window filter that
  turns "delivered at least once" into "observed exactly once" at the
  receiving edge.
"""

from repro.recovery.dedup import DedupWindow
from repro.recovery.journal import BrokerJournal, JournalState, JournalStore
from repro.recovery.repair import RepairCoordinator, RepairPolicy, RepairRecord

__all__ = [
    "BrokerJournal",
    "DedupWindow",
    "JournalState",
    "JournalStore",
    "RepairCoordinator",
    "RepairPolicy",
    "RepairRecord",
]
