"""Permanent-failure detection and dissemination-tree repair.

PR 1's failure detector distinguishes *down* from *up*, parks traffic,
and waits.  Against a transient crash that is the right call: the broker
restarts, neighbours replay state, parked events flush.  Against a
broker that dies *permanently*, waiting orphans its entire subtree
forever -- every subscriber below the corpse goes dark while upstream
brokers dutifully park events for a peer that will never ack again.

The :class:`RepairCoordinator` closes that gap.  It watches the existing
heartbeat detector; when a neighbour stays down past
``RepairPolicy.repair_after`` seconds, the coordinator declares it
permanently failed and performs tree surgery on the overlay:

1. **Probe.**  A management-plane liveness probe (out-of-band of the
   data links) distinguishes a dead broker from a live one behind a
   partition.  A live-but-partitioned peer is never excised -- the
   detector keeps parking until the partition heals (false alarms are
   counted, not acted on).
2. **Adopt.**  Every orphaned child re-parents to the *nearest live
   ancestor* of the dead broker, found by walking the current parent
   chain.  Re-parenting to an ancestor preserves acyclicity by
   construction (the adopter is already on the orphan's root path), so
   the overlay remains a tree and multipath ``G_ind`` level/indegree
   invariants are untouched.
3. **Re-propagate.**  Each adopted orphan replays its covering-reduced
   filter set to the new parent, and the dead broker's interface is
   dropped from its old parent's table, so routing converges to the
   repaired topology.
4. **Re-home.**  Subscriber endpoints attached directly to the dead
   broker re-attach (and re-subscribe) at the adopter.
5. **Salvage.**  In-flight events journaled on the dead broker's durable
   log (:mod:`repro.recovery.journal`) are replayed through the adopter;
   parked and pending traffic toward the corpse is re-routed.  End-to-end
   dedup keeps every re-send invisible to subscribers.

Metrics: ``recovery_repairs_total``, ``recovery_reparent_total``,
``recovery_clients_rehomed_total``, ``recovery_false_alarms_total``,
``recovery_failed_total``, and the ``recovery_convergence_seconds``
histogram (crash-to-repaired when the crash instant is known, otherwise
detection-to-repaired).  With a tracer, each repair records a
``("repair", dead)`` trace carrying ``recovery.reparent`` and
``journal.replay`` spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.simnet import SimulatedPubSub
    from repro.obs.tracing import Tracer


@dataclass
class RepairPolicy:
    """When the coordinator may declare a silent neighbour dead.

    *repair_after* is the continuous down-time (past detection) before
    surgery; it must exceed the deployment's expected transient-outage
    and partition-heal times, or the coordinator will excise brokers
    that were about to come back (re-join is not modeled).
    """

    repair_after: float = 0.5

    def __post_init__(self) -> None:
        if self.repair_after <= 0:
            raise ValueError("repair_after must be positive")


@dataclass
class RepairRecord:
    """One completed (or failed) tree repair."""

    dead: Hashable
    adopter: Hashable | None
    orphans: int
    clients_rehomed: int
    inflight_replayed: int
    detected_at: float
    completed_at: float
    crash_at: float | None

    @property
    def converged(self) -> bool:
        return self.adopter is not None

    @property
    def convergence_time(self) -> float:
        """Crash (when known, else detection) to repaired, in seconds."""
        origin = self.crash_at if self.crash_at is not None else self.detected_at
        return self.completed_at - origin


class RepairCoordinator:
    """Watches the failure detector and re-parents orphaned subtrees.

    Wired by :class:`~repro.net.simnet.SimulatedPubSub` when constructed
    with a ``repair`` policy; the overlay calls :meth:`neighbor_down` /
    :meth:`neighbor_up` from its heartbeat detector and exposes the
    surgery primitives (``adopt``, ``prune_dead``, ``rehome_clients``,
    ``salvage_inflight``) the coordinator drives.
    """

    def __init__(
        self,
        overlay: "SimulatedPubSub",
        policy: RepairPolicy,
        tracer: "Tracer | None" = None,
    ):
        self.overlay = overlay
        self.policy = policy
        self.tracer = tracer
        self.records: list[RepairRecord] = []
        self.repaired: set[Hashable] = set()
        self.false_alarms = 0
        self._first_down: dict[Hashable, float] = {}
        registry = overlay.registry
        self._c_repairs = registry.counter("recovery_repairs_total")
        self._c_reparent = registry.counter("recovery_reparent_total")
        self._c_rehomed = registry.counter(
            "recovery_clients_rehomed_total"
        )
        self._c_false = registry.counter("recovery_false_alarms_total")
        self._c_failed = registry.counter("recovery_failed_total")
        self._h_convergence = registry.histogram(
            "recovery_convergence_seconds"
        )

    # -- detector feed ------------------------------------------------------

    def neighbor_down(
        self, observer: Hashable, neighbor: Hashable, now: float
    ) -> None:
        """The detector at *observer* marked *neighbor* down at *now*."""
        self._first_down.setdefault(neighbor, now)
        self.overlay.sim.schedule(
            self.policy.repair_after,
            lambda: self._check(observer, neighbor),
        )

    def neighbor_up(
        self, observer: Hashable, neighbor: Hashable, now: float
    ) -> None:
        """The detector at *observer* saw *neighbor* again (recovery)."""
        self._first_down.pop(neighbor, None)

    # -- repair -------------------------------------------------------------

    def _check(self, observer: Hashable, neighbor: Hashable) -> None:
        overlay = self.overlay
        if neighbor in self.repaired:
            return
        if not overlay.is_marked_down(observer, neighbor):
            return  # recovered while the timer ran
        if not overlay.brokers[observer].alive:
            return  # the witness died; its own repair path handles it
        if overlay.brokers[neighbor].alive:
            # Management-plane probe says the peer is up: the silence is
            # a partition.  Never excise a live broker.
            self.false_alarms += 1
            self._c_false.inc()
            return
        self.repair(neighbor)

    def repair(self, dead: Hashable) -> RepairRecord:
        """Excise *dead* from the overlay and graft its subtree back in."""
        overlay = self.overlay
        self.repaired.add(dead)
        now = overlay.sim.now
        detected_at = self._first_down.get(dead, now)
        crash_at = overlay.crash_time_of(dead)
        adopter = self._nearest_live_ancestor(dead)
        if adopter is None:
            self._c_failed.inc()
            record = RepairRecord(
                dead, None, 0, 0, 0, detected_at, now, crash_at
            )
            self.records.append(record)
            return record

        if self.tracer is not None:
            self.tracer.start_trace(
                ("repair", dead), at=detected_at, dead=str(dead),
                adopter=str(adopter),
            )
        overlay.prune_dead(dead, adopter)
        orphans = list(overlay.brokers[dead].children)
        for child in orphans:
            overlay.adopt(child, adopter)
            self._c_reparent.inc()
            if self.tracer is not None:
                self.tracer.span(
                    ("repair", dead), "recovery.reparent", child,
                    now, overlay.sim.now, adopter=str(adopter),
                )
        rehomed = overlay.rehome_clients(dead, adopter)
        if rehomed:
            self._c_rehomed.inc(rehomed)
        overlay.flush_rerouted(dead)
        replayed = overlay.salvage_inflight(dead, adopter)
        if self.tracer is not None and replayed:
            self.tracer.span(
                ("repair", dead), "journal.replay", adopter,
                now, overlay.sim.now, events=replayed,
            )
        completed_at = overlay.sim.now
        self._c_repairs.inc()
        self._h_convergence.observe(
            completed_at
            - (crash_at if crash_at is not None else detected_at)
        )
        record = RepairRecord(
            dead,
            adopter,
            len(orphans),
            rehomed,
            replayed,
            detected_at,
            completed_at,
            crash_at,
        )
        self.records.append(record)
        return record

    def _nearest_live_ancestor(self, dead: Hashable) -> Hashable | None:
        """First live broker on *dead*'s current root path, or ``None``."""
        overlay = self.overlay
        seen = {dead}
        candidate = overlay.brokers[dead].parent
        while candidate is not None and candidate not in seen:
            if overlay.brokers[candidate].alive:
                return candidate
            seen.add(candidate)
            candidate = overlay.brokers[candidate].parent
        return None

    # -- reporting ----------------------------------------------------------

    def converged(self) -> bool:
        """Every attempted repair found an adopter."""
        return all(record.converged for record in self.records)

    def max_convergence_time(self) -> float:
        """Slowest crash-to-repaired time, NaN when nothing was repaired."""
        times = [r.convergence_time for r in self.records if r.converged]
        return max(times) if times else float("nan")
