"""Bounded priority-classed queues with configurable load shedding.

The unbounded hop queues that overload can grow without limit are
replaced by :class:`BoundedPriorityQueue`: a strict-priority queue
(lower class number served first, FIFO within a class) whose depth never
exceeds its capacity.  When an offer would overflow, one event is *shed*
according to the configured policy -- and regardless of policy the shed
victim always belongs to the **worst priority class present** among the
queued events plus the incoming one.  That yields two invariants the
property tests pin down for every policy and arrival pattern:

- ``len(queue) <= capacity`` at all times;
- a higher-priority event is never shed while a lower-priority event
  remains queued.

The three policies differ only in *which* member of the worst class is
sacrificed:

``drop-oldest``
    Evict the oldest worst-class event (favors freshness).
``drop-lowest-priority``
    Evict the newest *queued* worst-class event (favors the backlog;
    the incoming event is admitted whenever anything equally bad or
    worse is queued).
``reject-new``
    Refuse the incoming event when it belongs to the worst class;
    otherwise evict the newest queued worst-class event to admit it.

Under every policy an incoming event strictly worse than everything
queued is rejected outright -- shedding anything else would violate the
priority invariant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.flow.policy import priority_name
from repro.obs.metrics import MetricsRegistry

DROP_OLDEST = "drop-oldest"
DROP_LOWEST_PRIORITY = "drop-lowest-priority"
REJECT_NEW = "reject-new"

#: The recognized shed policies.
SHED_POLICIES = frozenset({DROP_OLDEST, DROP_LOWEST_PRIORITY, REJECT_NEW})


@dataclass(frozen=True)
class Offer:
    """Outcome of one :meth:`BoundedPriorityQueue.offer`.

    ``accepted`` says whether the offered item is now queued; ``shed``
    is the ``(item, priority)`` evicted to make room (the offered item
    itself when ``accepted`` is false), or ``None`` when nothing was
    shed.
    """

    accepted: bool
    shed: tuple[Any, int] | None = None


class BoundedPriorityQueue:
    """A strict-priority FIFO queue with a hard depth bound.

    ``labels`` (e.g. ``broker="b3", queue="ingress"``) scope the
    emitted metrics: ``flow_shed_total{..., priority}`` counters plus
    ``flow_queue_depth`` / ``flow_queue_peak_depth`` gauges.

    >>> q = BoundedPriorityQueue(capacity=2)
    >>> q.offer("a", priority=2).accepted
    True
    >>> q.offer("b", priority=0).accepted
    True
    >>> q.offer("c", priority=1)            # full: sheds worst class (2)
    Offer(accepted=True, shed=('a', 2))
    >>> q.take()
    ('b', 0)
    """

    def __init__(
        self,
        capacity: int,
        shed_policy: str = DROP_OLDEST,
        registry: MetricsRegistry | None = None,
        **labels: str,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must hold at least one event")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {shed_policy!r} "
                f"(choose from {sorted(SHED_POLICIES)})"
            )
        self.capacity = capacity
        self.shed_policy = shed_policy
        self._classes: dict[int, deque[Any]] = {}
        self._depth = 0
        self.peak_depth = 0
        self.shed_total = 0
        self._registry = registry
        self._labels = labels
        self._depth_gauge = None
        self._peak_gauge = None
        if registry is not None:
            self._depth_gauge = registry.gauge("flow_queue_depth", **labels)
            self._peak_gauge = registry.gauge(
                "flow_queue_peak_depth", **labels
            )

    def __len__(self) -> int:
        return self._depth

    def __bool__(self) -> bool:
        return self._depth > 0

    def depth_of(self, priority: int) -> int:
        """Number of queued events in class *priority*."""
        queue = self._classes.get(priority)
        return len(queue) if queue else 0

    def priorities(self) -> Iterator[int]:
        """Priority classes currently present, best first."""
        return iter(sorted(p for p, q in self._classes.items() if q))

    # -- internals ---------------------------------------------------------

    def _worst_queued(self) -> int | None:
        worst = None
        for priority, queue in self._classes.items():
            if queue and (worst is None or priority > worst):
                worst = priority
        return worst

    def _set_depth(self, depth: int) -> None:
        self._depth = depth
        if depth > self.peak_depth:
            self.peak_depth = depth
            if self._peak_gauge is not None:
                self._peak_gauge.set(depth)
        if self._depth_gauge is not None:
            self._depth_gauge.set(depth)

    def _count_shed(self, priority: int) -> None:
        self.shed_total += 1
        if self._registry is not None:
            self._registry.counter(
                "flow_shed_total",
                priority=priority_name(priority),
                **self._labels,
            ).inc()

    def _append(self, item: Any, priority: int) -> None:
        self._classes.setdefault(priority, deque()).append(item)
        self._set_depth(self._depth + 1)

    def _evict(self, priority: int, newest: bool) -> Any:
        queue = self._classes[priority]
        victim = queue.pop() if newest else queue.popleft()
        self._set_depth(self._depth - 1)
        self._count_shed(priority)
        return victim

    # -- the public protocol -----------------------------------------------

    def offer(self, item: Any, priority: int) -> Offer:
        """Enqueue *item*, shedding per policy if the queue is full."""
        if self._depth < self.capacity:
            self._append(item, priority)
            return Offer(accepted=True)
        worst = self._worst_queued()
        if worst is None or priority > worst:
            # The incoming event is the sole member of the worst class:
            # every policy rejects it rather than shed something better.
            self._count_shed(priority)
            return Offer(accepted=False, shed=(item, priority))
        if self.shed_policy == REJECT_NEW and priority == worst:
            self._count_shed(priority)
            return Offer(accepted=False, shed=(item, priority))
        newest = self.shed_policy != DROP_OLDEST
        victim = self._evict(worst, newest=newest)
        self._append(item, priority)
        return Offer(accepted=True, shed=(victim, worst))

    def take(self) -> tuple[Any, int] | None:
        """Dequeue the oldest event of the best class, or ``None``."""
        if self._depth == 0:
            return None
        best = min(p for p, q in self._classes.items() if q)
        item = self._classes[best].popleft()
        self._set_depth(self._depth - 1)
        return item, best

    def drain(self) -> list[tuple[Any, int]]:
        """Dequeue everything in service order."""
        drained: list[tuple[Any, int]] = []
        while True:
            entry = self.take()
            if entry is None:
                return drained
            drained.append(entry)
