"""Priority classes and the overload-protection policy bundle.

Every publication carries a *priority class* as a routable attribute
(:data:`PRIORITY_ATTRIBUTE`): an integer where **lower is more
important**.  The three conventional classes map onto the service tiers
of the dissemination stack:

- :data:`HIGH` (0) -- control traffic and premium subscriptions; the
  overload gates demand >= 99% delivery for this class at 3-5x the
  sustainable publish rate;
- :data:`NORMAL` (1) -- the default for unstamped events;
- :data:`BEST_EFFORT` (2) -- bulk traffic, first to be shed.

:class:`FlowControlPolicy` is the single knob bundle a transport needs
to run the overload-protection stack: bounded priority-classed queues
(capacity + shed policy), credit-based hop-to-hop flow control, and the
watermark-driven circuit breaker that sheds best-effort traffic while a
broker is degraded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.siena.events import Event

#: Routable attribute carrying an event's priority class (an int; lower
#: is more important).  Rides outside the sealed payload, like ``_seq``.
PRIORITY_ATTRIBUTE = "_class"

#: The conventional priority classes (lower value = higher priority).
HIGH = 0
NORMAL = 1
BEST_EFFORT = 2

_PRIORITY_NAMES = {HIGH: "high", NORMAL: "normal", BEST_EFFORT: "best-effort"}


def priority_name(priority: int) -> str:
    """Human/metric-label name for *priority* (unknown ints stringify)."""
    return _PRIORITY_NAMES.get(priority, str(priority))


def priority_of(event: Event, default: int = NORMAL) -> int:
    """The priority class stamped on *event*, or *default*."""
    value = event.get(PRIORITY_ATTRIBUTE)
    return value if isinstance(value, int) else default


def with_priority(event: Event, priority: int) -> Event:
    """A copy of *event* stamped with *priority*."""
    return event.with_attributes(**{PRIORITY_ATTRIBUTE: priority})


@dataclass(frozen=True)
class FlowControlPolicy:
    """Knobs for the overload-protection stack of one overlay.

    ``queue_capacity`` bounds every broker ingress queue and every
    per-link egress queue; ``credit_window`` is the number of
    unacknowledged in-flight-or-queued events a sender may have toward
    one downstream broker (it must not exceed ``queue_capacity`` or
    credits could overrun the ingress bound).
    """

    #: Events one bounded queue may hold (ingress and per-link egress).
    queue_capacity: int = 64
    #: What overflows do: ``"drop-oldest"``, ``"drop-lowest-priority"``,
    #: or ``"reject-new"`` (all three shed only from the worst priority
    #: class present; see :class:`~repro.flow.queues.BoundedPriorityQueue`).
    shed_policy: str = "drop-oldest"
    #: Per-link sender credit window (<= queue_capacity).
    credit_window: int = 32
    #: Queue-depth fraction that trips the overload breaker open.
    high_watermark: float = 0.85
    #: Queue-depth fraction below which the breaker may close again.
    low_watermark: float = 0.25
    #: Seconds the breaker stays open before probing (half-open).
    breaker_cooldown: float = 0.25
    #: Priority classes strictly greater than this are shed while the
    #: breaker is open (``NORMAL`` keeps high+normal, sheds best-effort).
    degrade_floor: int = NORMAL

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must hold at least one event")
        if not 1 <= self.credit_window <= self.queue_capacity:
            raise ValueError(
                "credit_window must be within [1, queue_capacity]: credits "
                "reserve ingress slots, so a larger window could overrun "
                "the bounded queue"
            )
        if not 0.0 < self.low_watermark < self.high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 < low < high <= 1"
            )
        if self.breaker_cooldown < 0:
            raise ValueError("breaker cooldown must be non-negative")
        # Fail fast on typo'd shed policies (validated again by the queue).
        from repro.flow.queues import SHED_POLICIES

        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r} "
                f"(choose from {sorted(SHED_POLICIES)})"
            )
