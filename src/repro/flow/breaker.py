"""Broker-level overload circuit breaking.

An :class:`OverloadBreaker` watches one broker's bounded ingress queue
and flips the broker into *degraded mode* when it saturates: while the
breaker is open, traffic in priority classes worse than the policy's
``degrade_floor`` is rejected at admission, preserving queue space (and
hence service capacity) for high-priority events.  The classic
three-state machine applies:

- **closed** -- healthy; everything is admitted.  A shed event or the
  queue crossing the high watermark trips the breaker open.
- **open** -- degraded; only classes at or above the floor are
  admitted.  After ``cooldown`` seconds the breaker moves to half-open.
- **half-open** -- probing; best-effort traffic is admitted again.  A
  relapse (shed or high-watermark) re-opens the breaker; the queue
  draining to the low watermark closes it.

The hysteresis between the two watermarks is what prevents flapping: a
queue hovering near the bound would otherwise toggle degraded mode on
every enqueue/dequeue pair.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.metrics import MetricsRegistry

CLOSED = 0
OPEN = 1
HALF_OPEN = 2

_STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half-open"}


class OverloadBreaker:
    """Watermark- and shed-driven circuit breaker for one broker.

    >>> b = OverloadBreaker(high_depth=4, low_depth=1, cooldown=1.0,
    ...                     degrade_floor=1)
    >>> b.admits(priority=2, now=0.0)
    True
    >>> b.record_shed(now=0.0)              # overflow trips it open
    >>> b.admits(priority=2, now=0.5)       # best-effort degraded
    False
    >>> b.admits(priority=0, now=0.5)       # high still flows
    True
    >>> b.observe_depth(0, now=2.0)         # cooled down: probe first
    >>> b.state_name
    'half-open'
    >>> b.observe_depth(0, now=2.0)         # drained below low watermark
    >>> b.state_name
    'closed'
    """

    def __init__(
        self,
        high_depth: int,
        low_depth: int,
        cooldown: float,
        degrade_floor: int,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
        **labels: str,
    ) -> None:
        if not 0 <= low_depth < high_depth:
            raise ValueError("watermarks must satisfy 0 <= low < high")
        self.high_depth = high_depth
        self.low_depth = low_depth
        self.cooldown = cooldown
        self.degrade_floor = degrade_floor
        self.state = CLOSED
        self.rejections = 0
        self.opened_at = 0.0
        self._registry = registry
        self._labels = labels
        self._state_gauge = None
        self._rejections_counter = None
        if registry is not None:
            self._state_gauge = registry.gauge(
                "flow_breaker_state", **labels
            )
            self._rejections_counter = registry.counter(
                "flow_breaker_rejections_total", **labels
            )

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def _transition(self, state: int, now: float) -> None:
        if state == self.state:
            return
        self.state = state
        if state == OPEN:
            self.opened_at = now
        if self._state_gauge is not None:
            self._state_gauge.set(state)
        if self._registry is not None:
            self._registry.counter(
                "flow_breaker_transitions_total",
                state=_STATE_NAMES[state],
                **self._labels,
            ).inc()

    def record_shed(self, now: float) -> None:
        """An overflow shed happened: the broker is overloaded."""
        self._transition(OPEN, now)

    def observe_depth(self, depth: int, now: float) -> None:
        """Feed the current ingress depth through the state machine."""
        if self.state == CLOSED:
            if depth >= self.high_depth:
                self._transition(OPEN, now)
        elif self.state == OPEN:
            if now - self.opened_at >= self.cooldown:
                self._transition(HALF_OPEN, now)
        elif self.state == HALF_OPEN:
            if depth >= self.high_depth:
                self._transition(OPEN, now)
            elif depth <= self.low_depth:
                self._transition(CLOSED, now)

    def admits(self, priority: int, now: float) -> bool:
        """Whether an event of *priority* may enter the broker at *now*."""
        if self.state == OPEN and now - self.opened_at >= self.cooldown:
            self._transition(HALF_OPEN, now)
        if self.state != OPEN or priority <= self.degrade_floor:
            return True
        self.rejections += 1
        if self._rejections_counter is not None:
            self._rejections_counter.inc()
        return False
