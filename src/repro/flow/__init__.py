"""Backpressure, admission control, and graceful degradation.

``repro.flow`` holds the transport-agnostic overload-protection
primitives threaded through the dissemination path:

- :mod:`repro.flow.policy` -- priority classes and the
  :class:`FlowControlPolicy` knob bundle;
- :mod:`repro.flow.queues` -- bounded priority-classed queues with
  configurable load shedding;
- :mod:`repro.flow.credit` -- credit-based hop-to-hop flow control;
- :mod:`repro.flow.aimd` -- AIMD adaptive publisher rate limiting;
- :mod:`repro.flow.breaker` -- broker-level overload circuit breaking;
- :mod:`repro.flow.admission` -- edge admission (token bucket with a
  high-priority reserve) and the :class:`RateLimited` signal.

The timed overlay (:mod:`repro.net.simnet`) and the synchronous broker
tree (:mod:`repro.api`) compose these pieces; everything here is plain
data-structure code that unit tests and property tests can drive
directly.
"""

from repro.flow.admission import AdmissionController, RateLimited, TokenBucket
from repro.flow.aimd import AIMDRateLimiter
from repro.flow.breaker import CLOSED, HALF_OPEN, OPEN, OverloadBreaker
from repro.flow.credit import CreditGate
from repro.flow.policy import (
    BEST_EFFORT,
    HIGH,
    NORMAL,
    PRIORITY_ATTRIBUTE,
    FlowControlPolicy,
    priority_name,
    priority_of,
    with_priority,
)
from repro.flow.queues import (
    DROP_LOWEST_PRIORITY,
    DROP_OLDEST,
    REJECT_NEW,
    SHED_POLICIES,
    BoundedPriorityQueue,
    Offer,
)

__all__ = [
    "AdmissionController",
    "AIMDRateLimiter",
    "BEST_EFFORT",
    "BoundedPriorityQueue",
    "CLOSED",
    "CreditGate",
    "DROP_LOWEST_PRIORITY",
    "DROP_OLDEST",
    "FlowControlPolicy",
    "HALF_OPEN",
    "HIGH",
    "NORMAL",
    "Offer",
    "OPEN",
    "OverloadBreaker",
    "PRIORITY_ATTRIBUTE",
    "priority_name",
    "priority_of",
    "RateLimited",
    "REJECT_NEW",
    "SHED_POLICIES",
    "TokenBucket",
    "with_priority",
]
