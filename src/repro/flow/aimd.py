"""AIMD adaptive publish-rate limiting.

Publishers cannot see broker queue depths directly; they see explicit
overload signals (shed notifications, breaker rejections,
``RateLimited``).  :class:`AIMDRateLimiter` converts those signals into
a publish pace with TCP's additive-increase / multiplicative-decrease
dynamics: each overload signal halves the target rate (at most once per
``cooldown`` so a burst of shed notifications from one congestion event
is a single decrease), and each successful send additively recovers
toward ``max_rate``.  The AIMD shape is what makes degradation graceful
instead of cliff-shaped -- offered load oscillates just above the
sustainable rate rather than thrashing the queues at the storm rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AIMDRateLimiter:
    """Token-paced rate limiter with AIMD adaptation.

    ``try_acquire(now)`` paces sends at the current ``rate``;
    ``on_overload(now)`` multiplies the rate by ``decrease`` and
    ``on_success()`` adds ``increase / rate`` (so recovery is roughly
    ``increase`` events/second per second of successful sending,
    independent of the current pace).

    >>> limiter = AIMDRateLimiter(rate=100.0)
    >>> limiter.try_acquire(now=0.0)
    True
    >>> limiter.try_acquire(now=0.0)        # paced: next slot at +10ms
    False
    >>> limiter.on_overload(now=0.0)
    >>> limiter.rate
    50.0
    """

    rate: float = 100.0
    min_rate: float = 1.0
    max_rate: float = 10_000.0
    increase: float = 10.0
    decrease: float = 0.5
    cooldown: float = 0.1
    overloads: int = field(default=0, init=False)
    _next_slot: float = field(default=0.0, init=False, repr=False)
    _last_decrease: float | None = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if not 0 < self.min_rate <= self.rate <= self.max_rate:
            raise ValueError(
                "rates must satisfy 0 < min_rate <= rate <= max_rate"
            )
        if not 0 < self.decrease < 1:
            raise ValueError("decrease must be a fraction in (0, 1)")
        if self.increase <= 0:
            raise ValueError("increase must be positive")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")

    def interval(self) -> float:
        """Seconds between sends at the current rate."""
        return 1.0 / self.rate

    def try_acquire(self, now: float) -> bool:
        """True if a send may happen at *now*; books the next slot."""
        if now < self._next_slot:
            return False
        self._next_slot = max(self._next_slot, now) + self.interval()
        return True

    def next_slot(self) -> float:
        """Earliest time the next ``try_acquire`` can succeed."""
        return self._next_slot

    def on_overload(self, now: float) -> None:
        """Multiplicative decrease (at most once per ``cooldown``)."""
        if (
            self._last_decrease is not None
            and now - self._last_decrease < self.cooldown
        ):
            return
        self._last_decrease = now
        self.overloads += 1
        self.rate = max(self.min_rate, self.rate * self.decrease)

    def on_success(self) -> None:
        """Additive increase credited to one successful send."""
        self.rate = min(self.max_rate, self.rate + self.increase / self.rate)
