"""Admission control at the edge of the dissemination network.

Backpressure inside the overlay (bounded queues + credits) protects
brokers from each other; :class:`AdmissionController` protects the
whole overlay from its publishers.  It is a token bucket with a
priority *reserve*: sustained intake is capped at ``rate`` events/s
with bursts up to ``burst``, and the last ``reserve`` fraction of the
bucket may only be drawn by events at or above ``reserve_floor`` -- so
a best-effort storm can never starve high-priority admission.

Publishers that are over their adapted rate see an explicit
:class:`RateLimited` rather than silent queueing, which is the overload
signal their AIMD limiter feeds on.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import RateLimited
from repro.flow.policy import HIGH, priority_name
from repro.obs.metrics import MetricsRegistry

__all__ = ["AdmissionController", "RateLimited", "TokenBucket"]


class TokenBucket:
    """A continuously-refilling token bucket.

    >>> bucket = TokenBucket(rate=10.0, burst=2.0)
    >>> bucket.try_take(now=0.0), bucket.try_take(now=0.0)
    (True, True)
    >>> bucket.try_take(now=0.0)            # burst spent
    False
    >>> bucket.try_take(now=0.1)            # 0.1s x 10/s = 1 token back
    True
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self.tokens = min(
                self.burst,
                self.tokens + (now - self._last_refill) * self.rate,
            )
            self._last_refill = now

    def try_take(self, now: float, floor: float = 0.0) -> bool:
        """Take one token at *now*, refusing to dip below *floor*."""
        self._refill(now)
        if self.tokens - 1.0 < floor - 1e-12:
            return False
        self.tokens -= 1.0
        return True


class AdmissionController:
    """Priority-aware token-bucket admission at the network edge.

    Rejections are counted as admission-stage sheds
    (``flow_shed_total{stage="admission", priority}``).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        reserve: float = 0.2,
        reserve_floor: int = HIGH,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
        **labels: str,
    ) -> None:
        if not 0.0 <= reserve < 1.0:
            raise ValueError("reserve must be a fraction in [0, 1)")
        self.bucket = TokenBucket(rate, burst)
        self.reserve_tokens = reserve * burst
        self.reserve_floor = reserve_floor
        self.rejected = 0
        self._clock = clock
        self._registry = registry
        self._labels = labels

    def admit(self, priority: int, now: float | None = None) -> bool:
        """Whether one event of *priority* may enter the network now."""
        if now is None:
            now = self._clock() if self._clock is not None else 0.0
        floor = 0.0 if priority <= self.reserve_floor else self.reserve_tokens
        if self.bucket.try_take(now, floor=floor):
            return True
        self.rejected += 1
        if self._registry is not None:
            self._registry.counter(
                "flow_shed_total",
                stage="admission",
                priority=priority_name(priority),
                **self._labels,
            ).inc()
        return False
