"""Credit-based hop-to-hop flow control.

A :class:`CreditGate` guards one directed broker link.  The sender must
acquire a credit before putting an event on the wire; the receiver
returns the credit once it has *dequeued the event for service* (not
merely buffered it).  With the credit window no larger than the
receiver's bounded ingress queue, a sender can never overrun a slow
downstream broker -- the backpressure propagates hop by hop up the tree
instead of piling up as silent queue growth.

When a sender wants to transmit but the window is exhausted it is
*stalled*: the gate counts the stall (``flow_credit_stalls_total``) and
times how long the sender waits for the next credit
(``flow_credit_stall_seconds``).  ``flow_credits_available`` gauges the
live window per link.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.metrics import MetricsRegistry


class CreditGate:
    """Sender-side credit window for one directed link.

    >>> gate = CreditGate(window=1)
    >>> gate.try_acquire()
    True
    >>> gate.try_acquire()      # window exhausted -> stall
    False
    >>> gate.release()
    >>> gate.try_acquire()
    True
    """

    def __init__(
        self,
        window: int,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] | None = None,
        **labels: str,
    ) -> None:
        if window < 1:
            raise ValueError("credit window must allow at least one event")
        self.window = window
        self.available = window
        self.stalls = 0
        self.stall_seconds = 0.0
        self._stalled_since: float | None = None
        self._clock = clock
        self._registry = registry
        self._labels = labels
        self._gauge = None
        self._stall_counter = None
        self._stall_histogram = None
        if registry is not None:
            self._gauge = registry.gauge("flow_credits_available", **labels)
            self._gauge.set(window)
            self._stall_counter = registry.counter(
                "flow_credit_stalls_total", **labels
            )
            self._stall_histogram = registry.histogram(
                "flow_credit_stall_seconds"
            )

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    @property
    def outstanding(self) -> int:
        """Credits currently held by in-flight events."""
        return self.window - self.available

    def try_acquire(self) -> bool:
        """Take one credit; on failure the gate starts a stall clock."""
        if self.available == 0:
            if self._stalled_since is None:
                self._stalled_since = self._now()
                self.stalls += 1
                if self._stall_counter is not None:
                    self._stall_counter.inc()
            return False
        if self._stalled_since is not None:
            waited = self._now() - self._stalled_since
            self._stalled_since = None
            self.stall_seconds += waited
            if self._stall_histogram is not None:
                self._stall_histogram.observe(waited)
        self.available -= 1
        if self._gauge is not None:
            self._gauge.set(self.available)
        return True

    def release(self) -> None:
        """Return one credit (receiver dequeued an event for service)."""
        if self.available >= self.window:
            raise RuntimeError("credit released that was never acquired")
        self.available += 1
        if self._gauge is not None:
            self._gauge.set(self.available)
