"""Subscriber-churn simulation: validating the M/M/N model empirically.

Section 3.2.2 analyzes key-management costs under an M/M/N subscriber
population (arrival rate ``lambda`` per inactive subscriber, departure
rate ``mu`` per active one).  This module *simulates* that population on
the discrete-event engine, drives both key-management designs with the
resulting join/leave stream, and measures:

- the active-subscriber count against ``NS = N lambda / (lambda + mu)``;
- the realized join rate against ``N lambda mu / (lambda + mu)``;
- per-epoch key messages for PSGuard vs. the group server, the measured
  counterpart of ``C_psguard`` and ``C_subscribergroup``.

The analytic model in :mod:`repro.analysis.models` is thereby checked
end to end rather than trusted.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.analysis.models import MMNPopulation
from repro.baseline.groups import GroupKeyServer
from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.net.sim import Simulator
from repro.siena.filters import Filter


@dataclass
class ChurnResult:
    """Measurements from one churn simulation."""

    duration: float
    joins: int
    leaves: int
    active_samples: list[int] = field(default_factory=list)
    psguard_keys_sent: int = 0
    psguard_hash_operations: int = 0
    group_keys_sent: int = 0
    group_key_generations: int = 0
    epochs_completed: int = 0
    group_epoch_messages: int = 0

    @property
    def mean_active(self) -> float:
        if not self.active_samples:
            return 0.0
        return sum(self.active_samples) / len(self.active_samples)

    @property
    def join_rate(self) -> float:
        return self.joins / self.duration if self.duration else 0.0


class ChurnSimulation:
    """M/M/N churn over both key-management designs."""

    def __init__(
        self,
        population: MMNPopulation,
        range_size: int = 1024,
        subscription_span: int = 64,
        epoch_length: float = 50.0,
        seed: int = 31,
    ):
        if subscription_span < 1 or subscription_span > range_size:
            raise ValueError("invalid subscription span")
        self.population = population
        self.range_size = range_size
        self.subscription_span = subscription_span
        self.epoch_length = epoch_length
        self.rng = random.Random(seed)

        self.sim = Simulator()
        self.kdc = KDC(master_key=bytes(range(16)))
        self.kdc.register_topic(
            "t",
            CompositeKeySpace({"v": NumericKeySpace("v", range_size)}),
            epoch_length=epoch_length,
        )
        self.group_server = GroupKeyServer(range_size)
        #: subscriber id -> active flag
        self._active: set[str] = set()
        self._result: ChurnResult | None = None

    # -- exponential clocks -------------------------------------------------

    def _exponential(self, rate: float) -> float:
        return self.rng.expovariate(rate) if rate > 0 else math.inf

    def _schedule_next_join(self, result: ChurnResult) -> None:
        inactive = self.population.total_subscribers - len(self._active)
        if inactive <= 0:
            # Re-check after the mean departure time.
            self.sim.schedule(
                1.0 / self.population.departure_rate,
                lambda: self._schedule_next_join(result),
            )
            return
        delay = self._exponential(self.population.arrival_rate * inactive)
        self.sim.schedule(delay, lambda: self._join(result))

    def _join(self, result: ChurnResult) -> None:
        subscriber = f"S{result.joins}"
        result.joins += 1
        low = self.rng.randint(0, self.range_size - self.subscription_span)
        high = low + self.subscription_span - 1

        grant = self.kdc.authorize(
            subscriber,
            Filter.numeric_range("t", "v", low, high),
            at_time=self.sim.now,
        )
        result.psguard_keys_sent += grant.key_count()
        result.psguard_hash_operations += grant.hash_operations

        cost = self.group_server.join(subscriber, low, high)
        result.group_keys_sent += cost.messages
        result.group_key_generations += cost.key_generations

        self._active.add(subscriber)
        departure = self._exponential(self.population.departure_rate)
        self.sim.schedule(departure, lambda: self._leave(subscriber, result))
        self._schedule_next_join(result)

    def _leave(self, subscriber: str, result: ChurnResult) -> None:
        if subscriber not in self._active:
            return
        self._active.discard(subscriber)
        self.group_server.leave(subscriber)
        result.leaves += 1

    def _epoch_boundary(self, result: ChurnResult) -> None:
        generations, messages = self.group_server.rekey_epoch()
        result.group_key_generations += generations
        result.group_epoch_messages += messages
        result.epochs_completed += 1
        # PSGuard: nothing to do -- renewals are client-initiated and the
        # KDC keeps no state to refresh.
        self.sim.schedule(
            self.epoch_length, lambda: self._epoch_boundary(result)
        )

    # -- driver -------------------------------------------------------------

    def run(self, duration: float, sample_interval: float = 1.0) -> ChurnResult:
        """Simulate *duration* seconds of churn and return measurements."""
        result = ChurnResult(duration=duration, joins=0, leaves=0)

        def sample() -> None:
            result.active_samples.append(len(self._active))
            self.sim.schedule(sample_interval, sample)

        self._schedule_next_join(result)
        self.sim.schedule(self.epoch_length, lambda: self._epoch_boundary(result))
        self.sim.schedule(sample_interval, sample)
        self.sim.run(until=duration)
        self._result = result
        return result


def relative_error(measured: float, predicted: float) -> float:
    """|measured - predicted| / predicted (predicted must be nonzero)."""
    if predicted == 0:
        raise ValueError("predicted value must be nonzero")
    return abs(measured - predicted) / abs(predicted)
