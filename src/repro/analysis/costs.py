"""NAKT cost formulas (Section 3.1, Tables 1-2).

For a binary NAKT over range ``R`` with least count ``lc``:

- **max keys** per subscription: ``2 log2(R/lc) - 2``;
- **avg keys** for a uniform random range of length ``phi_R``:
  ``log2(phi_R / lc)``;
- **max key-generation cost** at the KDC: ``4 log2(R/lc) - 2`` hashes;
- **avg key-generation cost**: ``log2(R/lc) + log2(phi_R/lc) - 1`` hashes;
- **max key-derivation cost** at a client: ``log2(R/lc)`` hashes;
- **avg key-derivation cost**: ``log2(phi_R/lc)`` hashes.

``NAKTCostModel`` also converts hash counts to microseconds using a
measured per-hash cost, regenerating Tables 1-2 on local hardware.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.crypto.hashes import H


def measure_hash_microseconds(iterations: int = 20000) -> float:
    """Measure the cost of one ``H`` invocation on this machine, in us."""
    payload = b"\x00" * 17  # key (16B) plus one branch byte
    start = time.perf_counter()
    for _ in range(iterations):
        H(payload)
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e6


@dataclass(frozen=True)
class NAKTCostModel:
    """Closed-form NAKT costs, parameterized by range and least count."""

    range_size: int
    least_count: int = 1
    hash_microseconds: float = 0.0

    def __post_init__(self) -> None:
        if self.range_size < 2:
            raise ValueError("range size must be at least 2")
        if not 1 <= self.least_count <= self.range_size:
            raise ValueError("invalid least count")

    @property
    def levels(self) -> float:
        """``log2(R / lc)`` -- the NAKT depth as a real number."""
        return math.log2(self.range_size / self.least_count)

    @property
    def depth(self) -> int:
        """The built tree's integer depth, ``ceil(log2(R/lc))``."""
        return math.ceil(self.levels)

    # -- key counts -------------------------------------------------------------

    def max_keys(self) -> float:
        """Worst-case authorization keys for any range: ``2 d - 2``.

        ``d`` is the integer tree depth (a real tree has whole levels);
        this reproduces Table 1's key counts exactly (12 / 18 / 26 for
        ``R`` of 10^2 / 10^3 / 10^4 at ``lc = 1``).
        """
        return max(1.0, 2.0 * self.depth - 2)

    def avg_keys(self, subscription_span: float) -> float:
        """Average keys for uniform random ranges of length *span*."""
        span_levels = math.log2(max(2.0, subscription_span / self.least_count))
        return span_levels

    # -- KDC key generation -------------------------------------------------------

    def max_keygen_hashes(self) -> float:
        """Worst-case KDC hashes per subscription: ``4 log2(R/lc) - 2``."""
        return max(1.0, 4 * self.levels - 2)

    def avg_keygen_hashes(self, subscription_span: float) -> float:
        """Average KDC hashes: ``log2(R/lc) + log2(phi/lc) - 1``."""
        span_levels = math.log2(max(2.0, subscription_span / self.least_count))
        return self.levels + span_levels - 1

    # -- client key derivation -------------------------------------------------------

    def max_derive_hashes(self) -> float:
        """Worst-case derivation cost: ``log2(R/lc)`` hashes."""
        return self.levels

    def avg_derive_hashes(self, subscription_span: float) -> float:
        """Average derivation cost: ``log2(phi/lc)`` hashes."""
        return math.log2(max(2.0, subscription_span / self.least_count))

    # -- microsecond conversion ---------------------------------------------------------

    def _microseconds(self, hashes: float) -> float:
        if self.hash_microseconds <= 0:
            raise ValueError(
                "construct the model with a measured hash_microseconds to "
                "convert hash counts to time"
            )
        return hashes * self.hash_microseconds

    def max_keygen_microseconds(self) -> float:
        """Table 1's "Key Gen" column on local hardware."""
        return self._microseconds(self.max_keygen_hashes())

    def max_derive_microseconds(self) -> float:
        """Table 1's "Key Derive" column on local hardware."""
        return self._microseconds(self.max_derive_hashes())

    def avg_keygen_microseconds(self, subscription_span: float) -> float:
        """Table 2's "Key Gen" column on local hardware."""
        return self._microseconds(self.avg_keygen_hashes(subscription_span))

    def avg_derive_microseconds(self, subscription_span: float) -> float:
        """Table 2's "Key Derive" column on local hardware."""
        return self._microseconds(self.avg_derive_hashes(subscription_span))
