"""The quantitative comparison of Section 3.2.2 (Tables 3-6).

Subscriber population: M/M/N with per-inactive-subscriber arrival rate
``lambda`` and per-active-subscriber departure rate ``mu`` over ``N``
subscribers total, giving ``NS = N * lambda / (lambda + mu)`` active
subscribers and a steady-state join rate ``N * lambda * mu / (lambda +
mu)``.

Messaging costs over one epoch of length ``T``:

- SubscriberGroup: each join touches ``NS_overlap = NS * min(2 phi_R / R,
  1)`` active subscribers, ~2 updated keys each, plus ``NS_overlap`` keys
  to the newcomer: ``6 * NS * phi_R / R`` keys per join;
- PSGuard: ``log2(phi_R)`` authorization keys per join, independent of
  ``NS``.

The cost ratio ``C_sg : C_psguard = 6 NS phi_R / (R log2 phi_R)`` is a
*lower bound*: the uniform subscription distribution assumed here is
provably the best case for the group approach (heavier-tailed interest
only increases overlap).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MMNPopulation:
    """The M/M/N subscriber population of Section 3.2.2."""

    total_subscribers: int
    arrival_rate: float
    departure_rate: float

    def __post_init__(self) -> None:
        if self.total_subscribers < 1:
            raise ValueError("population must be positive")
        if self.arrival_rate <= 0 or self.departure_rate <= 0:
            raise ValueError("rates must be positive")

    @property
    def active_subscribers(self) -> float:
        """``NS = N * lambda / (lambda + mu)``."""
        return (
            self.total_subscribers
            * self.arrival_rate
            / (self.arrival_rate + self.departure_rate)
        )

    @property
    def join_rate(self) -> float:
        """Steady-state joins per unit time: ``N lambda mu / (lambda+mu)``."""
        return (
            self.total_subscribers
            * self.arrival_rate
            * self.departure_rate
            / (self.arrival_rate + self.departure_rate)
        )


def overlap_probability(range_size: float, subscription_span: float) -> float:
    """Probability two uniform random ranges of length *span* overlap.

    ``min(2 phi_R / R, 1)`` (Section 3.2.2).
    """
    if range_size <= 0 or subscription_span < 0:
        raise ValueError("invalid range parameters")
    return min(2.0 * subscription_span / range_size, 1.0)


def subscriber_group_join_keys(
    active_subscribers: float, range_size: float, subscription_span: float
) -> float:
    """Keys moved per join under the group approach: ``3 * NS_overlap``.

    Two updated keys per overlapping active subscriber plus the newcomer's
    copy of each -- ``3 * NS * min(2 phi/R, 1)`` key messages.
    """
    overlap = active_subscribers * overlap_probability(
        range_size, subscription_span
    )
    return 3.0 * overlap


def psguard_join_keys(subscription_span: float) -> float:
    """Keys issued per join under PSGuard: ``log2(phi_R)``."""
    return math.log2(max(2.0, subscription_span))


def subscriber_group_epoch_messaging(
    population: MMNPopulation,
    epoch_length: float,
    range_size: float,
    subscription_span: float,
) -> float:
    """``C_subscribergroup``: keys moved over one epoch."""
    return (
        population.join_rate
        * epoch_length
        * subscriber_group_join_keys(
            population.active_subscribers, range_size, subscription_span
        )
    )


def psguard_epoch_messaging(
    population: MMNPopulation,
    epoch_length: float,
    subscription_span: float,
) -> float:
    """``C_psguard``: keys moved over one epoch (``NS``-independent)."""
    return (
        population.join_rate
        * epoch_length
        * psguard_join_keys(subscription_span)
    )


def cost_ratio_lower_bound(
    active_subscribers: float,
    range_size: float,
    subscription_span: float,
) -> float:
    """``C_sg : C_psguard >= 6 NS phi_R / (R log2 phi_R)`` (Tables 5-6).

    The epoch length and join rate cancel; uniform random subscription
    ranges minimize the ratio, so this is an absolute lower bound.  The
    formula is applied verbatim as in the paper's tables (no clamping of
    the overlap term at ``phi_R >= R/2``, where true overlap saturates --
    past that point the expression over-charges the group approach, but
    remains the quantity Tables 5-6 tabulate).
    """
    numerator = 6.0 * active_subscribers * subscription_span / range_size
    return numerator / math.log2(max(2.0, subscription_span))


def heavy_tail_overlap_multiplier(density: list[float], span: float) -> float:
    """How much a non-uniform interest density inflates overlap.

    For a density ``f`` over range positions, the overlap probability is
    ``~2 phi sum f(x)^2`` (Section 3.2.2); uniform ``f = 1/R`` minimizes
    ``sum f^2`` at ``1/R``, so the returned multiplier
    ``R * sum f(x)^2 >= 1`` quantifies the group approach's extra cost
    under realistic (auto-correlated, heavy-tailed) interest.
    """
    if not density:
        raise ValueError("empty density")
    total = sum(density)
    if total <= 0:
        raise ValueError("density must have positive mass")
    normalized = [value / total for value in density]
    sum_squares = sum(value * value for value in normalized)
    return len(normalized) * sum_squares


# -- Tables 3 and 4: symbolic cost inventories ---------------------------------


def kdc_cost_table(
    active_subscribers: float,
    range_size: float,
    subscription_span: float,
) -> dict[str, dict[str, float | bool]]:
    """Table 3: KDC-side costs per join (keys / hashes / state entries)."""
    phi_keys = psguard_join_keys(subscription_span)
    overlap_keys = subscriber_group_join_keys(
        active_subscribers, range_size, subscription_span
    )
    return {
        "psguard": {
            "join_message_keys": phi_keys,
            "join_compute_hashes": 2.0 * phi_keys,
            "storage_keys": 1.0,
            "stateless": True,
        },
        "subscriber_group": {
            "join_message_keys": 2.0 * overlap_keys,
            "join_compute_hashes": overlap_keys,
            "storage_keys": 2.0 * active_subscribers,
            "stateless": False,
        },
    }


def subscriber_cost_table(
    active_subscribers: float,
    range_size: float,
    subscription_span: float,
    hash_cost: float = 1.0,
    decrypt_cost: float = 10.0,
) -> dict[str, dict[str, float]]:
    """Table 4: subscriber-side costs (keys and event-processing units)."""
    phi_keys = psguard_join_keys(subscription_span)
    overlap = active_subscribers * overlap_probability(
        range_size, subscription_span
    )
    return {
        "psguard": {
            "join_keys_new_subscriber": phi_keys,
            "join_keys_active_subscribers": 0.0,
            "storage_keys": phi_keys,
            "event_processing": decrypt_cost + hash_cost * phi_keys,
        },
        "subscriber_group": {
            "join_keys_new_subscriber": overlap,
            "join_keys_active_subscribers": 2.0 * overlap,
            "storage_keys": overlap,
            "event_processing": decrypt_cost,
        },
    }
