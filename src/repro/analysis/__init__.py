"""Closed-form cost models (Sections 3.1, 3.2.2).

- :mod:`repro.analysis.costs` -- per-subscription key counts and key
  generation/derivation costs of the NAKT (Tables 1-2);
- :mod:`repro.analysis.models` -- the M/M/N subscriber-population model
  and the PSGuard vs. SubscriberGroup messaging-cost comparison
  (Tables 3-6).
"""

from repro.analysis.costs import NAKTCostModel
from repro.analysis.models import (
    MMNPopulation,
    cost_ratio_lower_bound,
    kdc_cost_table,
    overlap_probability,
    psguard_epoch_messaging,
    subscriber_cost_table,
    subscriber_group_epoch_messaging,
)

__all__ = [
    "MMNPopulation",
    "NAKTCostModel",
    "cost_ratio_lower_bound",
    "kdc_cost_table",
    "overlap_probability",
    "psguard_epoch_messaging",
    "subscriber_cost_table",
    "subscriber_group_epoch_messaging",
]
