#!/usr/bin/env python3
"""Medical-records dissemination over a full broker network.

Extends the quickstart to the paper's system architecture: sealed events
route through a hierarchical Siena broker tree with in-network matching,
multiple wards publish under per-publisher topic keys (Section 3.1
"Multiple Publishers"), and subscriptions mix numeric ranges with
category subsumption over a diagnosis ontology.

Run:  python examples/medical_records.py
"""

from repro.core import (
    KDC,
    CategoryKeySpace,
    CategoryTree,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    Subscriber,
)
from repro.siena import BrokerTree, Constraint, Event, Filter, Op


def build_kdc() -> tuple[KDC, CategoryTree]:
    kdc = KDC()
    kdc.register_topic(
        "cancerTrail",
        CompositeKeySpace({"age": NumericKeySpace("age", 128)}),
    )
    ontology = CategoryTree.from_spec(
        "conditions",
        {
            "oncology": {"lung": {}, "skin": {}, "lymphoma": {}},
            "cardiology": {"arrhythmia": {}, "ischemia": {}},
        },
    )
    kdc.register_topic(
        "admissions",
        CompositeKeySpace(
            {"condition": CategoryKeySpace("condition", ontology)}
        ),
        per_publisher=True,
    )
    return kdc, ontology


def _path(ontology: CategoryTree, label: str) -> str:
    """Root path string for routing-level subsumption (prefix matching)."""
    return "/".join(ontology.path(label)) + "/"


def main() -> None:
    kdc, ontology = build_kdc()
    schema_lookup = lambda topic: kdc.config_for(topic).schema  # noqa: E731

    # A 7-broker tree: the hospital data center publishes at the root,
    # clinics attach to leaf brokers.
    tree = BrokerTree(num_brokers=7)
    sealed_by_seq: dict[int, object] = {}
    inboxes: dict[str, list] = {}

    def attach(name: str, leaf_index: int, *filters: Filter,
               subscriber: Subscriber, publisher: str | None = None) -> None:
        inboxes[name] = []

        def deliver(routable: Event) -> None:
            sealed = sealed_by_seq[routable["_seq"]]
            result = subscriber.receive(sealed, schema_lookup)
            inboxes[name].append((routable, result))

        tree.attach_subscriber(name, tree.leaf_ids()[leaf_index], deliver)
        for subscription in filters:
            # Topics with per-publisher keys ("admissions") scope the
            # grant to one publisher's stream.
            grant_publisher = (
                publisher
                if any(c.value == "admissions" for c in subscription
                       if c.name == "topic")
                else None
            )
            subscriber.add_grant(
                kdc.authorize(name, subscription, publisher=grant_publisher)
            )
            tree.subscribe(name, subscription)

    # An oncology researcher: adult patients on the cancer trail, plus
    # every oncology admission (category subsumption).
    researcher = Subscriber("researcher")
    attach(
        "researcher", 0,
        Filter.numeric_range("cancerTrail", "age", 18, 65),
        # Category values travel as ontology path strings: brokers match
        # subsumption as a plain PREFIX test, the key space enforces the
        # same subtree cryptographically.
        Filter.of(
            Constraint("topic", Op.EQ, "admissions"),
            Constraint("condition", Op.PREFIX, _path(ontology, "oncology")),
        ),
        subscriber=researcher,
        publisher="ward-B",  # admissions grants are per publishing ward
    )

    # A cardiology ward display: cardiology admissions only.
    ward = Subscriber("cardio-ward")
    attach(
        "cardio-ward", 1,
        Filter.of(
            Constraint("topic", Op.EQ, "admissions"),
            Constraint("condition", Op.PREFIX, _path(ontology, "cardiology")),
        ),
        subscriber=ward,
        publisher="ward-B",
    )

    # Two publishing wards.  "admissions" uses per-publisher topic keys:
    # ward A cannot read ward B's publications.
    ward_a = Publisher("ward-A", kdc)
    ward_b = Publisher("ward-B", kdc)

    def publish(publisher: Publisher, attributes: dict, secret: set) -> None:
        seq = len(sealed_by_seq)
        event = Event(attributes, publisher=publisher.publisher_id)
        sealed = publisher.publish(event, secret_attributes=secret)
        sealed_by_seq[seq] = sealed
        tree.publish(sealed.routable.with_attributes(_seq=seq))

    publish(
        ward_a,
        {"topic": "cancerTrail", "age": 42,
         "patientRecord": "trial cohort 7, responding"},
        {"patientRecord"},
    )
    publish(
        ward_a,
        {"topic": "cancerTrail", "age": 77,
         "patientRecord": "trial cohort 9, stable"},
        {"patientRecord"},
    )
    publish(
        ward_b,
        {"topic": "admissions", "condition": _path(ontology, "lung"),
         "record": "admission #4411"},
        {"record"},
    )
    publish(
        ward_b,
        {"topic": "admissions",
         "condition": _path(ontology, "arrhythmia"),
         "record": "admission #4412"},
        {"record"},
    )

    print("researcher inbox:")
    for routable, result in inboxes["researcher"]:
        payload = (
            result.event.get("patientRecord") or result.event.get("record")
            if result
            else "<unreadable>"
        )
        print(f"  topic={routable['topic']:<12} -> {payload!r}")
    print("cardio-ward inbox:")
    for routable, result in inboxes["cardio-ward"]:
        payload = result.event.get("record") if result else "<unreadable>"
        print(f"  topic={routable['topic']:<12} -> {payload!r}")

    # In-network matching delivered only matching events (age 77 filtered
    # out for the researcher; oncology admission not sent to cardiology),
    # and every delivered event decrypted.
    assert len(inboxes["researcher"]) == 2
    assert all(result is not None for _, result in inboxes["researcher"])
    assert len(inboxes["cardio-ward"]) == 1
    assert inboxes["cardio-ward"][0][1].event["record"] == "admission #4412"

    # Per-publisher isolation: ward A's key for "admissions" cannot open
    # ward B's sealed admission.
    ward_a_as_subscriber = Subscriber("ward-A")
    ward_a_as_subscriber.add_grant(
        kdc.authorize(
            "ward-A",
            Filter.of(
                Constraint("topic", Op.EQ, "admissions"),
                Constraint("condition", Op.PREFIX, _path(ontology, "conditions")),
            ),
            publisher="ward-A",
        )
    )
    stolen = sealed_by_seq[2]  # ward B's lung admission
    assert ward_a_as_subscriber.receive(stolen, schema_lookup) is None
    print("\nper-publisher isolation: ward A cannot read ward B's events ✓")


if __name__ == "__main__":
    main()
