#!/usr/bin/env python3
"""Secure content-based routing: tokenization and multi-path smoothing.

Demonstrates Section 4 end to end:

1. brokers match events against subscriptions *without learning the
   topic* (Song-Wagner-Perrig tokenization);
2. a curious broker mounts the frequency-inference attack against the
   token stream and wins when events follow the tree;
3. probabilistic multi-path routing flattens the apparent frequencies and
   collapses the attack to near-random guessing.

Run:  python examples/secure_routing_demo.py
"""

import random

from repro.routing import (
    ProbabilisticRouter,
    TokenAuthority,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.routing.attacks import rank_matching_attack, random_guess_accuracy
from repro.routing.experiment import (
    RoutingExperimentConfig,
    run_dissemination,
)
from repro.siena import Event

NUM_TOPICS = 64


def demo_tokenized_matching() -> None:
    print("1. tokenized matching -----------------------------------------")
    authority = TokenAuthority(bytes(range(16)))
    event = Event({"topic": "cancerTrail"})
    tokenized = tokenize_event(authority, event, {}, "cancerTrail")
    print(f"   event on the wire: {dict(tokenized.attributes)}")
    matching = tokenized_subscription(authority, "cancerTrail")
    other = tokenized_subscription(authority, "fluTrial")
    print(f"   matches cancerTrail subscription: "
          f"{tokenized_match(matching, tokenized)}")
    print(f"   matches fluTrial subscription:    "
          f"{tokenized_match(other, tokenized)}")
    assert tokenized_match(matching, tokenized)
    assert not tokenized_match(other, tokenized)


def demo_frequency_attack() -> None:
    print("\n2. frequency-inference attack ---------------------------------")
    config = RoutingExperimentConfig(
        num_tokens=NUM_TOPICS, tokens_per_subscriber=16, events=6000
    )
    rng = random.Random(2)
    topics = [f"topic-{i}" for i in range(NUM_TOPICS)]

    for ind_max, label in ((1, "single-path (tree) routing"),
                           (5, "probabilistic multi-path, ind_max = 5")):
        result = run_dissemination(config, ind_max)
        # The attacker: one curious node with the full a-priori topic
        # frequency distribution, observing apparent token frequencies.
        observed = result.observer.system_apparent_frequencies()
        prior = dict(zip(topics, [result.router.frequencies[t]
                                  for t in sorted(result.router.frequencies)]))
        # Ground truth: token-i hides topic-i (an arbitrary labelling).
        truth = dict(zip(sorted(result.router.frequencies), topics))
        attack = rank_matching_attack(observed, prior, truth)
        print(f"   {label}:")
        print(f"     S_act={result.s_act:.2f}  S_app={result.s_app:.2f}  "
              f"S_max={result.s_max:.2f}")
        print(f"     attack accuracy: {attack.accuracy:.1%} "
              f"(random guessing: {random_guess_accuracy(NUM_TOPICS):.1%})")


def demo_construction_cost() -> None:
    print("\n3. what the smoothing costs -----------------------------------")
    from repro.topology.multipath import MultipathNetwork
    from repro.workloads.zipf import zipf_weights

    frequencies = dict(zip(
        (f"t{i}" for i in range(128)), zipf_weights(128)
    ))
    base = None
    for ind_max in (1, 2, 5, 10):
        network = MultipathNetwork(depth=2, arity=10, ind=max(2, ind_max))
        router = ProbabilisticRouter(network, frequencies, ind_max=ind_max)
        cost = router.construction_cost()
        base = base or cost
        usage = router.path_usage_histogram()
        print(f"   ind_max={ind_max:>2}: construction cost {cost / base:.2f}x"
              f"  (tokens on ind_max paths: {usage.get(ind_max, 0)})")


def main() -> None:
    demo_tokenized_matching()
    demo_frequency_attack()
    demo_construction_cost()


if __name__ == "__main__":
    main()
