#!/usr/bin/env python3
"""Quickstart: secure event dissemination in five minutes.

The paper's running example (Section 1): a pub-sub system disseminating
confidential medical records.  An event ::

    e = <<topic, cancerTrail>, <age, 25>, <patientRecord, record>>

must be readable by a subscriber holding ::

    f  = <<topic, EQ, cancerTrail>, <age, >, 20>>

but not by one holding ::

    f' = <<topic, EQ, cancerTrail>, <age, >, 30>>

Run:  python examples/quickstart.py
"""

from repro.core import (
    KDC,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    Subscriber,
)
from repro.siena import Event, Filter


def main() -> None:
    # 1. Stand up the key distribution center and register the topic.
    #    The schema declares which attributes are securable: "age" gets a
    #    numeric attribute key tree over (0, 127).
    kdc = KDC()
    kdc.register_topic(
        "cancerTrail",
        CompositeKeySpace({"age": NumericKeySpace("age", 128)}),
    )
    schema_lookup = lambda topic: kdc.config_for(topic).schema  # noqa: E731

    # 2. Subscribers obtain authorization grants for their filters.
    #    A grant is a handful of key-tree elements -- O(log R) keys,
    #    independent of how many other subscribers exist.
    doctor = Subscriber("doctor")
    doctor.add_grant(
        kdc.authorize("doctor", Filter.numeric_range("cancerTrail", "age", 21, 127))
    )
    specialist = Subscriber("specialist")
    specialist.add_grant(
        kdc.authorize(
            "specialist", Filter.numeric_range("cancerTrail", "age", 31, 127)
        )
    )
    print(f"doctor holds     {doctor.key_count()} authorization keys")
    print(f"specialist holds {specialist.key_count()} authorization keys")

    # 3. The publisher seals an event: the patientRecord attribute is
    #    encrypted under the event's key K(e) = K_ktid(age); the routable
    #    attributes stay visible to the broker network.
    hospital = Publisher("hospital", kdc)
    event = Event(
        {
            "topic": "cancerTrail",
            "age": 25,
            "patientRecord": "patient-0017: stage II, responding",
        },
        publisher="hospital",
    )
    sealed = hospital.publish(event, secret_attributes={"patientRecord"})
    print(f"\nsealed event routable attributes: {dict(sealed.routable.attributes)}")
    print(f"ciphertext: {sealed.ciphertext[:24].hex()}… ({len(sealed.ciphertext)} bytes)")

    # 4. Delivery: the matching subscriber derives K(e) from its grant
    #    (a few hash operations) and decrypts; the non-matching one is
    #    cryptographically locked out -- age 25 is outside (31, 127).
    result = doctor.receive(sealed, schema_lookup)
    print(f"\ndoctor reads:     {result.event['patientRecord']!r} "
          f"({result.hash_operations} hash ops, "
          f"{result.decrypt_operations} decryption)")
    denied = specialist.receive(sealed, schema_lookup)
    print(f"specialist reads: {denied}  (filter does not match: age 25 < 31)")

    assert result is not None and denied is None


if __name__ == "__main__":
    main()
