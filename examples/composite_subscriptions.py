#!/usr/bin/env python3
"""Composite subscriptions: multi-attribute AND, disjunctive OR grants.

The paper's technical report extends the key spaces to complex filters
combining constraints with Boolean AND / OR.  This walk-through shows
both on a job-market topic with two securable numeric attributes:

- **AND**: a filter constraining salary AND experience can only open
  events where *both* attributes fall in range (the event is locked under
  the combined component key);
- **OR**: a disjunctive grant (junior OR principal band) opens an event
  when *either* clause matches;
- publisher-declared **extra locks** allow single-attribute access for
  coarser subscriber classes.

Run:  python examples/composite_subscriptions.py
"""

from repro.core import (
    KDC,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    Subscriber,
)
from repro.siena import Constraint, Event, Filter, Op


def build_kdc() -> KDC:
    kdc = KDC()
    kdc.register_topic(
        "job-offers",
        CompositeKeySpace(
            {
                "salary": NumericKeySpace("salary", 512),     # in k$/year
                "experience": NumericKeySpace("experience", 64),
            }
        ),
    )
    return kdc


def offer(publisher, salary, experience, details):
    return publisher.publish(
        Event(
            {
                "topic": "job-offers",
                "salary": salary,
                "experience": experience,
                "details": details,
            },
            publisher="recruiter",
        ),
        secret_attributes={"details"},
    )


def main() -> None:
    kdc = build_kdc()
    lookup = lambda topic: kdc.config_for(topic).schema  # noqa: E731
    recruiter = Publisher("recruiter", kdc)

    # --- AND: both attributes must match -------------------------------
    mid_level = Subscriber("mid-level")
    mid_level.add_grant(
        kdc.authorize(
            "mid-level",
            Filter.of(
                Constraint("topic", Op.EQ, "job-offers"),
                Constraint("salary", Op.GE, 100),
                Constraint("salary", Op.LE, 200),
                Constraint("experience", Op.GE, 3),
                Constraint("experience", Op.LE, 10),
            ),
        )
    )
    fits = offer(recruiter, 150, 5, "senior backend role @ acme")
    wrong_pay = offer(recruiter, 300, 5, "principal role @ bigco")
    wrong_exp = offer(recruiter, 150, 20, "veteran-only role")

    print("AND subscriber (salary 100-200 AND experience 3-10):")
    for name, sealed in [("fits", fits), ("wrong pay", wrong_pay),
                         ("wrong exp", wrong_exp)]:
        result = mid_level.receive(sealed, lookup)
        payload = result.event["details"] if result else "<locked>"
        print(f"  {name:<10} -> {payload}")
    assert mid_level.receive(fits, lookup) is not None
    assert mid_level.receive(wrong_pay, lookup) is None
    assert mid_level.receive(wrong_exp, lookup) is None

    # --- OR: a disjunctive grant over two clauses -----------------------
    barbell = Subscriber("barbell")
    barbell.add_grant(
        kdc.authorize(
            "barbell",
            [
                Filter.of(  # junior band
                    Constraint("topic", Op.EQ, "job-offers"),
                    Constraint("salary", Op.LE, 90),
                ),
                Filter.of(  # principal band
                    Constraint("topic", Op.EQ, "job-offers"),
                    Constraint("salary", Op.GE, 250),
                ),
            ],
        )
    )
    junior = offer(recruiter, 60, 1, "junior role")
    principal = offer(recruiter, 300, 12, "principal role")
    middle = offer(recruiter, 150, 5, "mid role")

    print("\nOR subscriber (salary <= 90 OR salary >= 250):")
    for name, sealed in [("junior", junior), ("principal", principal),
                         ("middle", middle)]:
        result = barbell.receive(sealed, lookup)
        payload = result.event["details"] if result else "<locked>"
        print(f"  {name:<10} -> {payload}")
    assert barbell.receive(junior, lookup) is not None
    assert barbell.receive(principal, lookup) is not None
    assert barbell.receive(middle, lookup) is None

    # --- Extra locks: publisher-declared single-attribute access --------
    # The recruiter wants salary-band watchers (no experience constraint)
    # to read this one offer too, so it adds a salary-only lock.
    watcher = Subscriber("salary-watcher")
    watcher.add_grant(
        kdc.authorize(
            "salary-watcher",
            Filter.of(
                Constraint("topic", Op.EQ, "job-offers"),
                Constraint("salary", Op.GE, 100),
                Constraint("salary", Op.LE, 200),
            ),
        )
    )
    open_offer = recruiter.publish(
        Event(
            {"topic": "job-offers", "salary": 150, "experience": 5,
             "details": "broadly visible role"},
            publisher="recruiter",
        ),
        secret_attributes={"details"},
        extra_lock_subsets=[("salary",)],
    )
    result = watcher.receive(open_offer, lookup)
    print("\nsalary watcher on the extra-lock offer ->", result.event["details"])
    assert result is not None
    # ... but the default (both-attributes) offers stay out of reach:
    # the watcher's grant carries the experience ROOT key, so plain offers
    # are readable only when its OWN constraints match -- `fits` does.
    assert watcher.receive(fits, lookup) is not None
    assert watcher.receive(wrong_pay, lookup) is None


if __name__ == "__main__":
    main()
