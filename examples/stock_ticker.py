#!/usr/bin/env python3
"""Stock ticker: temporal locality and the key cache (Section 3.2.3).

The paper motivates key caching with exactly this workload: "Assuming
that the stock price changes only nominally over small periods of time,
two consecutive stock quote events are likely to carry prices that are
numerically very close to one another."  Close prices share long ktid
prefixes, so cached intermediate keys turn a full tree walk into one or
two hash steps.

Run:  python examples/stock_ticker.py
"""

import random

from repro.core import (
    KDC,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    Subscriber,
)
from repro.siena import Event, Filter

PRICE_RANGE = 1024      # price in cents, 0 .. 10.23 USD
EVENTS = 2000
WALK_STEP = 4


def run_ticker(cache_bytes: int, seed: int = 5) -> tuple[float, float, float]:
    """Publish a random-walk quote stream; return per-event hash costs."""
    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        "ACME", CompositeKeySpace({"price": NumericKeySpace("price", PRICE_RANGE)})
    )
    schema_lookup = lambda topic: kdc.config_for(topic).schema  # noqa: E731

    exchange = Publisher("exchange", kdc, cache_bytes=cache_bytes)
    trader = Subscriber("trader", cache_bytes=cache_bytes)
    # The trader watches for prices in the upper half of the band.
    trader.add_grant(
        kdc.authorize(
            "trader",
            Filter.numeric_range("ACME", "price", PRICE_RANGE // 2,
                                 PRICE_RANGE - 1),
        )
    )

    rng = random.Random(seed)
    price = 3 * PRICE_RANGE // 4
    trader_hashes = 0
    received = 0
    for tick in range(EVENTS):
        price = max(0, min(PRICE_RANGE - 1,
                           price + rng.randint(-WALK_STEP, WALK_STEP)))
        quote = Event(
            {"topic": "ACME", "price": price, "message": f"tick {tick}"},
            publisher="exchange",
        )
        sealed = exchange.publish(quote, secret_attributes={"message"})
        result = trader.receive(sealed, schema_lookup)
        if result is not None:
            received += 1
            trader_hashes += result.hash_operations

    return (
        exchange.stats.hash_operations / EVENTS,
        trader_hashes / max(1, received),
        exchange.cache.hit_rate,
    )


def main() -> None:
    print(f"{EVENTS} quotes, random walk of step <= {WALK_STEP} cents\n")
    print(f"{'cache':>8}  {'publisher H/event':>18}  "
          f"{'subscriber H/event':>19}  {'pub hit rate':>12}")
    rows = {}
    for cache_kb in (0, 1, 4, 64):
        publisher_work, subscriber_work, hit_rate = run_ticker(cache_kb * 1024)
        rows[cache_kb] = (publisher_work, subscriber_work)
        print(f"{cache_kb:>6}KB  {publisher_work:>18.2f}  "
              f"{subscriber_work:>19.2f}  {hit_rate:>12.2f}")

    uncached = rows[0]
    cached = rows[64]
    speedup_pub = uncached[0] / max(cached[0], 1e-9)
    speedup_sub = uncached[1] / max(cached[1], 1e-9)
    print(f"\n64KB cache cuts derivation work: publisher {speedup_pub:.1f}x,"
          f" subscriber {speedup_sub:.1f}x")
    assert cached[0] < uncached[0]
    assert cached[1] < uncached[1]


if __name__ == "__main__":
    main()
