#!/usr/bin/env python3
"""Subscription lifecycle: epochs, renewal, and adaptive epoch sizing.

Authorizations are leases (Section 2.1): every grant is valid for one
time epoch, after which the subscriber must renew -- the hook where a
payment-based service charges per epoch, and the mechanism behind lazy
revocation.  This walk-through drives a subscriber through several
epochs:

1. a ``RenewalManager`` keeps the key ring fresh with zero coverage gaps;
2. a lapsed subscriber is *cryptographically* cut off at the boundary;
3. an ``AdaptiveEpochPolicy`` shortens a hot topic's epochs (tighter
   revocation) and would lengthen a cold one's (less renewal traffic).

Run:  python examples/subscription_lifecycle.py
"""

from repro.core import (
    KDC,
    AdaptiveEpochPolicy,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    RenewalManager,
    Subscriber,
)
from repro.siena import Event, Filter

EPOCH = 100.0


def main() -> None:
    kdc = KDC()
    kdc.register_topic(
        "alerts",
        CompositeKeySpace({"severity": NumericKeySpace("severity", 16)}),
        epoch_length=EPOCH,
    )
    lookup = lambda topic: kdc.config_for(topic).schema  # noqa: E731
    publisher = Publisher("P", kdc)

    # --- 1. renewal keeps a subscriber covered across epochs ------------
    steady = Subscriber("steady")
    manager = RenewalManager(steady, kdc, renew_lead_time=5.0)
    manager.add_subscription(
        Filter.numeric_range("alerts", "severity", 8, 15), at_time=0.0
    )

    # --- 2. a lapsed subscriber loses access at the boundary ------------
    lapsed = Subscriber("lapsed")
    lapsed.add_grant(
        kdc.authorize(
            "lapsed",
            Filter.numeric_range("alerts", "severity", 8, 15),
            at_time=0.0,
        )
    )

    print(f"{'time':>6}  {'epoch':>5}  {'steady':>8}  {'lapsed':>8}")
    for step in range(1, 8):
        now = step * 40.0
        manager.tick(now)
        sealed = publisher.publish(
            Event({"topic": "alerts", "severity": 12,
                   "message": f"alert@{now:.0f}"}),
            at_time=now,
        )
        steady_result = steady.receive(sealed, lookup, at_time=now)
        lapsed_result = lapsed.receive(sealed, lookup, at_time=now)
        print(f"{now:>6.0f}  {kdc.epoch_of('alerts', now):>5}  "
              f"{'reads' if steady_result else 'LOCKED':>8}  "
              f"{'reads' if lapsed_result else 'LOCKED':>8}")
        assert steady_result is not None, "renewal must close every gap"

    print(f"\nrenewals performed: {manager.stats.renewals}, "
          f"keys fetched: {manager.stats.keys_fetched}, "
          f"expired grants dropped: {manager.stats.grants_dropped}")

    # --- 3. adaptive epochs track subscription heat ---------------------
    hot_policy = AdaptiveEpochPolicy(base_length=EPOCH, target_renewals=8)
    kdc.register_topic(
        "hot-topic", CompositeKeySpace({}), epoch_length=EPOCH,
        epoch_policy=hot_policy,
    )
    for index in range(60):
        kdc.authorize(f"fan-{index}", Filter.topic("hot-topic"),
                      at_time=index * 0.5)
    new_length = kdc.retune_epoch("hot-topic")
    print(f"\nhot topic: 60 subscriptions at 2/s -> epoch retuned "
          f"{EPOCH:.0f}s -> {new_length:.1f}s")
    assert new_length < EPOCH


if __name__ == "__main__":
    main()
