"""The counting-algorithm match index vs. naive matching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.siena.broker import Broker
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.index import MatchIndex
from repro.siena.operators import Op


def _index_of(*filters):
    index = MatchIndex()
    ids = [index.add(f) for f in filters]
    return index, ids


class TestBasicOperators:
    def test_equality(self):
        index, _ = _index_of(Filter.topic("news"))
        assert index.matches(Event({"topic": "news"}))
        assert not index.matches(Event({"topic": "sports"}))

    def test_range(self):
        index, _ = _index_of(Filter.numeric_range("t", "v", 10, 20))
        assert index.matches(Event({"topic": "t", "v": 15}))
        assert index.matches(Event({"topic": "t", "v": 10}))
        assert index.matches(Event({"topic": "t", "v": 20}))
        assert not index.matches(Event({"topic": "t", "v": 9}))
        assert not index.matches(Event({"topic": "t", "v": 21}))

    def test_strict_inequalities(self):
        index, _ = _index_of(
            Filter.of(Constraint("v", Op.GT, 10), Constraint("v", Op.LT, 20))
        )
        assert index.matches(Event({"v": 11}))
        assert not index.matches(Event({"v": 10}))
        assert not index.matches(Event({"v": 20}))

    def test_prefix_and_suffix(self):
        index, _ = _index_of(
            Filter.of(Constraint("s", Op.PREFIX, "can")),
            Filter.of(Constraint("s", Op.SUFFIX, "ail")),
        )
        assert len(index.matching(Event({"s": "cancerTrail"}))) == 2
        assert len(index.matching(Event({"s": "candle"}))) == 1
        assert index.matching(Event({"s": "nope"})) == []

    def test_substring_fallback(self):
        index, _ = _index_of(
            Filter.of(Constraint("s", Op.SUBSTRING, "err"))
        )
        assert index.matches(Event({"s": "terrible"}))
        assert not index.matches(Event({"s": "fine"}))

    def test_ne_fallback(self):
        index, _ = _index_of(Filter.of(Constraint("v", Op.NE, 5)))
        assert index.matches(Event({"v": 6}))
        assert not index.matches(Event({"v": 5}))

    def test_any_operator(self):
        index, _ = _index_of(Filter.of(Constraint("v", Op.ANY, None)))
        assert index.matches(Event({"v": 123}))
        assert not index.matches(Event({"other": 123}))

    def test_string_inequality_fallback(self):
        index, _ = _index_of(Filter.of(Constraint("s", Op.GE, "m")))
        assert index.matches(Event({"s": "zebra"}))
        assert not index.matches(Event({"s": "apple"}))

    def test_missing_attribute_never_matches(self):
        index, _ = _index_of(Filter.numeric_range("t", "v", 0, 10))
        assert not index.matches(Event({"topic": "t"}))

    def test_cross_type_values(self):
        index, _ = _index_of(Filter.of(Constraint("v", Op.GT, 10)))
        assert not index.matches(Event({"v": "not a number"}))


class TestMaintenance:
    def test_remove(self):
        index, ids = _index_of(
            Filter.topic("a"), Filter.topic("b")
        )
        index.remove(ids[0])
        assert not index.matches(Event({"topic": "a"}))
        assert index.matches(Event({"topic": "b"}))
        assert len(index) == 1

    def test_remove_unknown_is_noop(self):
        index, _ = _index_of(Filter.topic("a"))
        index.remove(999)
        assert len(index) == 1

    def test_remove_last_owner_of_shared_prefix(self):
        # "ab" and "abc" share a trie path; removing the owner at the
        # interior node must not disturb the deeper owner.
        short = Filter.of(Constraint("s", Op.PREFIX, "ab"))
        long = Filter.of(Constraint("s", Op.PREFIX, "abc"))
        index, ids = _index_of(short, long)
        index.remove(ids[0])
        assert index.matching(Event({"s": "abcd"})) == [long]
        assert not index.matches(Event({"s": "abx"}))
        index.remove(ids[1])
        assert not index.matches(Event({"s": "abcd"}))
        assert len(index) == 0

    def test_readd_after_remove(self):
        index, ids = _index_of(Filter.topic("a"))
        index.remove(ids[0])
        assert not index.matches(Event({"topic": "a"}))
        new_id = index.add(Filter.topic("a"))
        assert new_id != ids[0]
        assert index.matches(Event({"topic": "a"}))
        assert len(index) == 1

    def test_readd_after_remove_equality_free(self):
        subscription = Filter.of(Constraint("v", Op.GT, 10))
        index, ids = _index_of(subscription)
        index.remove(ids[0])
        assert not index.matches(Event({"v": 11}))
        index.add(Filter.of(Constraint("v", Op.GT, 10)))
        assert index.matches(Event({"v": 11}))

    def test_remove_twice_is_idempotent(self):
        index, ids = _index_of(
            Filter.of(Constraint("s", Op.PREFIX, "ab")),
            Filter.topic("t"),
        )
        index.remove(ids[0])
        index.remove(ids[0])
        assert len(index) == 1
        assert index.matches(Event({"topic": "t"}))

    def test_trie_remove_unknown_text_and_owner(self):
        from repro.siena.index import _Trie

        trie = _Trie()
        trie.insert("abc", 1)
        trie.remove("zzz", 1)   # unknown path: no-op
        trie.remove("abc", 2)   # known path, unknown owner: no-op
        assert list(trie.owners_of_prefixes("abcdef")) == [1]

    def test_remove_covers_all_operator_kinds(self):
        complex_filter = Filter.of(
            Constraint("topic", Op.EQ, "t"),
            Constraint("v", Op.GE, 0),
            Constraint("v", Op.LT, 10),
            Constraint("s", Op.PREFIX, "a"),
            Constraint("s", Op.SUBSTRING, "b"),
            Constraint("w", Op.ANY, None),
        )
        index = MatchIndex()
        filter_id = index.add(complex_filter)
        index.remove(filter_id)
        assert not index.matches(
            Event({"topic": "t", "v": 5, "s": "ab", "w": 1})
        )


class TestBrokerIntegration:
    def test_indexed_broker_routes_identically(self):
        plain = Broker("plain")
        fast = Broker("fast", indexed=True)
        filters = [
            Filter.numeric_range("stock", "price", 10, 50),
            Filter.topic("news"),
            Filter.of(
                Constraint("topic", Op.EQ, "stock"),
                Constraint("symbol", Op.PREFIX, "GO"),
            ),
        ]
        inboxes = {"plain": [], "fast": []}
        plain.attach_client("c", inboxes["plain"].append)
        fast.attach_client("c", inboxes["fast"].append)
        for subscription in filters:
            plain.subscribe("c", subscription)
            fast.subscribe("c", subscription)
        events = [
            Event({"topic": "stock", "price": 30, "symbol": "GOOG"}),
            Event({"topic": "stock", "price": 90, "symbol": "MSFT"}),
            Event({"topic": "news"}),
            Event({"topic": "other"}),
        ]
        for event in events:
            plain.publish(event)
            fast.publish(event)
        assert inboxes["plain"] == inboxes["fast"]

    def test_indexed_broker_unsubscribe(self):
        broker = Broker("b", indexed=True)
        received = []
        broker.attach_client("c", received.append)
        broker.subscribe("c", Filter.topic("t"))
        broker.unsubscribe("c", Filter.topic("t"))
        broker.publish(Event({"topic": "t"}))
        assert received == []

    def test_index_requires_plain_matching(self):
        with pytest.raises(ValueError, match="match index"):
            Broker("b", match=lambda f, e: True, indexed=True)


_OPS = [Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE]


@settings(max_examples=60, deadline=None)
@given(
    constraints=st.lists(
        st.tuples(
            st.sampled_from(["a", "b"]),
            st.sampled_from(_OPS),
            st.integers(0, 20),
        ),
        min_size=1,
        max_size=4,
    ),
    event_values=st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.integers(-5, 25),
        min_size=1,
        max_size=3,
    ),
)
def test_index_agrees_with_naive_matching(constraints, event_values):
    subscription = Filter(
        [Constraint(name, op, value) for name, op, value in constraints]
    )
    event = Event(event_values)
    index = MatchIndex()
    index.add(subscription)
    assert index.matches(event) == subscription.matches(event)


@settings(max_examples=40, deadline=None)
@given(
    texts=st.lists(st.text(alphabet="abc", max_size=4), min_size=1,
                   max_size=5),
    value=st.text(alphabet="abc", max_size=6),
)
def test_index_prefix_agreement(texts, value):
    filters = [
        Filter.of(Constraint("s", Op.PREFIX, text)) for text in texts
    ]
    index = MatchIndex()
    for subscription in filters:
        index.add(subscription)
    event = Event({"s": value})
    expected = [f for f in filters if f.matches(event)]
    assert sorted(map(repr, index.matching(event))) == sorted(
        map(repr, expected)
    )