"""Filters: matching semantics and the covering relation."""

import pytest
from hypothesis import given, strategies as st

from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op


def test_constraint_requires_name():
    with pytest.raises(ValueError):
        Constraint("", Op.EQ, 1)


def test_constraint_validates_operand():
    with pytest.raises(ValueError):
        Constraint("age", Op.PREFIX, 5)


def test_constraint_matching_needs_attribute_present():
    constraint = Constraint("age", Op.GT, 20)
    assert constraint.matches(Event({"age": 25}))
    assert not constraint.matches(Event({"other": 25}))


def test_filter_needs_constraints():
    with pytest.raises(ValueError):
        Filter([])


def test_paper_example_matching():
    """f = <<topic, EQ, cancerTrail>, <age, >, 20>> from Section 1."""
    subscription = Filter.of(
        Constraint("topic", Op.EQ, "cancerTrail"),
        Constraint("age", Op.GT, 20),
    )
    assert subscription.matches(
        Event({"topic": "cancerTrail", "age": 25, "patientRecord": "r"})
    )
    assert not subscription.matches(Event({"topic": "cancerTrail", "age": 18}))
    assert not subscription.matches(Event({"topic": "other", "age": 25}))


def test_conjunction_over_same_attribute():
    in_range = Filter.numeric_range("t", "age", 20, 30)
    assert in_range.matches(Event({"topic": "t", "age": 25}))
    assert not in_range.matches(Event({"topic": "t", "age": 31}))
    assert not in_range.matches(Event({"topic": "t", "age": 19}))


def test_numeric_range_rejects_empty():
    with pytest.raises(ValueError):
        Filter.numeric_range("t", "age", 30, 20)


def test_topic_shorthand():
    assert Filter.topic("news").matches(Event({"topic": "news"}))


def test_paper_covering_example():
    """<age, >, 20> covers <age, >, 30> (Section 2.1)."""
    wide = Filter.of(Constraint("age", Op.GT, 20))
    narrow = Filter.of(Constraint("age", Op.GT, 30))
    assert wide.covers(narrow)
    assert not narrow.covers(wide)


def test_range_covering():
    outer = Filter.numeric_range("t", "age", 10, 90)
    inner = Filter.numeric_range("t", "age", 20, 30)
    assert outer.covers(inner)
    assert not inner.covers(outer)


def test_covering_requires_topic_agreement():
    first = Filter.numeric_range("t1", "age", 0, 100)
    second = Filter.numeric_range("t2", "age", 20, 30)
    assert not first.covers(second)


def test_every_filter_covers_itself():
    subscription = Filter.numeric_range("t", "age", 20, 30)
    assert subscription.covers(subscription)


def test_fewer_constraints_is_more_general():
    general = Filter.topic("t")
    specific = Filter.numeric_range("t", "age", 20, 30)
    assert general.covers(specific)
    assert not specific.covers(general)


def test_filter_equality_ignores_order():
    first = Filter.of(
        Constraint("a", Op.GT, 1), Constraint("b", Op.LT, 2)
    )
    second = Filter.of(
        Constraint("b", Op.LT, 2), Constraint("a", Op.GT, 1)
    )
    assert first == second
    assert hash(first) == hash(second)


def test_attribute_names():
    subscription = Filter.numeric_range("t", "age", 0, 1)
    assert subscription.attribute_names() == {"topic", "age"}


@given(
    outer_low=st.integers(0, 50),
    outer_span=st.integers(0, 50),
    inner_offset=st.integers(0, 20),
    inner_span=st.integers(0, 20),
    sample=st.integers(-10, 130),
)
def test_covering_soundness_property(
    outer_low, outer_span, inner_offset, inner_span, sample
):
    """If outer covers inner, every event matching inner matches outer."""
    inner_low = outer_low + inner_offset
    outer = Filter.numeric_range("t", "v", outer_low, outer_low + outer_span)
    inner = Filter.numeric_range(
        "t", "v", inner_low, inner_low + inner_span
    )
    event = Event({"topic": "t", "v": sample})
    if outer.covers(inner) and inner.matches(event):
        assert outer.matches(event)


@given(
    low=st.integers(0, 100),
    span=st.integers(0, 40),
    sample=st.integers(0, 150),
)
def test_range_matching_property(low, span, sample):
    subscription = Filter.numeric_range("t", "v", low, low + span)
    event = Event({"topic": "t", "v": sample})
    assert subscription.matches(event) == (low <= sample <= low + span)
