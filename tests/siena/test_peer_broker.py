"""PeerBroker unit behaviour (below the overlay level)."""

from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.p2p import PeerBroker


def _link(first: PeerBroker, second: PeerBroker):
    def sender(source, target):
        def send(kind, payload):
            if kind == "subscribe":
                target.subscribe(source.broker_id, payload)
            else:
                target.publish(payload, arrived_from=source.broker_id)

        return send

    first.attach_neighbor(second.broker_id, sender(first, second))
    second.attach_neighbor(first.broker_id, sender(second, first))


def test_subscription_floods_to_other_neighbors_only():
    a, b, c = PeerBroker("a"), PeerBroker("b"), PeerBroker("c")
    _link(a, b)
    _link(b, c)
    c.attach_client("s", lambda e: None)
    c.subscribe("s", Filter.topic("t"))
    # b learned from c and told a; a records interest via b.
    assert a.interest_of("b") == [Filter.topic("t")]
    # c must not be told its own subscription back.
    assert c.interest_of("b") == []


def test_duplicate_subscription_recorded_once():
    broker = PeerBroker("b")
    broker.attach_client("s", lambda e: None)
    broker.subscribe("s", Filter.topic("t"))
    broker.subscribe("s", Filter.topic("t"))
    assert broker.interest_of("s") == [Filter.topic("t")]


def test_covering_replaces_narrower_announcement():
    a, b = PeerBroker("a"), PeerBroker("b")
    _link(a, b)
    b.attach_client("s", lambda e: None)
    narrow = Filter.numeric_range("t", "v", 10, 20)
    wide = Filter.numeric_range("t", "v", 0, 100)
    b.subscribe("s", narrow)
    b.subscribe("s", wide)
    # a's table through b holds both wants, but b announced minimally:
    state = b._state[a.broker_id]
    assert state.announced == [wide]


def test_publish_counts_messages():
    a, b = PeerBroker("a"), PeerBroker("b")
    _link(a, b)
    received = []
    b.attach_client("s", received.append)
    b.subscribe("s", Filter.topic("t"))
    before = a.messages_sent
    a.publish(Event({"topic": "t"}))
    assert a.messages_sent == before + 1
    assert len(received) == 1


def test_no_interest_no_forwarding():
    a, b = PeerBroker("a"), PeerBroker("b")
    _link(a, b)
    before = a.messages_sent
    a.publish(Event({"topic": "nobody"}))
    assert a.messages_sent == before


def test_custom_match_predicate_respected():
    broker = PeerBroker("b", match=lambda f, e: "magic" in e)
    received = []
    broker.attach_client("s", received.append)
    broker.subscribe("s", Filter.topic("ignored"))
    broker.publish(Event({"magic": 1}))
    broker.publish(Event({"mundane": 1}))
    assert len(received) == 1
