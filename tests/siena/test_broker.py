"""Broker subscription handling, covering suppression, event routing."""

from repro.siena.broker import Broker
from repro.siena.events import Event
from repro.siena.filters import Filter


def _collecting_sender(log):
    def send(kind, payload):
        log.append((kind, payload))

    return send


def test_subscription_registers_filter():
    broker = Broker("b")
    broker.subscribe("client", Filter.topic("news"))
    assert broker.subscription_count() == 1
    assert broker.filters_for("client") == [Filter.topic("news")]


def test_duplicate_filter_shares_entry():
    broker = Broker("b")
    broker.subscribe("c1", Filter.topic("news"))
    broker.subscribe("c2", Filter.topic("news"))
    assert broker.subscription_count() == 1


def test_subscription_forwarded_upstream():
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", _collecting_sender(upstream))
    broker.subscribe("c", Filter.topic("news"))
    assert upstream == [("subscribe", Filter.topic("news"))]


def test_covered_subscription_not_forwarded():
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", _collecting_sender(upstream))
    broker.subscribe("c1", Filter.numeric_range("t", "age", 0, 100))
    broker.subscribe("c2", Filter.numeric_range("t", "age", 20, 30))
    forwarded = [payload for kind, payload in upstream if kind == "subscribe"]
    assert forwarded == [Filter.numeric_range("t", "age", 0, 100)]


def test_wider_subscription_replaces_forwarded():
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", _collecting_sender(upstream))
    broker.subscribe("c1", Filter.numeric_range("t", "age", 20, 30))
    broker.subscribe("c2", Filter.numeric_range("t", "age", 0, 100))
    assert len(broker.forwarded_upstream) == 1
    assert broker.forwarded_upstream[0] == Filter.numeric_range(
        "t", "age", 0, 100
    )


def test_event_delivered_to_matching_client():
    received = []
    broker = Broker("b")
    broker.attach_client("c", received.append)
    broker.subscribe("c", Filter.topic("news"))
    broker.publish(Event({"topic": "news"}))
    assert len(received) == 1


def test_event_not_delivered_to_non_matching_client():
    received = []
    broker = Broker("b")
    broker.attach_client("c", received.append)
    broker.subscribe("c", Filter.topic("sports"))
    broker.publish(Event({"topic": "news"}))
    assert received == []


def test_event_forwarded_to_matching_child_only():
    child_messages = {"x": [], "y": []}
    broker = Broker("b")
    broker.attach_child("x", _collecting_sender(child_messages["x"]))
    broker.attach_child("y", _collecting_sender(child_messages["y"]))
    broker.subscribe("x", Filter.topic("news"))
    broker.subscribe("y", Filter.topic("sports"))
    broker.publish(Event({"topic": "news"}))
    assert len(child_messages["x"]) == 1
    assert child_messages["y"] == []


def test_event_always_forwarded_to_parent():
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", _collecting_sender(upstream))
    broker.publish(Event({"topic": "whatever"}))
    assert [kind for kind, _ in upstream] == ["publish"]


def test_event_from_parent_not_echoed_back():
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", _collecting_sender(upstream))
    broker.publish(Event({"topic": "t"}), arrived_from="p")
    assert upstream == []


def test_event_not_sent_back_to_arrival_interface():
    child_log = []
    broker = Broker("b")
    broker.attach_child("x", _collecting_sender(child_log))
    broker.subscribe("x", Filter.topic("news"))
    broker.publish(Event({"topic": "news"}), arrived_from="x")
    assert child_log == []


def test_duplicate_matching_filters_deliver_once():
    received = []
    broker = Broker("b")
    broker.attach_client("c", received.append)
    broker.subscribe("c", Filter.topic("news"))
    broker.subscribe("c", Filter.of(*Filter.topic("news").constraints))
    broker.publish(Event({"topic": "news"}))
    assert len(received) == 1


def test_unsubscribe_removes_interface():
    broker = Broker("b")
    broker.subscribe("c", Filter.topic("news"))
    broker.unsubscribe("c", Filter.topic("news"))
    assert broker.subscription_count() == 0


def test_unsubscribe_keeps_other_interfaces():
    broker = Broker("b")
    broker.subscribe("c1", Filter.topic("news"))
    broker.subscribe("c2", Filter.topic("news"))
    broker.unsubscribe("c1", Filter.topic("news"))
    assert broker.subscription_count() == 1
    assert broker.filters_for("c2") == [Filter.topic("news")]


def test_stats_track_activity():
    broker = Broker("b")
    received = []
    broker.attach_client("c", received.append)
    broker.subscribe("c", Filter.topic("news"))
    broker.publish(Event({"topic": "news"}))
    assert broker.stats.subscriptions_received == 1
    assert broker.stats.events_received == 1
    assert broker.stats.deliveries == 1
    assert broker.stats.match_tests >= 1
    broker.stats.reset()
    assert broker.stats.events_received == 0


def test_custom_match_predicate():
    broker = Broker("b", match=lambda _f, _e: True)
    received = []
    broker.attach_client("c", received.append)
    broker.subscribe("c", Filter.topic("never-published"))
    broker.publish(Event({"topic": "anything"}))
    assert len(received) == 1


def test_admission_gate_sheds_local_publications():
    broker = Broker("b")
    received = []
    broker.attach_client("c", received.append)
    broker.subscribe("c", Filter.topic("news"))
    broker.bind_flow(lambda event: event.get("vip") is not None)
    assert broker.publish(Event({"topic": "news"})) == 0
    assert broker.publish(Event({"topic": "news", "vip": 1})) == 1
    assert len(received) == 1
    assert broker.stats.events_shed == 1
    assert broker.stats.events_received == 1


def test_admission_gate_ignores_broker_to_broker_traffic():
    broker = Broker("b")
    received = []
    broker.attach_client("c", received.append)
    broker.subscribe("c", Filter.topic("news"))
    broker.bind_flow(lambda _event: False)
    # Forwarded traffic already paid admission at its origin broker.
    assert broker.publish(Event({"topic": "news"}), arrived_from="peer") == 1
    assert broker.stats.events_shed == 0
    assert len(received) == 1


def test_admission_gate_filters_local_batches():
    broker = Broker("b")
    received = []
    broker.attach_client("c", received.append)
    broker.subscribe("c", Filter.topic("news"))
    broker.bind_flow(lambda event: event.get("k", 0) % 2 == 0)
    events = [Event({"topic": "news", "k": k}) for k in range(4)]
    broker.publish(events)
    assert broker.stats.events_shed == 2
    assert broker.stats.events_received == 2
    assert len(received) == 2
    # A fully refused batch is not counted as received at all.
    before = broker.stats.batches_received
    assert broker.publish([Event({"topic": "news", "k": 1})]) == 0
    assert broker.stats.batches_received == before
