"""Hierarchical broker overlay: topology, dissemination, accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree


def _tree_with_subscribers(num_brokers, topics_by_subscriber):
    tree = BrokerTree(num_brokers=num_brokers)
    received = {name: [] for name in topics_by_subscriber}
    leaves = tree.leaf_ids()
    for index, (name, topics) in enumerate(topics_by_subscriber.items()):
        tree.attach_subscriber(
            name,
            leaves[index % len(leaves)],
            lambda event, name=name: received[name].append(event),
        )
        for topic in topics:
            tree.subscribe(name, Filter.topic(topic))
    return tree, received


def test_rejects_zero_brokers():
    with pytest.raises(ValueError):
        BrokerTree(num_brokers=0)


def test_rejects_bad_arity():
    with pytest.raises(ValueError):
        BrokerTree(num_brokers=3, arity=0)


def test_single_broker_tree_depth():
    assert BrokerTree(num_brokers=1).depth() == 0
    assert BrokerTree(num_brokers=1).leaf_ids() == [0]


def test_complete_binary_tree_shape():
    tree = BrokerTree(num_brokers=7)
    assert tree.depth() == 2
    assert tree.leaf_ids() == [3, 4, 5, 6]


def test_event_reaches_only_matching_subscribers():
    tree, received = _tree_with_subscribers(
        7, {"alice": ["news"], "bob": ["sports"]}
    )
    tree.publish(Event({"topic": "news"}))
    assert len(received["alice"]) == 1
    assert received["bob"] == []


def test_event_reaches_all_matching_subscribers():
    tree, received = _tree_with_subscribers(
        7, {f"s{i}": ["news"] for i in range(8)}
    )
    tree.publish(Event({"topic": "news"}))
    assert all(len(events) == 1 for events in received.values())
    assert tree.total_deliveries() == 8


def test_duplicate_subscriber_attachment_rejected():
    tree = BrokerTree(num_brokers=3)
    tree.attach_subscriber("s", 1, lambda e: None)
    with pytest.raises(ValueError):
        tree.attach_subscriber("s", 2, lambda e: None)


def test_subscribe_requires_attachment():
    tree = BrokerTree(num_brokers=3)
    with pytest.raises(KeyError):
        tree.subscribe("ghost", Filter.topic("t"))


def test_unsubscribe_stops_delivery():
    tree, received = _tree_with_subscribers(3, {"s": ["news"]})
    tree.unsubscribe("s", Filter.topic("news"))
    tree.publish(Event({"topic": "news"}))
    assert received["s"] == []


def test_range_subscriptions_route_correctly():
    tree = BrokerTree(num_brokers=7)
    received = []
    tree.attach_subscriber("s", 3, received.append)
    tree.subscribe("s", Filter.numeric_range("stock", "price", 10, 20))
    tree.publish(Event({"topic": "stock", "price": 15}))
    tree.publish(Event({"topic": "stock", "price": 25}))
    assert [event["price"] for event in received] == [15]


def test_message_count_grows_with_tree_depth():
    shallow, _ = _tree_with_subscribers(3, {"s": ["news"]})
    deep, _ = _tree_with_subscribers(31, {"s": ["news"]})
    shallow.reset_stats()
    deep.reset_stats()
    shallow.publish(Event({"topic": "news"}))
    deep.publish(Event({"topic": "news"}))
    assert deep.message_count > shallow.message_count


def test_non_matching_event_not_flooded():
    tree, _ = _tree_with_subscribers(7, {"s": ["news"]})
    tree.reset_stats()
    tree.publish(Event({"topic": "nobody-wants-this"}))
    assert tree.message_count == 0
    assert tree.total_deliveries() == 0


def test_reset_stats():
    tree, _ = _tree_with_subscribers(3, {"s": ["news"]})
    tree.publish(Event({"topic": "news"}))
    tree.reset_stats()
    assert tree.message_count == 0
    assert tree.total_deliveries() == 0


@settings(max_examples=25, deadline=None)
@given(
    num_brokers=st.integers(1, 31),
    arity=st.integers(2, 4),
    subscriber_count=st.integers(1, 8),
)
def test_every_matching_subscriber_gets_every_event(
    num_brokers, arity, subscriber_count
):
    """Delivery completeness holds for arbitrary tree shapes."""
    tree = BrokerTree(num_brokers=num_brokers, arity=arity)
    leaves = tree.leaf_ids()
    counters = []
    for index in range(subscriber_count):
        events = []
        counters.append(events)
        tree.attach_subscriber(
            f"s{index}", leaves[index % len(leaves)], events.append
        )
        tree.subscribe(f"s{index}", Filter.topic("t"))
    tree.publish(Event({"topic": "t", "n": 1}))
    assert all(len(events) == 1 for events in counters)
