"""Broker crash/restart lifecycle and subscription replay."""

from repro.siena.broker import Broker
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree


def test_crashed_broker_drops_everything():
    broker = Broker("b")
    broker.crash()
    assert not broker.alive
    broker.subscribe("client", Filter.topic("t"))
    assert broker.subscription_count() == 0
    assert broker.publish(Event({"topic": "t"})) == 0
    assert broker.stats.dropped_while_down == 2
    assert broker.stats.events_received == 0


def test_restart_clears_volatile_state_and_bumps_incarnation():
    broker = Broker("b")
    broker.subscribe("client", Filter.topic("t"))
    assert broker.subscription_count() == 1
    broker.crash()
    broker.restart()
    assert broker.alive
    assert broker.incarnation == 1
    assert broker.subscription_count() == 0
    assert broker.forwarded_upstream == []


def test_indexed_broker_restart_resets_index():
    broker = Broker("b", indexed=True)
    broker.subscribe("client", Filter.topic("t"))
    broker.crash()
    broker.restart()
    broker.subscribe("client", Filter.topic("u"))
    # The pre-crash filter for "t" is gone from the rebuilt index ...
    assert broker.publish(Event({"topic": "t"})) == 0
    # ... and only the post-restart subscription matches.
    assert broker.publish(Event({"topic": "u"})) == 1
    assert broker.subscription_count() == 1


def test_replay_upstream_reannounces_forwarded_filters():
    parent = Broker("p")
    child = Broker("c")
    sent = []
    child.attach_parent("p", lambda kind, payload: sent.append(
        (kind, payload)
    ))
    child.subscribe("client", Filter.topic("t"))
    assert sent == [("subscribe", Filter.topic("t"))]
    replayed = child.replay_upstream()
    assert replayed == 1
    assert sent == [("subscribe", Filter.topic("t"))] * 2
    assert parent.alive  # unrelated broker untouched


def test_broker_tree_restart_recovers_routing():
    tree = BrokerTree(num_brokers=7)
    received = []
    leaf = tree.leaf_ids()[0]
    tree.attach_subscriber("s", leaf, received.append)
    tree.subscribe("s", Filter.topic("news"))

    assert tree.publish(Event({"topic": "news"})) >= 1
    assert len(received) == 1

    # Crash the interior broker on the path; deliveries stop.
    tree.crash_broker(1)
    tree.publish(Event({"topic": "news"}))
    assert len(received) == 1
    assert tree.brokers[1].stats.dropped_while_down > 0

    # Restart without the recovery protocol: the subtree stays dark.
    tree.restart_broker(1, replay=False)
    tree.publish(Event({"topic": "news"}))
    assert len(received) == 1

    # The recovery protocol replays the children's filter tables.
    tree.restart_broker(1)
    tree.publish(Event({"topic": "news"}))
    assert len(received) == 2


def test_broker_tree_restart_replays_client_subscriptions():
    tree = BrokerTree(num_brokers=3)
    received = []
    leaf = tree.leaf_ids()[0]
    tree.attach_subscriber("s", leaf, received.append)
    tree.subscribe("s", Filter.topic("news"))
    tree.crash_broker(leaf)
    tree.restart_broker(leaf)
    tree.publish(Event({"topic": "news"}))
    assert len(received) == 1


def test_broker_tree_unsubscribe_not_replayed():
    tree = BrokerTree(num_brokers=3)
    received = []
    leaf = tree.leaf_ids()[0]
    tree.attach_subscriber("s", leaf, received.append)
    tree.subscribe("s", Filter.topic("news"))
    tree.unsubscribe("s", Filter.topic("news"))
    tree.crash_broker(leaf)
    tree.restart_broker(leaf)
    tree.publish(Event({"topic": "news"}))
    assert received == []
