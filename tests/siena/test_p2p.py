"""Peer-to-peer acyclic overlays: reverse-path forwarding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.p2p import AcyclicOverlay


def _inbox(overlay, subscriber_id, broker_id, *filters):
    events = []
    overlay.attach_subscriber(subscriber_id, broker_id, events.append)
    for subscription in filters:
        overlay.subscribe(subscriber_id, subscription)
    return events


def test_line_end_to_end():
    overlay = AcyclicOverlay.line(5)
    inbox = _inbox(overlay, "s", 4, Filter.topic("news"))
    overlay.publish(0, Event({"topic": "news"}))
    assert len(inbox) == 1


def test_publisher_can_sit_anywhere():
    overlay = AcyclicOverlay.line(5)
    inbox = _inbox(overlay, "s", 0, Filter.topic("news"))
    overlay.publish(4, Event({"topic": "news"}))
    overlay.publish(2, Event({"topic": "news"}))
    assert len(inbox) == 2


def test_non_matching_events_not_flooded():
    overlay = AcyclicOverlay.line(4)
    _inbox(overlay, "s", 3, Filter.topic("sports"))
    before = overlay.total_messages()
    overlay.publish(0, Event({"topic": "news"}))
    assert overlay.total_messages() == before


def test_events_pruned_at_divergence_point():
    """A star hub forwards only down the interested spokes."""
    overlay = AcyclicOverlay.star(4)
    interested = _inbox(overlay, "a", 1, Filter.topic("news"))
    bystander = _inbox(overlay, "b", 2, Filter.topic("sports"))
    overlay.publish(3, Event({"topic": "news"}))
    assert len(interested) == 1
    assert bystander == []


def test_covering_suppresses_repeat_announcements():
    overlay = AcyclicOverlay.line(3)
    _inbox(overlay, "wide", 2, Filter.numeric_range("t", "v", 0, 100))
    after_wide = overlay.total_messages()
    _inbox(overlay, "narrow", 2, Filter.numeric_range("t", "v", 20, 30))
    # The narrow filter is covered; no new announcements travel the line.
    assert overlay.total_messages() == after_wide


def test_local_delivery_same_broker():
    overlay = AcyclicOverlay.line(2)
    inbox = _inbox(overlay, "s", 0, Filter.topic("t"))
    overlay.publish(0, Event({"topic": "t"}))
    assert len(inbox) == 1
    assert overlay.total_messages() <= 1  # possibly the announcement only


def test_multiple_subscribers_each_served_once():
    overlay = AcyclicOverlay.random_tree(12, seed=3)
    inboxes = [
        _inbox(overlay, f"s{i}", i, Filter.topic("t")) for i in range(6)
    ]
    overlay.publish(11, Event({"topic": "t"}))
    assert all(len(inbox) == 1 for inbox in inboxes)


def test_cycle_rejected():
    with pytest.raises(ValueError, match="cycle"):
        AcyclicOverlay([(0, 1), (1, 2), (2, 0)])


def test_empty_overlay_rejected():
    with pytest.raises(ValueError):
        AcyclicOverlay([])


def test_constructors_validate():
    with pytest.raises(ValueError):
        AcyclicOverlay.line(1)
    with pytest.raises(ValueError):
        AcyclicOverlay.star(0)
    with pytest.raises(ValueError):
        AcyclicOverlay.random_tree(1)


def test_interest_recorded_per_interface():
    overlay = AcyclicOverlay.line(3)
    _inbox(overlay, "s", 2, Filter.topic("t"))
    # Broker 0 learned about the interest via broker 1.
    assert overlay.brokers[0].interest_of(1) == [Filter.topic("t")]


def test_sealed_events_route_unchanged():
    """PSGuard on the p2p overlay: brokers route sealed routable parts."""
    from repro.core import (
        KDC, CompositeKeySpace, NumericKeySpace, Publisher, Subscriber,
    )

    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    publisher = Publisher("P", kdc)
    subscriber = Subscriber("S")
    subscription = Filter.numeric_range("t", "v", 10, 30)
    subscriber.add_grant(kdc.authorize("S", subscription))

    overlay = AcyclicOverlay.random_tree(8, seed=5)
    received = []
    overlay.attach_subscriber(
        "S", 7, lambda routable: received.append(routable)
    )
    overlay.subscribe("S", subscription)

    sealed = publisher.publish(Event({"topic": "t", "v": 20, "message": "m"}))
    overlay.publish(0, sealed.routable)
    assert len(received) == 1
    result = subscriber.receive(sealed, lambda n: kdc.config_for(n).schema)
    assert result.event["message"] == "m"


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(2, 20),
    seed=st.integers(0, 100),
    publisher_broker=st.integers(0, 19),
    subscriber_broker=st.integers(0, 19),
)
def test_delivery_on_random_trees_property(
    size, seed, publisher_broker, subscriber_broker
):
    """Exactly-once delivery holds on arbitrary random trees."""
    overlay = AcyclicOverlay.random_tree(size, seed=seed)
    publisher_broker %= size
    subscriber_broker %= size
    inbox = _inbox(overlay, "s", subscriber_broker, Filter.topic("t"))
    overlay.publish(publisher_broker, Event({"topic": "t"}))
    overlay.publish(publisher_broker, Event({"topic": "other"}))
    assert len(inbox) == 1
