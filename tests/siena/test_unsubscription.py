"""Unsubscription propagation up the hierarchy."""

from repro.siena.broker import Broker
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree


def _collecting_sender(log):
    def send(kind, payload):
        log.append((kind, payload))

    return send


def test_last_interface_withdraws_upstream():
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", _collecting_sender(upstream))
    broker.subscribe("c", Filter.topic("news"))
    broker.unsubscribe("c", Filter.topic("news"))
    assert upstream == [
        ("subscribe", Filter.topic("news")),
        ("unsubscribe", Filter.topic("news")),
    ]
    assert broker.forwarded_upstream == []


def test_other_interfaces_keep_forwarding_alive():
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", _collecting_sender(upstream))
    broker.subscribe("c1", Filter.topic("news"))
    broker.subscribe("c2", Filter.topic("news"))
    broker.unsubscribe("c1", Filter.topic("news"))
    kinds = [kind for kind, _ in upstream]
    assert "unsubscribe" not in kinds
    assert broker.forwarded_upstream == [Filter.topic("news")]


def test_removing_cover_promotes_covered_filter():
    """When a wide filter leaves, the narrow one it hid must surface."""
    wide = Filter.numeric_range("t", "v", 0, 100)
    narrow = Filter.numeric_range("t", "v", 20, 30)
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", _collecting_sender(upstream))
    broker.subscribe("c1", wide)
    broker.subscribe("c2", narrow)   # suppressed by covering
    broker.unsubscribe("c1", wide)
    assert broker.forwarded_upstream == [narrow]
    assert ("unsubscribe", wide) in upstream
    assert upstream.count(("subscribe", narrow)) == 1


def test_no_parent_no_propagation():
    broker = Broker("root")
    broker.subscribe("c", Filter.topic("t"))
    broker.unsubscribe("c", Filter.topic("t"))  # must not raise
    assert broker.subscription_count() == 0


def test_tree_stops_routing_after_unsubscribe():
    tree = BrokerTree(num_brokers=7)
    inbox = []
    leaf = tree.leaf_ids()[0]
    tree.attach_subscriber("s", leaf, inbox.append)
    tree.subscribe("s", Filter.topic("news"))
    tree.publish(Event({"topic": "news"}))
    tree.unsubscribe("s", Filter.topic("news"))
    tree.publish(Event({"topic": "news"}))
    assert len(inbox) == 1
    # The root's table is clean again: nothing is forwarded downward.
    tree.reset_stats()
    tree.publish(Event({"topic": "news"}))
    assert tree.message_count == 0


def test_unsubscribe_then_resubscribe():
    tree = BrokerTree(num_brokers=3)
    inbox = []
    tree.attach_subscriber("s", tree.leaf_ids()[0], inbox.append)
    tree.subscribe("s", Filter.topic("t"))
    tree.unsubscribe("s", Filter.topic("t"))
    tree.subscribe("s", Filter.topic("t"))
    tree.publish(Event({"topic": "t"}))
    assert len(inbox) == 1


def test_partial_unsubscribe_keeps_other_filters():
    tree = BrokerTree(num_brokers=3)
    inbox = []
    tree.attach_subscriber("s", tree.leaf_ids()[0], inbox.append)
    tree.subscribe("s", Filter.topic("a"))
    tree.subscribe("s", Filter.topic("b"))
    tree.unsubscribe("s", Filter.topic("a"))
    tree.publish(Event({"topic": "a"}))
    tree.publish(Event({"topic": "b"}))
    assert [event["topic"] for event in inbox] == ["b"]
