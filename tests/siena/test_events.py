"""Event construction, access, and wire encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.siena.events import Event


def test_attribute_access():
    event = Event({"topic": "cancerTrail", "age": 25})
    assert event["age"] == 25
    assert event.get("missing") is None
    assert "topic" in event
    assert len(event) == 2


def test_iteration_is_sorted():
    event = Event({"z": 1, "a": 2})
    assert [name for name, _ in event] == ["a", "z"]


def test_equality_and_hash():
    first = Event({"a": 1, "b": "x"}, publisher="P")
    second = Event({"b": "x", "a": 1}, publisher="P")
    assert first == second
    assert hash(first) == hash(second)


def test_publisher_distinguishes_events():
    assert Event({"a": 1}, publisher="P") != Event({"a": 1}, publisher="Q")


def test_with_attributes_returns_new_event():
    event = Event({"a": 1})
    extended = event.with_attributes(b=2)
    assert "b" not in event
    assert extended["b"] == 2
    assert extended["a"] == 1


def test_without_attributes():
    event = Event({"a": 1, "secret": "s"}, publisher="P")
    stripped = event.without_attributes("secret")
    assert "secret" not in stripped
    assert stripped.publisher == "P"
    assert "secret" in event


def test_wire_roundtrip_basic():
    event = Event(
        {"topic": "t", "age": 25, "score": 1.5, "blob": b"\x00\x01"},
        publisher="P",
    )
    assert Event.from_bytes(event.to_bytes()) == event


def test_wire_roundtrip_no_publisher():
    event = Event({"k": "v"})
    decoded = Event.from_bytes(event.to_bytes())
    assert decoded.publisher is None
    assert decoded == event


def test_wire_size_positive():
    assert Event({"a": 1}).wire_size() > 0


def test_negative_integers_roundtrip():
    event = Event({"delta": -12345})
    assert Event.from_bytes(event.to_bytes())["delta"] == -12345


def test_unicode_values_roundtrip():
    event = Event({"name": "Grüße-日本"})
    assert Event.from_bytes(event.to_bytes())["name"] == "Grüße-日本"


def test_boolean_attribute_rejected_on_encode():
    event = Event({"flag": True})
    with pytest.raises(TypeError):
        event.to_bytes()


def test_truncated_wire_data_rejected():
    data = Event({"a": "value"}).to_bytes()
    with pytest.raises((ValueError, IndexError, Exception)):
        Event.from_bytes(data[: len(data) - 3])


_VALUES = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.binary(max_size=20),
)


@given(
    attributes=st.dictionaries(
        st.text(min_size=1, max_size=10), _VALUES, min_size=1, max_size=6
    ),
    publisher=st.one_of(st.none(), st.text(min_size=1, max_size=8)),
)
def test_wire_roundtrip_property(attributes, publisher):
    event = Event(attributes, publisher=publisher)
    assert Event.from_bytes(event.to_bytes()) == event
