"""Covering-compression must never change delivery semantics."""

from hypothesis import given, settings, strategies as st

from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree

RANGE = 64

_SUBSCRIPTIONS = st.lists(
    st.tuples(
        st.integers(0, RANGE - 1),   # low
        st.integers(0, RANGE - 1),   # high (swapped if needed)
        st.integers(0, 3),           # leaf choice
    ),
    min_size=1,
    max_size=10,
)

_EVENTS = st.lists(st.integers(-5, RANGE + 5), min_size=1, max_size=8)


@settings(max_examples=40, deadline=None)
@given(subscriptions=_SUBSCRIPTIONS, values=_EVENTS)
def test_tree_delivery_equals_direct_matching(subscriptions, values):
    """Every subscriber gets exactly the events its filter matches.

    Whatever covering compression does to the internal routing tables,
    end-to-end delivery must coincide with direct filter evaluation.
    """
    tree = BrokerTree(num_brokers=7)
    leaves = tree.leaf_ids()
    inboxes = {}
    filters = {}
    for index, (low, high, leaf_choice) in enumerate(subscriptions):
        low, high = min(low, high), max(low, high)
        name = f"s{index}"
        inboxes[name] = []
        filters[name] = Filter.numeric_range("t", "v", low, high)
        tree.attach_subscriber(
            name, leaves[leaf_choice % len(leaves)],
            inboxes[name].append,
        )
        tree.subscribe(name, filters[name])

    events = [Event({"topic": "t", "v": value}) for value in values]
    for event in events:
        tree.publish(event)

    for name, subscription in filters.items():
        expected = [e["v"] for e in events if subscription.matches(e)]
        assert [e["v"] for e in inboxes[name]] == expected


@settings(max_examples=25, deadline=None)
@given(subscriptions=_SUBSCRIPTIONS, values=_EVENTS, drop=st.integers(0, 9))
def test_delivery_correct_after_unsubscription(subscriptions, values, drop):
    """Unsubscription mid-stream leaves everyone else's semantics intact."""
    tree = BrokerTree(num_brokers=7)
    leaves = tree.leaf_ids()
    inboxes = {}
    filters = {}
    for index, (low, high, leaf_choice) in enumerate(subscriptions):
        low, high = min(low, high), max(low, high)
        name = f"s{index}"
        inboxes[name] = []
        filters[name] = Filter.numeric_range("t", "v", low, high)
        tree.attach_subscriber(
            name, leaves[leaf_choice % len(leaves)],
            inboxes[name].append,
        )
        tree.subscribe(name, filters[name])

    dropped = f"s{drop % len(subscriptions)}"
    tree.unsubscribe(dropped, filters[dropped])

    events = [Event({"topic": "t", "v": value}) for value in values]
    for event in events:
        tree.publish(event)

    for name, subscription in filters.items():
        if name == dropped:
            assert inboxes[name] == []
        else:
            expected = [e["v"] for e in events if subscription.matches(e)]
            assert [e["v"] for e in inboxes[name]] == expected


@settings(max_examples=25, deadline=None)
@given(subscriptions=_SUBSCRIPTIONS)
def test_upstream_tables_are_minimal(subscriptions):
    """No forwarded filter is covered by another forwarded filter."""
    tree = BrokerTree(num_brokers=7)
    leaves = tree.leaf_ids()
    for index, (low, high, leaf_choice) in enumerate(subscriptions):
        low, high = min(low, high), max(low, high)
        name = f"s{index}"
        tree.attach_subscriber(
            name, leaves[leaf_choice % len(leaves)], lambda e: None
        )
        tree.subscribe(name, Filter.numeric_range("t", "v", low, high))

    for broker in tree.brokers.values():
        forwarded = broker.forwarded_upstream
        for first in forwarded:
            for second in forwarded:
                if first is second:
                    continue
                assert not (
                    first.covers(second) and first != second
                ), (first, second)
