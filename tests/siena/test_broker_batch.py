"""Batched dissemination through brokers and trees is semantics-preserving."""

from repro.obs.metrics import MetricsRegistry
from repro.routing.tokens import (
    TokenAuthority,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.siena.broker import Broker
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.index import MatchResultCache
from repro.siena.network import BrokerTree

MASTER = bytes(range(16))


def _events(count, topic="news"):
    return [Event({"topic": topic, "n": n}) for n in range(count)]


def test_batch_deliveries_match_sequential_publishes():
    results = []
    for batched in (False, True):
        tree = BrokerTree(num_brokers=7)
        streams = {}
        for index, leaf in enumerate(tree.leaf_ids()):
            streams[leaf] = []
            tree.attach_subscriber(f"s{index}", leaf, streams[leaf].append)
            tree.subscribe(f"s{index}", Filter.topic("news"))
        events = _events(5) + [Event({"topic": "other"})]
        if batched:
            tree.publish(events)
        else:
            for event in events:
                tree.publish(event)
        results.append(streams)
    assert results[0] == results[1]


def test_batch_transports_one_message_per_hop():
    tree_single = BrokerTree(num_brokers=7)
    tree_batched = BrokerTree(num_brokers=7)
    for tree in (tree_single, tree_batched):
        leaf = tree.leaf_ids()[0]
        tree.attach_subscriber("s", leaf, lambda _e: None)
        tree.subscribe("s", Filter.topic("news"))
    events = _events(10)
    for event in events:
        tree_single.publish(event)
    tree_batched.publish(events)
    assert tree_batched.message_count < tree_single.message_count
    root = tree_batched.root
    assert root.stats.batches_received == 1
    assert root.stats.events_received == 10


def test_dead_broker_drops_whole_batch():
    broker = Broker("b")
    broker.crash()
    assert broker.publish(_events(4)) == 0
    assert broker.stats.dropped_while_down == 4


def test_batch_does_not_return_to_sender():
    """A batch arriving from the parent must not be forwarded back up."""
    upstream = []
    broker = Broker("b")
    broker.attach_parent("p", lambda kind, payload: upstream.append(kind))
    broker.publish(_events(3), arrived_from="p")
    assert upstream == []


def test_group_prefilter_preserves_tokenized_semantics():
    authority = TokenAuthority(MASTER)
    results = []
    for with_cache in (False, True):
        cache = MatchResultCache() if with_cache else None
        tree = BrokerTree(
            num_brokers=7, match=tokenized_match, match_cache=cache
        )
        streams = {}
        for index, (leaf, topic) in enumerate(
            zip(tree.leaf_ids(), ("alpha", "beta", "alpha", "gamma"))
        ):
            streams[index] = []
            tree.attach_subscriber(f"s{index}", leaf, streams[index].append)
            tree.subscribe(
                f"s{index}", tokenized_subscription(authority, topic)
            )
        for seq, topic in enumerate(
            ("alpha", "beta", "delta", "alpha", "gamma")
        ):
            tree.publish(
                tokenize_event(authority, Event({"_seq": seq}), {}, topic)
            )
        results.append(
            {k: [e.get("_seq") for e in v] for k, v in streams.items()}
        )
    assert results[0] == results[1]
    assert results[0][0] == [0, 3]  # alpha subscriber saw both alphas


def test_group_prefilter_reduces_match_tests():
    """With the topic-group memo, brokers past the first do O(1) group
    work per event instead of testing every subscription."""
    authority = TokenAuthority(MASTER)
    tests = {}
    for with_cache in (False, True):
        registry = MetricsRegistry()
        cache = MatchResultCache() if with_cache else None
        tree = BrokerTree(
            num_brokers=15, match=tokenized_match,
            registry=registry, match_cache=cache,
        )
        for index, leaf in enumerate(tree.leaf_ids()):
            tree.attach_subscriber(f"s{index}", leaf, lambda _e: None)
            for topic_index in range(4):
                tree.subscribe(
                    f"s{index}",
                    tokenized_subscription(
                        authority, f"topic-{index}-{topic_index}"
                    ),
                )
        for seq in range(10):
            tree.publish(
                tokenize_event(authority, Event({"_seq": seq}), {}, "topic-0-0")
            )
        tests[with_cache] = sum(
            broker.stats.match_tests for broker in tree.brokers.values()
        )
    assert tests[True] < tests[False]


def test_batch_stats_counters():
    registry = MetricsRegistry()
    tree = BrokerTree(num_brokers=3, registry=registry)
    leaf = tree.leaf_ids()[0]
    tree.attach_subscriber("s", leaf, lambda _e: None)
    tree.subscribe("s", Filter.topic("news"))
    tree.publish(_events(4))
    assert tree.root.stats.batches_received == 1
    assert tree.root.stats.batches_forwarded == 1
    child = tree.brokers[leaf]
    assert child.stats.batches_received == 1
    assert child.stats.deliveries == 4


def test_unsubscribe_invalidates_match_cache_in_tree():
    cache = MatchResultCache()
    tree = BrokerTree(num_brokers=3, match_cache=cache)
    leaf = tree.leaf_ids()[0]
    got = []
    tree.attach_subscriber("s", leaf, got.append)
    news = Filter.topic("news")
    tree.subscribe("s", news)
    tree.publish(Event({"topic": "news"}))
    tree.unsubscribe("s", news)
    tree.publish(Event({"topic": "news"}))
    assert len(got) == 1
