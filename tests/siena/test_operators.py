"""Operator matching and constraint implication (the covering kernel)."""

import pytest
from hypothesis import given, strategies as st

from repro.siena.operators import Op, implies, matches, valid_operand


class TestMatches:
    def test_eq(self):
        assert matches(Op.EQ, 5, 5)
        assert not matches(Op.EQ, 5, 6)
        assert matches(Op.EQ, "a", "a")

    def test_ne(self):
        assert matches(Op.NE, 5, 6)
        assert not matches(Op.NE, 5, 5)

    def test_inequalities(self):
        assert matches(Op.GT, 20, 30)       # 30 > 20
        assert not matches(Op.GT, 20, 20)
        assert matches(Op.GE, 20, 20)
        assert matches(Op.LT, 20, 10)
        assert matches(Op.LE, 20, 20)
        assert not matches(Op.LE, 20, 21)

    def test_string_inequalities(self):
        assert matches(Op.GT, "apple", "banana")
        assert not matches(Op.LT, "apple", "banana")

    def test_prefix(self):
        assert matches(Op.PREFIX, "can", "cancerTrail")
        assert not matches(Op.PREFIX, "trail", "cancerTrail")

    def test_suffix(self):
        assert matches(Op.SUFFIX, "Trail", "cancerTrail")
        assert not matches(Op.SUFFIX, "cancer", "cancerTrail")

    def test_substring(self):
        assert matches(Op.SUBSTRING, "cer", "cancerTrail")
        assert not matches(Op.SUBSTRING, "xyz", "cancerTrail")

    def test_any_matches_everything(self):
        assert matches(Op.ANY, None, 5)
        assert matches(Op.ANY, None, "s")

    def test_cross_type_never_matches(self):
        assert not matches(Op.EQ, 5, "5")
        assert not matches(Op.GT, "a", 1)
        assert not matches(Op.PREFIX, "1", 10)

    def test_bool_is_not_numeric(self):
        assert not matches(Op.EQ, 1, True)


class TestValidOperand:
    def test_numeric_operators(self):
        assert valid_operand(Op.GT, 5)
        assert valid_operand(Op.GT, 5.5)
        assert not valid_operand(Op.PREFIX, 5)

    def test_string_operators(self):
        assert valid_operand(Op.PREFIX, "abc")
        assert valid_operand(Op.GT, "abc")

    def test_any_needs_none(self):
        assert valid_operand(Op.ANY, None)
        assert not valid_operand(Op.ANY, 5)

    def test_bool_rejected(self):
        assert not valid_operand(Op.EQ, True)


class TestImplies:
    """implies(narrow_op, narrow_v, wide_op, wide_v)."""

    def test_paper_example(self):
        # <age, >, 30> implies <age, >, 20>  (f covers f').
        assert implies(Op.GT, 30, Op.GT, 20)
        assert not implies(Op.GT, 20, Op.GT, 30)

    def test_eq_implies_anything_it_satisfies(self):
        assert implies(Op.EQ, 25, Op.GT, 20)
        assert implies(Op.EQ, 25, Op.LE, 25)
        assert not implies(Op.EQ, 25, Op.GT, 30)
        assert implies(Op.EQ, "cancerTrail", Op.PREFIX, "cancer")

    def test_ge_gt_interactions(self):
        assert implies(Op.GE, 21, Op.GT, 20)
        assert implies(Op.GT, 20, Op.GE, 20)
        assert not implies(Op.GE, 20, Op.GT, 20)

    def test_le_lt_interactions(self):
        assert implies(Op.LE, 19, Op.LT, 20)
        assert implies(Op.LT, 20, Op.LE, 20)
        assert not implies(Op.LE, 20, Op.LT, 20)

    def test_inequality_implies_ne(self):
        assert implies(Op.GT, 20, Op.NE, 20)
        assert implies(Op.GT, 20, Op.NE, 15)
        assert not implies(Op.GT, 20, Op.NE, 25)
        assert implies(Op.LT, 20, Op.NE, 20)
        assert not implies(Op.LT, 20, Op.NE, 15)

    def test_integer_tightening(self):
        # Over integers, x > 20 means x >= 21, so x != 21 is NOT implied
        # but x != 20 is.
        assert implies(Op.GT, 20, Op.NE, 20)
        assert not implies(Op.GT, 20, Op.NE, 21)

    def test_any_is_the_top(self):
        assert implies(Op.GT, 5, Op.ANY, None)
        assert not implies(Op.ANY, None, Op.GT, 5)

    def test_prefix_containment(self):
        assert implies(Op.PREFIX, "cancer", Op.PREFIX, "can")
        assert not implies(Op.PREFIX, "can", Op.PREFIX, "cancer")

    def test_suffix_containment(self):
        assert implies(Op.SUFFIX, "erTrail", Op.SUFFIX, "Trail")
        assert not implies(Op.SUFFIX, "Trail", Op.SUFFIX, "erTrail")

    def test_prefix_implies_substring(self):
        assert implies(Op.PREFIX, "cancer", Op.SUBSTRING, "anc")
        assert implies(Op.SUFFIX, "Trail", Op.SUBSTRING, "rail")

    def test_substring_containment(self):
        assert implies(Op.SUBSTRING, "ancer", Op.SUBSTRING, "nce")

    def test_ne_implies_only_itself(self):
        assert implies(Op.NE, 5, Op.NE, 5)
        assert not implies(Op.NE, 5, Op.NE, 6)

    def test_unrelated_pairs_conservatively_false(self):
        assert not implies(Op.SUBSTRING, "abc", Op.PREFIX, "abc")
        assert not implies(Op.GT, 5, Op.LT, 10)


# -- soundness property: implication must never lie -------------------------

_NUMERIC_IMPLICATION_OPS = [Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]


@given(
    narrow_op=st.sampled_from(_NUMERIC_IMPLICATION_OPS),
    narrow_value=st.integers(-50, 50),
    wide_op=st.sampled_from(_NUMERIC_IMPLICATION_OPS),
    wide_value=st.integers(-50, 50),
    sample=st.integers(-60, 60),
)
def test_numeric_implication_is_sound(
    narrow_op, narrow_value, wide_op, wide_value, sample
):
    """If implies() says yes, every satisfying value satisfies the wide one."""
    if implies(narrow_op, narrow_value, wide_op, wide_value):
        if matches(narrow_op, narrow_value, sample):
            assert matches(wide_op, wide_value, sample)


_STRING_IMPLICATION_OPS = [Op.EQ, Op.PREFIX, Op.SUFFIX, Op.SUBSTRING]


@given(
    narrow_op=st.sampled_from(_STRING_IMPLICATION_OPS),
    narrow_value=st.text(alphabet="abc", max_size=4),
    wide_op=st.sampled_from(_STRING_IMPLICATION_OPS),
    wide_value=st.text(alphabet="abc", max_size=4),
    sample=st.text(alphabet="abc", max_size=6),
)
def test_string_implication_is_sound(
    narrow_op, narrow_value, wide_op, wide_value, sample
):
    if implies(narrow_op, narrow_value, wide_op, wide_value):
        if matches(narrow_op, narrow_value, sample):
            assert matches(wide_op, wide_value, sample)
