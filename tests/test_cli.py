"""The command-line interface."""

import pytest

from repro.cli import main


def test_demo(capsys):
    assert main(["demo"]) == 0
    output = capsys.readouterr().out
    assert "doctor" in output
    assert "rec-17" in output
    assert "None" in output  # the outsider is denied


def test_grant(capsys):
    assert main(["grant", "16", "31"]) == 0
    output = capsys.readouterr().out
    assert "keys" in output
    assert "element" in output


def test_grant_with_options(capsys):
    assert main(
        ["grant", "--topic", "stocks", "--attribute", "price",
         "--range", "1024", "100", "900"]
    ) == 0
    output = capsys.readouterr().out
    assert "stocks" in output


def test_calibrate(capsys):
    assert main(["calibrate"]) == 0
    output = capsys.readouterr().out
    assert "hash_s" in output
    assert "us" in output


def test_experiment_construction(capsys):
    assert main(["experiment", "construction"]) == 0
    output = capsys.readouterr().out
    assert "Figure 8" in output


def test_experiment_cache(capsys):
    assert main(["experiment", "cache"]) == 0
    output = capsys.readouterr().out
    assert "Figure 11" in output


def test_experiment_entropy_small(capsys):
    assert main(["experiment", "entropy", "--events", "600"]) == 0
    output = capsys.readouterr().out
    assert "S_app" in output


def test_topology(capsys):
    assert main(["topology", "--nodes", "16"]) == 0
    output = capsys.readouterr().out
    assert "RTT mean" in output


def test_chaos(capsys):
    assert main(["chaos", "--seed", "7", "--duration", "1",
                 "--rate", "20"]) == 0
    output = capsys.readouterr().out
    assert "Chaos run: seed 7" in output
    assert "fire-and-forget" in output
    assert "reliable" in output
    assert "delivery" in output
    assert "Multipath G_ind" in output


def test_chaos_kdc_scenario(capsys):
    assert main(["chaos", "--scenario", "kdc", "--seed", "7",
                 "--duration", "4", "--rate", "10",
                 "--subscribers", "2"]) == 0
    output = capsys.readouterr().out
    assert "KDC chaos run: seed 7" in output
    assert "single-kdc" in output
    assert "replicated" in output
    assert "Multipath" not in output  # overlay experiments not run


def test_chaos_overlay_scenario_skips_kdc(capsys):
    assert main(["chaos", "--scenario", "overlay", "--seed", "7",
                 "--duration", "1", "--rate", "20"]) == 0
    output = capsys.readouterr().out
    assert "Chaos run: seed 7" in output
    assert "KDC chaos run" not in output


def test_chaos_recovery_scenario_gates(capsys):
    assert main(["chaos", "--scenario", "recovery", "--seed", "7",
                 "--duration", "5", "--check"]) == 0
    captured = capsys.readouterr()
    assert "Recovery run: seed 7" in captured.out
    assert "Tree repairs" in captured.out
    assert "Metrics snapshot (recovery)" in captured.out
    assert "chaos gates passed" in captured.err
    assert "Chaos run" not in captured.out  # overlay experiments not run


def test_chaos_recovery_scenario_rejects_bad_config(capsys):
    assert main(["chaos", "--scenario", "recovery", "--seed", "7",
                 "--brokers", "7"]) == 2
    assert "error:" in capsys.readouterr().err


def test_chaos_list_enumerates_scenarios(capsys):
    assert main(["chaos", "--list"]) == 0
    output = capsys.readouterr().out
    from repro.cli import CHAOS_SCENARIOS

    for name, description in CHAOS_SCENARIOS.items():
        assert name in output
        assert description.split(":")[0] in output
    assert "overload" in output


def test_chaos_overload_scenario_gates(tmp_path, capsys):
    snapshot = tmp_path / "overload.json"
    assert main(["chaos", "--scenario", "overload", "--seed", "7",
                 "--check", "--snapshot", str(snapshot)]) == 0
    captured = capsys.readouterr()
    assert "Overload run: seed 7" in captured.out
    assert "Storm timeline" in captured.out
    assert "Graceful degradation sweep" in captured.out
    assert "Metrics snapshot (overload)" in captured.out
    assert "chaos gates passed" in captured.err
    assert "Chaos run" not in captured.out  # overlay experiments not run
    import json

    document = json.loads(snapshot.read_text())
    assert "counters" in document


def test_chaos_overload_rejects_bad_config(capsys):
    assert main(["chaos", "--scenario", "overload",
                 "--storm-factor", "20"]) == 2
    assert "error:" in capsys.readouterr().err


def test_metrics_check_passes(capsys):
    assert main(["metrics", "--duration", "1", "--rate", "20",
                 "--check"]) == 0
    captured = capsys.readouterr()
    assert '"counters"' in captured.out
    assert "broker_events_received_total" in captured.out
    assert "all tracing invariants hold" in captured.err


def test_metrics_writes_snapshot_file(tmp_path, capsys):
    target = tmp_path / "snapshot.json"
    assert main(["metrics", "--duration", "1", "--rate", "20",
                 "--output", str(target)]) == 0
    import json

    document = json.loads(target.read_text())
    assert document["tracing"]["dropped_spans"] == 0
    assert document["workload"]["published"] == 20
    assert "spans across" in capsys.readouterr().err


def test_metrics_prometheus_format(capsys):
    assert main(["metrics", "--duration", "1", "--rate", "20",
                 "--format", "prometheus"]) == 0
    output = capsys.readouterr().out
    assert "# TYPE net_delivery_latency_seconds summary" in output
    assert "broker_events_received_total" in output


def test_chaos_reports_include_metrics_snapshot(capsys):
    assert main(["chaos", "--seed", "7", "--duration", "1",
                 "--rate", "20"]) == 0
    output = capsys.readouterr().out
    assert "Metrics snapshot (reliable tree)" in output
    assert "hop retries" in output
    assert "e2e latency" in output


def test_command_registry_drives_parser():
    from repro.cli import build_parser, commands

    names = {entry.name for entry in commands()}
    assert {"demo", "grant", "chaos", "metrics", "verify"} <= names
    parser = build_parser()
    args = parser.parse_args(["metrics", "--check"])
    assert args.check is True


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


_BENCH_SMOKE = [
    "--seed", "11", "--events", "30", "--brokers", "7",
    "--subscribers", "4", "--topics", "8", "--topics-per-subscriber", "3",
    "--batch-size", "8", "--sweep", "8",
]


def test_bench_registered_with_uniform_seed_option():
    from repro.cli import build_parser, commands

    assert "bench" in {entry.name for entry in commands()}
    parser = build_parser()
    for command in ("bench", "chaos", "metrics"):
        args = parser.parse_args([command, "--seed", "3"])
        assert args.seed == 3


def test_bench_smoke_writes_report(tmp_path, capsys):
    target = tmp_path / "BENCH_engine.json"
    assert main(["bench", *_BENCH_SMOKE, "--output", str(target)]) == 0
    captured = capsys.readouterr()
    assert "equivalence: ok" in captured.out
    assert "engine" in captured.out

    import json

    document = json.loads(target.read_text())
    assert document["schema"] == "repro.bench/engine.v1"
    assert document["equivalence"]["holds"] is True


def test_bench_check_against_own_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["bench", *_BENCH_SMOKE, "--output", str(baseline)]) == 0
    capsys.readouterr()
    fresh = tmp_path / "fresh.json"
    assert main([
        "bench", *_BENCH_SMOKE, "--output", str(fresh),
        "--check", "--baseline", str(baseline), "--tolerance", "0.6",
    ]) == 0
    assert "bench check passed" in capsys.readouterr().err


def test_bench_check_missing_baseline_is_config_error(tmp_path, capsys):
    assert main([
        "bench", *_BENCH_SMOKE, "--output", str(tmp_path / "out.json"),
        "--check", "--baseline", str(tmp_path / "nope.json"),
    ]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_bench_overload_suite_writes_report(tmp_path, capsys):
    target = tmp_path / "BENCH_overload.json"
    assert main(["bench", "--suite", "overload", "--seed", "7",
                 "--output", str(target)]) == 0
    captured = capsys.readouterr()
    assert "sustained overload sweep" in captured.out
    assert "headline" in captured.out

    import json

    document = json.loads(target.read_text())
    assert document["schema"] == "repro.bench/overload.v1"
    assert document["headline"]["high_delivery"] >= 0.99


def test_bench_overload_check_against_committed_baseline(tmp_path, capsys):
    assert main([
        "bench", "--suite", "overload", "--seed", "7",
        "--output", str(tmp_path / "fresh.json"),
        "--check", "--tolerance", "0.05",
    ]) == 0
    assert "bench check passed" in capsys.readouterr().err


def test_bench_rejects_bad_workload(tmp_path, capsys):
    assert main(["bench", "--events", "0",
                 "--output", str(tmp_path / "out.json")]) == 2
    assert "error" in capsys.readouterr().err


_PARALLEL_SMOKE = [
    "--suite", "parallel", "--seed", "11", "--events", "30",
    "--brokers", "7", "--subscribers", "4", "--topics", "8",
    "--topics-per-subscriber", "3", "--batch-size", "8",
    "--workers", "1,2", "--chunk-size", "8",
]


def test_bench_parallel_suite_writes_report(tmp_path, capsys):
    target = tmp_path / "BENCH_parallel.json"
    assert main(["bench", *_PARALLEL_SMOKE, "--output", str(target)]) == 0
    captured = capsys.readouterr()
    assert "parallel ladder" in captured.out
    assert "equivalence: ok" in captured.out

    import json

    document = json.loads(target.read_text())
    assert document["schema"] == "repro.bench/parallel.v1"
    assert document["equivalence"]["holds"] is True
    assert [rung["workers"] for rung in document["ladder"]] == [1, 2]


def test_bench_parallel_check_against_own_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["bench", *_PARALLEL_SMOKE, "--output", str(baseline)]) == 0
    capsys.readouterr()
    assert main([
        "bench", *_PARALLEL_SMOKE, "--output", str(tmp_path / "fresh.json"),
        "--check", "--baseline", str(baseline), "--tolerance", "0.6",
    ]) == 0
    assert "bench check passed" in capsys.readouterr().err


def test_bench_parallel_rejects_bad_ladder(tmp_path, capsys):
    assert main([
        "bench", "--suite", "parallel", "--workers", "0",
        "--output", str(tmp_path / "out.json"),
    ]) == 2
    assert "error" in capsys.readouterr().err


def test_version_flag_reports_the_package_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    output = capsys.readouterr().out
    assert output.startswith("repro ")
    import repro

    assert repro.__version__ in output


def test_serve_registered_with_parent_option():
    from repro.cli import build_parser, commands

    assert "serve" in {entry.name for entry in commands()}
    args = build_parser().parse_args(
        ["serve", "--broker-id", "b3", "--port", "7001",
         "--parent", "127.0.0.1:7000"]
    )
    assert args.broker_id == "b3"
    assert args.port == 7001
    assert args.parent == "127.0.0.1:7000"


_LIVEBENCH_SMOKE = [
    "--seed", "11", "--events", "15", "--brokers", "3",
    "--subscribers", "3", "--topics", "8", "--topics-per-subscriber", "2",
]


def test_livebench_smoke_writes_report(tmp_path, capsys):
    target = tmp_path / "BENCH_rtnet.json"
    assert main(["livebench", *_LIVEBENCH_SMOKE,
                 "--output", str(target)]) == 0
    captured = capsys.readouterr()
    assert "equivalence: ok" in captured.out
    assert "loopback TCP tree" in captured.out
    assert "unauthorized opens: 0" in captured.out

    import json

    document = json.loads(target.read_text())
    assert document["schema"] == "repro.bench/rtnet.v1"
    assert document["equivalence"]["holds"] is True
    assert document["security"]["unauthorized_opens"] == 0


def test_livebench_check_against_own_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["livebench", *_LIVEBENCH_SMOKE,
                 "--output", str(baseline)]) == 0
    capsys.readouterr()
    assert main([
        "livebench", *_LIVEBENCH_SMOKE,
        "--output", str(tmp_path / "fresh.json"),
        "--check", "--baseline", str(baseline), "--tolerance", "0.6",
    ]) == 0
    assert "livebench check passed" in capsys.readouterr().err


def test_livebench_check_missing_baseline_is_config_error(tmp_path, capsys):
    assert main([
        "livebench", *_LIVEBENCH_SMOKE,
        "--output", str(tmp_path / "out.json"),
        "--check", "--baseline", str(tmp_path / "nope.json"),
    ]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_livebench_rejects_bad_workload(tmp_path, capsys):
    assert main(["livebench", "--events", "0",
                 "--output", str(tmp_path / "out.json")]) == 2
    assert "error" in capsys.readouterr().err
