"""The discrete-event simulator."""

import pytest

from repro.net.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("late"))
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 2.0


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for index in range(5):
        sim.schedule(1.0, lambda index=index: fired.append(index))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-0.1, lambda: None)


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, lambda: chain(depth + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_run_until_stops_early_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for index in range(10):
        sim.schedule(float(index), lambda index=index: fired.append(index))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_cancellation():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("kept"))
    handle.cancel()
    sim.run()
    assert fired == ["kept"]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_time() == 2.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: fired.append(5)))
    sim.run()
    assert fired == [5]
    assert sim.now == 5.0


def test_schedule_at_past_time_raises():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError, match="time 1.0.*before now 2.0"):
        sim.schedule_at(1.0, lambda: None)


def test_schedule_at_current_time_is_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(1.0, lambda: fired.append(1)))
    sim.run()
    assert fired == [1]


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_events_processed_counter():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.events_processed == 2
