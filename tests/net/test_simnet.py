"""The timed pub-sub overlay."""

import pytest

from repro.net.sim import Simulator
from repro.net.simnet import SimulatedPubSub
from repro.siena.events import Event
from repro.siena.filters import Filter


def _network(num_brokers=3, **kwargs):
    sim = Simulator()
    net = SimulatedPubSub(sim, num_brokers, **kwargs)
    return sim, net


def test_delivery_includes_link_latencies():
    sim, net = _network(3, link_latency=0.050, client_latency=0.005)
    net.attach_subscriber("s", net.leaf_ids()[0])
    net.subscribe("s", Filter.topic("t"))
    net.publish(Event({"topic": "t"}))
    sim.run(until=1.0)
    assert len(net.deliveries) == 1
    # root -> leaf link + client link.
    assert net.deliveries[0].latency == pytest.approx(0.055)


def test_processing_cost_adds_to_latency():
    sim, net = _network(
        1,
        client_latency=0.0,
        broker_cost=lambda n, e: 0.020,
        subscriber_cost=lambda s, e: 0.030,
    )
    net.attach_subscriber("s", 0)
    net.subscribe("s", Filter.topic("t"))
    net.publish(Event({"topic": "t"}))
    sim.run(until=1.0)
    assert net.deliveries[0].latency == pytest.approx(0.050)


def test_only_matching_subscribers_receive():
    sim, net = _network(7)
    leaves = net.leaf_ids()
    net.attach_subscriber("yes", leaves[0])
    net.attach_subscriber("no", leaves[1])
    net.subscribe("yes", Filter.topic("t"))
    net.subscribe("no", Filter.topic("other"))
    net.publish(Event({"topic": "t"}))
    sim.run(until=1.0)
    assert [d.subscriber_id for d in net.deliveries] == ["yes"]


def test_publication_delay_offsets_timing():
    sim, net = _network(1, client_latency=0.0)
    net.attach_subscriber("s", 0)
    net.subscribe("s", Filter.topic("t"))
    net.publish(Event({"topic": "t"}), delay=0.5)
    sim.run(until=1.0)
    record = net.deliveries[0]
    assert record.published_at == pytest.approx(0.5)
    assert record.latency == pytest.approx(0.0)


def test_carrier_rides_along():
    sim, net = _network(1)
    net.attach_subscriber("s", 0)
    net.subscribe("s", Filter.topic("t"))
    seq = net.publish(Event({"topic": "t"}), carrier={"sealed": True})
    assert net.carrier_of(seq) == {"sealed": True}


def test_mean_latency_nan_when_no_deliveries():
    _, net = _network(1)
    assert net.mean_latency() != net.mean_latency()  # NaN


def test_backlog_monitor_samples_all_nodes():
    sim, net = _network(3)
    net.attach_subscriber("s", net.leaf_ids()[0])
    net.start_backlog_monitor(interval=0.1)
    sim.run(until=0.55)
    assert len(net.nodes[0].stats.backlog_samples) == 5
    assert len(net.subscriber_nodes["s"].stats.backlog_samples) == 5


def test_saturation_flagged_under_overload():
    sim, net = _network(
        1, broker_cost=lambda n, e: 0.100, client_latency=0.0
    )
    net.attach_subscriber("s", 0)
    net.subscribe("s", Filter.topic("t"))
    net.start_backlog_monitor(interval=0.05)
    for index in range(100):
        net.publish(Event({"topic": "t", "n": index}), delay=index * 0.01)
    sim.run(until=1.2)
    assert net.any_saturated()


def test_no_saturation_under_light_load():
    sim, net = _network(
        1, broker_cost=lambda n, e: 0.001, client_latency=0.0
    )
    net.attach_subscriber("s", 0)
    net.subscribe("s", Filter.topic("t"))
    net.start_backlog_monitor(interval=0.05)
    for index in range(50):
        net.publish(Event({"topic": "t", "n": index}), delay=index * 0.02)
    sim.run(until=2.0)
    assert not net.any_saturated()
    assert len(net.deliveries) == 50


def test_per_send_cost_charged_to_sender():
    sim, net = _network(3, per_send_s=0.010)
    net.attach_subscriber("s", net.leaf_ids()[0])
    net.subscribe("s", Filter.topic("t"))
    net.publish(Event({"topic": "t"}))
    sim.run(until=1.0)
    assert net.nodes[0].stats.work_submitted >= 0.010


def test_duplicate_subscriber_rejected():
    _, net = _network(3)
    net.attach_subscriber("s", 1)
    with pytest.raises(ValueError):
        net.attach_subscriber("s", 2)


def test_rejects_empty_network():
    with pytest.raises(ValueError):
        SimulatedPubSub(Simulator(), 0)
