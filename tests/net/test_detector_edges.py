"""Failure-detector edge cases: flapping, partitions, latency faults.

The detector must (a) ride out a broker that flaps up and down without
ever escalating to tree surgery, (b) park -- not dead-letter -- while a
partition hides a live neighbour, and (c) stay completely quiet under
pure latency faults, where acks are slow but nothing is down.
"""

from repro.net.faults import (
    BrokerCrash,
    FaultInjector,
    FaultPlan,
    LinkFault,
    PartitionFault,
)
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.recovery import RepairPolicy
from repro.siena.events import Event
from repro.siena.filters import Filter


def _overlay(plan, num_brokers=7, repair_after=1.0, seed=11, **kwargs):
    sim = Simulator()
    injector = FaultInjector(sim, plan, seed=seed)
    net = SimulatedPubSub(
        sim,
        num_brokers,
        arity=2,
        reliability=RetryPolicy(heartbeat_interval=0.1),
        faults=injector,
        seed=seed + 1,
        repair=RepairPolicy(repair_after=repair_after),
        **kwargs,
    )
    injector.install()
    return sim, net


def _workload(net, events=120, rate=40.0):
    subscription = Filter.topic("t")
    subscribers = []
    for index, leaf in enumerate(net.leaf_ids()):
        subscriber_id = f"sub{index}"
        net.attach_subscriber(subscriber_id, leaf)
        net.subscribe(subscriber_id, subscription)
        subscribers.append(subscriber_id)
    for k in range(events):
        net.publish(Event({"topic": "t", "k": k}), delay=k / rate)
    return subscribers


def test_flapping_broker_never_escalates_to_repair():
    # Three 0.5s outages: each long enough to be detected (3 x 0.1s
    # heartbeats), each healed well inside the 1.0s repair timer.
    plan = FaultPlan(crashes=[
        BrokerCrash(1, at=0.5, duration=0.5),
        BrokerCrash(1, at=1.8, duration=0.5),
        BrokerCrash(1, at=3.1, duration=0.5),
    ])
    sim, net = _overlay(plan, repair_after=1.0)
    _workload(net, events=160)
    sim.run(until=8.0)
    assert net.rstats.failures_detected >= 3
    assert net.rstats.recoveries_detected >= 3
    assert net.repair.records == []  # every down-timer was cancelled
    assert net.repair.false_alarms == 0
    assert net.brokers[1].alive
    assert net.brokers[1].parent == 0


def test_detection_during_partition_parks_instead_of_dead_lettering():
    plan = FaultPlan(
        partitions=[PartitionFault(group=(2, 5, 6), start=0.8, duration=1.2)]
    )
    sim, net = _overlay(plan, repair_after=0.3)
    subscribers = _workload(net, events=120)
    sim.run(until=7.0)
    # The silence was detected, traffic parked, and the repair probe saw
    # a live peer -- no surgery, no dead letters, full delivery after
    # the heal.
    assert net.rstats.failures_detected >= 1
    assert net.rstats.parked > 0
    assert net.rstats.parked_flushes > 0
    assert net.rstats.dead_letters == 0
    assert net.repair.false_alarms >= 1
    assert net.repair.records == []
    assert len(net.deliveries) == 120 * len(subscribers)


def test_pure_latency_faults_cause_no_false_positives():
    # A permanent 25ms latency spike on every link: acks come back late
    # (forcing retransmissions) but heartbeat *spacing* is unchanged, so
    # the detector must stay silent and nothing may be parked.
    plan = FaultPlan(link_faults=[LinkFault(extra_latency=0.025)])
    sim, net = _overlay(plan)
    subscribers = _workload(net, events=120)
    sim.run(until=6.0)
    assert net.rstats.retries > 0  # latency did bite the ack timeout
    assert net.rstats.failures_detected == 0
    assert net.rstats.parked == 0
    assert net.repair.records == []
    assert net.repair.false_alarms == 0
    # Hop-level dedup absorbed the spurious retransmits end to end.
    assert len(net.deliveries) == 120 * len(subscribers)
    keys = [(d.seq, d.subscriber_id) for d in net.deliveries]
    assert len(keys) == len(set(keys))
