"""Property-based invariants of the discrete-event engine."""

from hypothesis import given, settings, strategies as st

from repro.net.node import ProcessingNode
from repro.net.sim import Simulator


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(0, 100, allow_nan=False), max_size=30))
def test_time_never_goes_backwards(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert all(time >= 0 for time in observed)


@settings(max_examples=50, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(
            st.floats(0, 50, allow_nan=False),   # arrival
            st.floats(0.001, 5, allow_nan=False),  # cost
        ),
        min_size=1,
        max_size=25,
    )
)
def test_fifo_server_conservation(jobs):
    """Work conservation and FIFO order for arbitrary arrival patterns."""
    sim = Simulator()
    node = ProcessingNode(sim)
    completions = []
    for arrival, cost in jobs:
        sim.schedule(
            arrival,
            lambda cost=cost: node.submit(
                cost, lambda: completions.append(sim.now)
            ),
        )
    sim.run()
    # Everything completes, in non-decreasing completion order.
    assert len(completions) == len(jobs)
    assert completions == sorted(completions)
    assert node.outstanding == 0
    # Work conservation: total busy time equals total submitted work.
    total_cost = sum(cost for _, cost in jobs)
    assert abs(node.stats.busy_time - total_cost) < 1e-6
    # The server finishes no earlier than the total work requires.
    assert completions[-1] >= total_cost - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    arrivals=st.lists(st.floats(0, 10, allow_nan=False), min_size=2,
                      max_size=20),
    cost=st.floats(0.5, 2.0, allow_nan=False),
)
def test_backlogged_server_spacing(arrivals, cost):
    """Under backlog, completions are spaced exactly one service apart."""
    sim = Simulator()
    node = ProcessingNode(sim)
    completions = []
    for _ in arrivals:
        node.submit(cost, lambda: completions.append(sim.now))
    sim.run()
    gaps = [b - a for a, b in zip(completions, completions[1:])]
    assert all(abs(gap - cost) < 1e-9 for gap in gaps)
