"""The reliable at-least-once delivery stack of the timed overlay."""

import pytest

from repro.net.faults import BrokerCrash, FaultInjector, FaultPlan, LinkFault
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.siena.events import Event
from repro.siena.filters import Filter


def _overlay(reliability=None, plan=None, num_brokers=7, seed=0):
    sim = Simulator()
    injector = None
    if plan is not None:
        injector = FaultInjector(sim, plan, seed=seed + 1)
    net = SimulatedPubSub(
        sim,
        num_brokers,
        arity=2,
        reliability=reliability,
        faults=injector,
        seed=seed,
    )
    if injector is not None:
        injector.install()
    for index, leaf in enumerate(net.leaf_ids()):
        subscriber = f"s{index}"
        net.attach_subscriber(subscriber, leaf)
        net.subscribe(subscriber, Filter.topic("t"))
    return sim, net


def _publish_window(net, events, rate=50.0):
    for k in range(events):
        net.publish(Event({"topic": "t", "k": k}), delay=k / rate)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(ack_timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(miss_threshold=0)


def test_reliable_without_faults_matches_fire_and_forget():
    sim_a, plain = _overlay()
    _publish_window(plain, 20)
    sim_a.run()
    sim_b, reliable = _overlay(reliability=RetryPolicy())
    _publish_window(reliable, 20)
    sim_b.run(until=2.0)
    plain_trace = {(d.seq, d.subscriber_id) for d in plain.deliveries}
    reliable_trace = {(d.seq, d.subscriber_id) for d in reliable.deliveries}
    assert reliable_trace == plain_trace
    assert reliable.rstats.dead_letters == 0
    assert reliable.rstats.retries == 0
    assert reliable.rstats.duplicate_deliveries == 0


def test_link_loss_drops_fire_and_forget_but_not_reliable():
    plan = FaultPlan(link_faults=[LinkFault(loss=0.2)])
    sim_a, plain = _overlay(plan=plan, seed=5)
    _publish_window(plain, 40)
    sim_a.run()
    expected = 40 * len(plain.leaf_ids())
    assert len(plain.deliveries) < expected

    sim_b, reliable = _overlay(
        reliability=RetryPolicy(max_attempts=10), plan=plan, seed=5
    )
    _publish_window(reliable, 40)
    sim_b.run(until=8.0)
    assert reliable.rstats.dead_letters == 0
    assert len(reliable.deliveries) == expected
    # Lost acks forced retransmissions; dedup swallowed every duplicate.
    assert reliable.rstats.retries > 0
    assert reliable.rstats.duplicates_suppressed > 0
    assert reliable.rstats.duplicate_deliveries == 0


def test_retry_budget_dead_letters_on_partition():
    # Broker 6 is a leaf; its uplink (2 -- 6) partitions forever, so every
    # attempt is lost and the budget runs out.
    plan = FaultPlan(link_faults=[LinkFault(2, 6, partitioned=True)])
    policy = RetryPolicy(max_attempts=3, ack_timeout=0.02)
    sim, net = _overlay(reliability=policy, plan=plan)
    _publish_window(net, 5)
    sim.run(until=3.0)
    assert net.rstats.dead_letters == 5
    assert [seq for seq, _, _ in net.dead_letters] == list(range(5))
    assert all(
        (source, target) == (2, 6) for _, source, target in net.dead_letters
    )


def test_crash_detection_parking_and_recovery():
    # A long mid-run outage of broker 1 (an interior broker): the
    # detector must notice, park traffic, and flush after the restart.
    plan = FaultPlan(crashes=[BrokerCrash(1, at=0.5, duration=1.5)])
    policy = RetryPolicy(max_attempts=4, heartbeat_interval=0.1)
    sim, net = _overlay(reliability=policy, plan=plan)
    _publish_window(net, 60, rate=30.0)
    sim.run(until=6.0)
    stats = net.rstats
    assert stats.failures_detected > 0
    assert stats.recoveries_detected > 0
    assert stats.parked > 0
    assert stats.parked_flushes > 0
    assert stats.subscriptions_replayed > 0
    assert stats.mean_detection_latency() > 0
    assert stats.mean_recovery_latency() >= 0
    # At-least-once across the outage: everything is delivered exactly
    # once in the end, including events published while broker 1 was down.
    expected = 60 * len(net.leaf_ids())
    assert len(net.deliveries) == expected
    assert stats.duplicate_deliveries == 0


def test_fire_and_forget_loses_subscriptions_across_restart():
    plan = FaultPlan(crashes=[BrokerCrash(1, at=0.5, duration=0.3)])
    sim, net = _overlay(plan=plan)
    _publish_window(net, 60, rate=30.0)
    sim.run()
    expected = 60 * len(net.leaf_ids())
    # The restarted broker never recovers its routing state without the
    # reliability stack, so its subtree stays dark.
    assert len(net.deliveries) < 0.8 * expected


def test_restarted_broker_replays_client_subscriptions():
    # Broker 5 is a leaf with a locally attached subscriber; after its
    # restart the client re-subscribes and deliveries resume.
    plan = FaultPlan(crashes=[BrokerCrash(5, at=0.4, duration=0.4)])
    sim, net = _overlay(reliability=RetryPolicy(heartbeat_interval=0.1),
                        plan=plan)
    _publish_window(net, 40, rate=20.0)
    sim.run(until=6.0)
    home = {v: k for k, v in net._subscriber_home.items()}
    subscriber = home[5]
    delivered_to = [d for d in net.deliveries if d.subscriber_id == subscriber]
    assert len(delivered_to) == 40
