"""Seeded fault plans and their deterministic replay."""

import math

import pytest

from repro.net.faults import (
    ANY,
    BrokerCrash,
    FaultInjector,
    FaultPlan,
    LinkFault,
)
from repro.net.sim import Simulator


def test_broker_crash_restart_time():
    crash = BrokerCrash("b", at=2.0, duration=0.5)
    assert crash.restart_at == 2.5
    assert math.isinf(BrokerCrash("b", at=1.0).restart_at)


def test_link_fault_validation():
    with pytest.raises(ValueError):
        LinkFault(loss=1.5)
    with pytest.raises(ValueError):
        LinkFault(extra_latency=-0.1)
    with pytest.raises(ValueError):
        LinkFault(duration=-1.0)


def test_link_fault_matching():
    fault = LinkFault("a", "b", start=1.0, duration=2.0, loss=0.5)
    assert fault.active(1.0) and fault.active(2.9)
    assert not fault.active(0.9) and not fault.active(3.0)
    assert fault.applies("a", "b") and fault.applies("b", "a")
    assert not fault.applies("a", "c")
    wildcard = LinkFault(loss=0.1)
    assert wildcard.applies("x", "y")
    one_sided = LinkFault("a", ANY, loss=0.1)
    assert one_sided.applies("a", "z") and one_sided.applies("z", "a")
    assert not one_sided.applies("x", "y")


def test_random_plan_is_seed_deterministic():
    kwargs = dict(
        crash_probability=0.5, crash_duration=0.4, link_loss=0.05
    )
    first = FaultPlan.random(range(10), 5.0, seed=3, **kwargs)
    second = FaultPlan.random(range(10), 5.0, seed=3, **kwargs)
    other = FaultPlan.random(range(10), 5.0, seed=4, **kwargs)
    assert first.crashes == second.crashes
    assert first.link_faults == second.link_faults
    assert first.crashes != other.crashes


def test_random_plan_probability_extremes():
    none = FaultPlan.random(range(8), 5.0, seed=1, crash_probability=0.0)
    assert none.crashes == []
    everyone = FaultPlan.random(range(8), 5.0, seed=1, crash_probability=1.0)
    assert sorted(crash.broker for crash in everyone.crashes) == list(range(8))
    assert all(crash.at < 5.0 for crash in everyone.crashes)


def test_random_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan.random(range(3), 0.0, seed=1)
    with pytest.raises(ValueError):
        FaultPlan.random(range(3), 5.0, seed=1, crash_probability=2.0)


def test_downtime_accounting():
    plan = FaultPlan(
        crashes=[
            BrokerCrash("a", at=1.0, duration=2.0),
            BrokerCrash("b", at=9.0, duration=5.0),  # clipped at horizon
        ]
    )
    assert plan.downtime("a", 10.0) == pytest.approx(2.0)
    assert plan.downtime("b", 10.0) == pytest.approx(1.0)
    assert plan.downtime("c", 10.0) == 0.0
    assert plan.mean_down_fraction(["a", "b", "c"], 10.0) == pytest.approx(
        (2.0 + 1.0) / 30.0
    )


def test_injector_replays_crash_schedule():
    sim = Simulator()
    plan = FaultPlan(crashes=[BrokerCrash(4, at=1.0, duration=0.5)])
    injector = FaultInjector(sim, plan)
    observed = []
    injector.on_transition(lambda kind, broker: observed.append(
        (sim.now, kind, broker)
    ))
    injector.install()
    assert injector.broker_up(4)
    sim.run(until=0.99)
    assert injector.broker_up(4)
    sim.run(until=1.2)
    assert not injector.broker_up(4)
    sim.run(until=2.0)
    assert injector.broker_up(4)
    assert observed == [(1.0, "crash", 4), (1.5, "restart", 4)]
    assert injector.transitions == observed


def test_injector_install_once():
    sim = Simulator()
    injector = FaultInjector(sim, FaultPlan())
    injector.install()
    with pytest.raises(RuntimeError):
        injector.install()


def test_link_loss_composition_and_partition():
    sim = Simulator()
    plan = FaultPlan(
        link_faults=[
            LinkFault("a", "b", loss=0.5),
            LinkFault(loss=0.5),
            LinkFault("c", "d", partitioned=True),
            LinkFault("e", "f", extra_latency=0.2),
        ]
    )
    injector = FaultInjector(sim, plan)
    assert injector.link_loss("a", "b") == pytest.approx(0.75)
    assert injector.link_loss("x", "y") == pytest.approx(0.5)
    assert injector.link_loss("c", "d") == 1.0
    assert not injector.deliverable("c", "d")
    assert injector.extra_latency("e", "f") == pytest.approx(0.2)
    assert injector.extra_latency("a", "b") == 0.0


def test_deliverable_is_deterministic_and_frugal():
    sim = Simulator()
    lossless = FaultInjector(sim, FaultPlan(), seed=9)
    before = lossless.rng.getstate()
    assert all(lossless.deliverable("a", "b") for _ in range(50))
    # A clean link never consumes randomness: fault-free runs stay
    # byte-identical to runs without an injector at all.
    assert lossless.rng.getstate() == before

    plan = FaultPlan(link_faults=[LinkFault(loss=0.3)])
    draws_one = [
        FaultInjector(sim, plan, seed=9).deliverable("a", "b")
        for _ in range(1)
    ]
    first = FaultInjector(sim, plan, seed=9)
    second = FaultInjector(sim, plan, seed=9)
    outcomes_first = [first.deliverable("a", "b") for _ in range(200)]
    outcomes_second = [second.deliverable("a", "b") for _ in range(200)]
    assert outcomes_first == outcomes_second
    assert draws_one[0] == outcomes_first[0]
    assert 0 < sum(outcomes_first) < 200
