"""Property-based determinism invariants of the fault layer.

The whole point of a seeded :class:`FaultPlan` is reproducibility: two
runs with the same seed and the same plan must produce byte-identical
delivery traces, retry counts, and fault transitions -- otherwise chaos
experiments cannot be compared across configurations.
"""

from hypothesis import given, settings, strategies as st

from repro.net.faults import FaultInjector, FaultPlan
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.siena.events import Event
from repro.siena.filters import Filter


def _run_once(seed, reliable, events=12, num_brokers=7, horizon=2.0):
    sim = Simulator()
    plan = FaultPlan.random(
        range(1, num_brokers),
        horizon,
        seed=seed,
        crash_probability=0.4,
        crash_duration=0.3,
        link_loss=0.1,
    )
    injector = FaultInjector(sim, plan, seed=seed + 1)
    policy = RetryPolicy(max_attempts=4, heartbeat_interval=0.1)
    net = SimulatedPubSub(
        sim,
        num_brokers,
        arity=2,
        reliability=policy if reliable else None,
        faults=injector,
        seed=seed,
    )
    injector.install()
    for index, leaf in enumerate(net.leaf_ids()):
        subscriber = f"s{index}"
        net.attach_subscriber(subscriber, leaf)
        net.subscribe(subscriber, Filter.topic("t"))
    for k in range(events):
        net.publish(Event({"topic": "t", "k": k}), delay=k * horizon / events)
    sim.run(until=horizon + 2.0)
    trace = [
        (d.seq, d.subscriber_id, round(d.delivered_at, 12))
        for d in net.deliveries
    ]
    return trace, injector.transitions, net.rstats


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), reliable=st.booleans())
def test_same_seed_same_plan_identical_traces(seed, reliable):
    trace_a, transitions_a, stats_a = _run_once(seed, reliable)
    trace_b, transitions_b, stats_b = _run_once(seed, reliable)
    assert trace_a == trace_b
    assert transitions_a == transitions_b
    assert stats_a == stats_b


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_plans_differ_across_seeds_but_not_within(seed):
    kwargs = dict(crash_probability=0.5, crash_duration=0.2, link_loss=0.05)
    plan_a = FaultPlan.random(range(8), 4.0, seed=seed, **kwargs)
    plan_b = FaultPlan.random(range(8), 4.0, seed=seed, **kwargs)
    assert plan_a.crashes == plan_b.crashes
    assert plan_a.link_faults == plan_b.link_faults


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_injector_transitions_replay_the_plan(seed):
    sim = Simulator()
    plan = FaultPlan.random(
        range(6), 3.0, seed=seed, crash_probability=0.6, crash_duration=0.4
    )
    injector = FaultInjector(sim, plan, seed=seed)
    injector.install()
    sim.run(until=10.0)
    crashed = [b for _, kind, b in injector.transitions if kind == "crash"]
    restarted = [
        b for _, kind, b in injector.transitions if kind == "restart"
    ]
    assert sorted(crashed) == sorted(c.broker for c in plan.crashes)
    # Every planned finite outage ends in a restart.
    assert sorted(restarted) == sorted(crashed)
    assert all(injector.broker_up(b) for b in range(6))
