"""Processing nodes: FIFO service, backlog accounting, saturation."""

import pytest

from repro.net.node import ProcessingNode
from repro.net.sim import Simulator


def test_single_job_completes_after_cost():
    sim = Simulator()
    node = ProcessingNode(sim)
    done = []
    node.submit(0.5, lambda: done.append(sim.now))
    sim.run()
    assert done == [0.5]


def test_fifo_queueing():
    sim = Simulator()
    node = ProcessingNode(sim)
    done = []
    node.submit(1.0, lambda: done.append(("a", sim.now)))
    node.submit(1.0, lambda: done.append(("b", sim.now)))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_server_idles_between_arrivals():
    sim = Simulator()
    node = ProcessingNode(sim)
    done = []
    node.submit(0.5, lambda: done.append(sim.now))
    sim.schedule(2.0, lambda: node.submit(0.5, lambda: done.append(sim.now)))
    sim.run()
    assert done == [0.5, 2.5]


def test_negative_cost_rejected():
    node = ProcessingNode(Simulator())
    with pytest.raises(ValueError):
        node.submit(-1.0, lambda: None)


def test_outstanding_and_peak_backlog():
    sim = Simulator()
    node = ProcessingNode(sim)
    for _ in range(4):
        node.submit(1.0, lambda: None)
    assert node.outstanding == 4
    assert node.stats.peak_backlog == 4
    sim.run()
    assert node.outstanding == 0


def test_stats_after_completion():
    sim = Simulator()
    node = ProcessingNode(sim)
    node.submit(0.25, lambda: None)
    node.submit(0.75, lambda: None)
    sim.run()
    assert node.stats.messages_processed == 2
    assert node.stats.busy_time == pytest.approx(1.0)
    assert node.stats.work_submitted == pytest.approx(1.0)


def test_utilization():
    sim = Simulator()
    node = ProcessingNode(sim)
    node.submit(1.0, lambda: None)
    sim.run(until=4.0)
    assert node.utilization(4.0) == pytest.approx(0.25)
    assert node.utilization(0.0) == 0.0


def test_is_saturating_live_criterion():
    node = ProcessingNode(Simulator())
    node.stats.backlog_samples = [1, 2, 3, 4, 5, 6]
    assert node.is_saturating()
    node.stats.backlog_samples = [1, 2, 3, 3, 5, 6]
    assert not node.is_saturating()


def test_was_saturating_detects_drained_overload():
    node = ProcessingNode(Simulator())
    node.stats.backlog_samples = (
        [2, 4, 8, 12, 18, 24, 30, 36, 44, 50] + [20, 5, 0, 0]
    )
    assert node.was_saturating()


def test_was_saturating_ignores_transient_spike():
    node = ProcessingNode(Simulator())
    node.stats.backlog_samples = [0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0]
    assert not node.was_saturating()


def test_was_saturating_ignores_stable_low_backlog():
    node = ProcessingNode(Simulator())
    node.stats.backlog_samples = [1, 0, 2, 1, 0, 1, 2, 0, 1, 1, 0, 2]
    assert not node.was_saturating()


def test_demand_exceeds():
    sim = Simulator()
    node = ProcessingNode(sim)
    node.submit(3.0, lambda: None)
    assert node.demand_exceeds(2.0)
    assert not node.demand_exceeds(4.0)


def test_sample_backlog_records():
    sim = Simulator()
    node = ProcessingNode(sim)
    node.submit(1.0, lambda: None)
    assert node.sample_backlog() == 1
    assert node.stats.backlog_samples == [1]
