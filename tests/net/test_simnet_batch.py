"""Batched publication over the timed overlay.

A batch rides each broker-broker hop as ONE wire message on the
fire-and-forget transport; with the reliable stack active it splits into
per-event acknowledged transmissions so at-least-once semantics are
untouched.
"""

import pytest

from repro.net.faults import FaultInjector, FaultPlan, LinkFault
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.siena.events import Event
from repro.siena.filters import Filter


def _network(num_brokers=3, **kwargs):
    sim = Simulator()
    net = SimulatedPubSub(sim, num_brokers, **kwargs)
    return sim, net


def _events(count, topic="t"):
    return [Event({"topic": topic, "n": n}) for n in range(count)]


def test_batch_delivers_same_events_as_per_event_publishing():
    outcomes = []
    for batched in (False, True):
        sim, net = _network(7)
        leaves = net.leaf_ids()
        net.attach_subscriber("yes", leaves[0])
        net.attach_subscriber("no", leaves[1])
        net.subscribe("yes", Filter.topic("t"))
        net.subscribe("no", Filter.topic("other"))
        events = _events(5)
        if batched:
            net.publish(events)
        else:
            for event in events:
                net.publish(event)
        sim.run(until=1.0)
        outcomes.append(
            sorted((d.subscriber_id, d.seq) for d in net.deliveries)
        )
    assert outcomes[0] == outcomes[1]
    assert len(outcomes[1]) == 5  # all to "yes", none to "no"


def test_batch_hop_is_one_wire_message():
    sim, net = _network(3)
    net.attach_subscriber("s", net.leaf_ids()[0])
    net.subscribe("s", Filter.topic("t"))
    net.publish(_events(8))
    sim.run(until=1.0)
    assert len(net.deliveries) == 8
    # One batched send root->leaf instead of eight per-event sends.
    assert net.rstats.batch_sends == 1
    assert net.rstats.data_sends == 1


def test_batch_uses_fewer_sends_than_per_event():
    sends = {}
    for batched in (False, True):
        sim, net = _network(7)
        for index, leaf in enumerate(net.leaf_ids()):
            net.attach_subscriber(f"s{index}", leaf)
            net.subscribe(f"s{index}", Filter.topic("t"))
        if batched:
            net.publish(_events(10))
        else:
            for event in _events(10):
                net.publish(event)
        sim.run(until=1.0)
        assert len(net.deliveries) == 40
        sends[batched] = net.rstats.data_sends
    assert sends[True] < sends[False]


def test_batch_latency_matches_link_budget():
    sim, net = _network(3, link_latency=0.050, client_latency=0.005)
    net.attach_subscriber("s", net.leaf_ids()[0])
    net.subscribe("s", Filter.topic("t"))
    net.publish(_events(3), delay=0.25)
    sim.run(until=1.0)
    assert len(net.deliveries) == 3
    for record in net.deliveries:
        assert record.published_at == pytest.approx(0.25)
        # root -> leaf link + client link, same as the per-event path.
        assert record.latency == pytest.approx(0.055)


def test_reliable_overlay_splits_batches_per_event():
    sim, net = _network(3, reliability=RetryPolicy())
    net.attach_subscriber("s", net.leaf_ids()[0])
    net.subscribe("s", Filter.topic("t"))
    net.publish(_events(4))
    sim.run(until=2.0)
    assert len(net.deliveries) == 4
    # Acks are per sequence number, so no batched wire messages appear.
    assert net.rstats.batch_sends == 0
    assert net.rstats.data_sends >= 4
    assert net.rstats.acks_sent >= 4


def test_reliable_batch_survives_lossy_link():
    """At-least-once holds for batch-published events under loss."""
    sim = Simulator()
    plan = FaultPlan(link_faults=[LinkFault(0, 1, loss=0.4)])
    net = SimulatedPubSub(
        sim,
        3,
        reliability=RetryPolicy(ack_timeout=0.05, jitter=0.0),
        faults=FaultInjector(sim, plan, seed=5),
        seed=5,
    )
    net.attach_subscriber("s", 1)
    net.subscribe("s", Filter.topic("t"))
    net.publish(_events(6))
    sim.run(until=5.0)
    delivered = {d.seq for d in net.deliveries}
    assert len(delivered) == 6
    assert net.rstats.retries > 0


def test_batch_carriers_ride_along():
    sim, net = _network(1)
    net.attach_subscriber("s", 0)
    net.subscribe("s", Filter.topic("t"))
    carriers = [{"sealed": n} for n in range(3)]
    seqs = net.publish(_events(3), carrier=carriers)
    assert [net.carrier_of(seq) for seq in seqs] == carriers


def test_batch_rejects_mismatched_parallel_lists():
    _, net = _network(1)
    with pytest.raises(ValueError):
        net.publish(_events(2), carrier=[None])
    with pytest.raises(ValueError):
        net.publish(_events(2), size=[10])
