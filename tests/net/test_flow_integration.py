"""Overload protection threaded through the timed overlay.

These drive :class:`SimulatedPubSub` with a flow policy under real
overload (offered rate above the root broker's service capacity) and
check the tentpole invariants end to end: bounded queues, protected
high-priority delivery, credit conservation, and backpressure against a
slowed-down interior broker.
"""

import pytest

from repro.flow import (
    BEST_EFFORT,
    HIGH,
    FlowControlPolicy,
    with_priority,
)
from repro.net.faults import BrokerSlowdown, FaultInjector, FaultPlan
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.siena.events import Event
from repro.siena.filters import Filter


def _overlay(sim, flow, reliable=False, faults=None, broker_cost=0.001):
    net = SimulatedPubSub(
        sim,
        num_brokers=3,
        arity=2,
        link_latency=0.002,
        client_latency=0.0005,
        broker_cost=lambda _b, _e: broker_cost,
        reliability=RetryPolicy(heartbeat_interval=0.5) if reliable else None,
        faults=faults,
        flow=flow,
        seed=3,
    )
    for index, leaf in enumerate(net.leaf_ids()):
        subscriber = f"s{index}"
        net.attach_subscriber(subscriber, leaf)
        net.subscribe(subscriber, Filter.topic("t"))
    return net


def _storm(net, events=120, interval=0.0002, high_every=10):
    """Publish a storm well above the 1/broker_cost capacity."""
    high_seqs, low_seqs = [], []
    for k in range(events):
        event = Event({"topic": "t", "k": k})
        if k % high_every == 0:
            seq = net.publish(with_priority(event, HIGH), delay=k * interval)
            high_seqs.append(seq)
        else:
            seq = net.publish(
                with_priority(event, BEST_EFFORT), delay=k * interval
            )
            low_seqs.append(seq)
    return high_seqs, low_seqs


def _delivered_seqs(net):
    return {record.seq for record in net.deliveries}


def test_queues_stay_bounded_and_high_priority_survives_storm():
    sim = Simulator()
    policy = FlowControlPolicy(queue_capacity=8, credit_window=4)
    net = _overlay(sim, policy)
    high_seqs, low_seqs = _storm(net)
    sim.run(until=5.0)

    capacity = policy.queue_capacity
    assert net.flow_peak_depths(), "flow state should exist"
    assert all(
        depth <= capacity for depth in net.flow_peak_depths().values()
    )
    assert all(
        depth <= capacity
        for depth in net.flow_egress_peak_depths().values()
    )
    # The CPU backlog collapsed into the explicit bounded queue: the
    # pump keeps at most one data job (plus completion) outstanding.
    assert net.nodes[0].stats.peak_backlog <= 4

    delivered = _delivered_seqs(net)
    # Every high-priority event reached both subscribers.
    for seq in high_seqs:
        assert seq in delivered
    high_deliveries = [
        r for r in net.deliveries if r.seq in set(high_seqs)
    ]
    assert len(high_deliveries) == 2 * len(high_seqs)
    # The storm genuinely overloaded the overlay: best-effort was shed.
    assert net.shed_events > 0
    assert not all(seq in delivered for seq in low_seqs)


def test_no_credit_leak_after_storm():
    sim = Simulator()
    policy = FlowControlPolicy(queue_capacity=8, credit_window=4)
    net = _overlay(sim, policy)
    _storm(net)
    sim.run(until=5.0)
    for (from_id, to_id), lf in net._link_flow.items():
        assert lf.gate.available == lf.gate.window, (
            f"link {from_id}->{to_id} leaked "
            f"{lf.gate.window - lf.gate.available} credits"
        )
    assert not net._credit_held


def test_post_storm_recovery_to_steady_state():
    sim = Simulator()
    policy = FlowControlPolicy(queue_capacity=8, credit_window=4)
    net = _overlay(sim, policy)
    _storm(net, events=100)
    sim.run(until=3.0)
    # Queues drained after the storm.
    assert all(depth == 0 for depth in _live_depths(net))
    # Steady-state traffic (below capacity) now delivers fully: the
    # breaker probes half-open on the first admit and closes once the
    # queue stays at the low watermark.
    seqs = [
        net.publish(
            with_priority(Event({"topic": "t", "k": 1000 + k}), BEST_EFFORT),
            delay=k * 0.005,
        )
        for k in range(50)
    ]
    sim.run(until=6.0)
    delivered = _delivered_seqs(net)
    assert all(seq in delivered for seq in seqs)
    assert net.breaker_state(0) == "closed"


def _live_depths(net):
    return [len(bf.ingress) for bf in net._broker_flow.values()]


def test_slow_broker_backpressures_instead_of_queueing():
    sim = Simulator()
    plan = FaultPlan(
        slowdowns=[BrokerSlowdown(broker=1, start=0.0, factor=8.0)]
    )
    injector = FaultInjector(sim, plan, seed=1)
    policy = FlowControlPolicy(queue_capacity=8, credit_window=4)
    net = _overlay(sim, policy, faults=injector, broker_cost=0.0005)
    injector.install()
    high_seqs, _low = _storm(net, events=100, interval=0.001)
    sim.run(until=5.0)
    stalls, stall_seconds = net.flow_credit_stalls()
    # The root ran out of credits toward the slow child and stalled.
    assert stalls > 0
    assert stall_seconds > 0.0
    assert all(
        depth <= policy.queue_capacity
        for depth in net.flow_peak_depths().values()
    )
    # High-priority delivery still complete on the healthy subtree and
    # the slow one (strict priority service + per-link credits).
    delivered = _delivered_seqs(net)
    assert all(seq in delivered for seq in high_seqs)


def test_reliable_stack_composes_with_flow():
    sim = Simulator()
    policy = FlowControlPolicy(queue_capacity=16, credit_window=8)
    net = _overlay(sim, policy, reliable=True)
    high_seqs, low_seqs = _storm(net, events=60, interval=0.0005)
    sim.run(until=5.0)
    delivered = _delivered_seqs(net)
    assert all(seq in delivered for seq in high_seqs)
    assert all(
        depth <= policy.queue_capacity
        for depth in net.flow_peak_depths().values()
    )
    # Acks + dedup + credits settle: nothing left holding a credit.
    assert not net._credit_held
    # No duplicate deliveries sneak in via retries under flow control.
    keys = [(r.seq, r.subscriber_id) for r in net.deliveries]
    assert len(keys) == len(set(keys))


def test_shed_listener_sees_admission_overload():
    sim = Simulator()
    policy = FlowControlPolicy(queue_capacity=4, credit_window=2)
    net = _overlay(sim, policy)
    sheds = []
    net.on_shed(lambda priority, stage, broker: sheds.append(stage))
    _storm(net, events=80)
    sim.run(until=3.0)
    assert sheds, "storm should trigger shed notifications"
    assert net.shed_events == len(sheds)


def test_per_priority_delivery_histograms_emitted():
    sim = Simulator()
    policy = FlowControlPolicy(queue_capacity=8, credit_window=4)
    net = _overlay(sim, policy)
    _storm(net, events=40, interval=0.002)  # below capacity: no sheds
    sim.run(until=3.0)
    high = net.registry.get(
        "net_delivery_latency_seconds", priority="high"
    )
    best = net.registry.get(
        "net_delivery_latency_seconds", priority="best-effort"
    )
    assert high is not None and high.count > 0
    assert best is not None and best.count > 0


def test_parked_buffer_is_deque_with_oldest_first_eviction():
    """Satellite: the bounded retransmit parking buffer must evict its
    oldest entry in O(1) (a deque, not a list with pop(0))."""
    from collections import deque

    sim = Simulator()
    net = SimulatedPubSub(
        sim,
        num_brokers=3,
        reliability=RetryPolicy(),
        park_limit=5,
        seed=0,
    )
    net._neighbor_down.add((0, 1))
    for k in range(9):
        event = Event({"topic": "t", "k": k}).with_attributes(_seq=k)
        net._park(0, 1, k, event)
    queue = net._parked[(0, 1)]
    assert isinstance(queue, deque)
    assert len(queue) == 5
    # Oldest entries (0..3) were evicted; 4..8 remain in order.
    assert [seq for seq, _ in queue] == [4, 5, 6, 7, 8]
    assert net.rstats.parked == 9
    assert net.rstats.retx_evicted == 4
