"""Control-plane request/response messaging under faults."""

from repro.net.faults import ANY, BrokerCrash, FaultInjector, FaultPlan, LinkFault
from repro.net.service import ServiceNetwork
from repro.net.sim import Simulator


def _echo_network(faults=None, latency=0.01):
    sim = Simulator()
    net = ServiceNetwork(sim, faults, latency=latency)
    net.register("server", lambda src, payload: ("echo", payload))
    return sim, net


def test_request_reply_round_trip():
    sim, net = _echo_network()
    replies = []
    net.request("client", "server", 42, on_reply=replies.append)
    sim.run()
    assert replies == [("echo", 42)]
    assert sim.now == 0.02  # one RTT at 0.01 each way
    assert net.stats.requests_delivered == 1
    assert net.stats.replies_delivered == 1


def test_handler_returning_none_suppresses_reply():
    sim = Simulator()
    net = ServiceNetwork(sim, latency=0.01)
    net.register("server", lambda src, payload: None)
    replies = []
    net.request("client", "server", 1, on_reply=replies.append)
    sim.run()
    assert replies == []
    assert net.stats.replies_sent == 0


def test_unregistered_destination_is_silent_loss():
    sim = Simulator()
    net = ServiceNetwork(sim, latency=0.01)
    replies = []
    net.request("client", "ghost", 1, on_reply=replies.append)
    sim.run()
    assert replies == []
    assert net.stats.lost == 1


def test_crashed_node_swallows_requests_then_recovers():
    sim = Simulator()
    plan = FaultPlan(crashes=[BrokerCrash("server", at=0.0, duration=1.0)])
    faults = FaultInjector(sim, plan, seed=1)
    net = ServiceNetwork(sim, faults, latency=0.01)
    net.register("server", lambda src, payload: payload)
    faults.install()
    replies = []
    net.request("client", "server", "early", on_reply=replies.append)
    sim.schedule(2.0, lambda: net.request(
        "client", "server", "late", on_reply=replies.append
    ))
    sim.run()
    assert replies == ["late"]
    assert net.stats.lost == 1


def test_partition_blocks_both_directions():
    sim = Simulator()
    plan = FaultPlan(link_faults=[
        LinkFault(ANY, "server", start=0.0, duration=1.0, partitioned=True)
    ])
    faults = FaultInjector(sim, plan, seed=1)
    net = ServiceNetwork(sim, faults, latency=0.01)
    net.register("server", lambda src, payload: payload)
    replies = []
    net.request("client", "server", "cut", on_reply=replies.append)
    sim.schedule(1.5, lambda: net.request(
        "client", "server", "healed", on_reply=replies.append
    ))
    sim.run()
    assert replies == ["healed"]


def test_reply_can_be_lost_after_handler_ran():
    """A lossy link can deliver the request but drop the reply -- the
    handler side effect happens, the caller sees silence."""
    sim = Simulator()
    plan = FaultPlan(link_faults=[LinkFault(loss=0.5)])
    faults = FaultInjector(sim, plan, seed=3)
    net = ServiceNetwork(sim, faults, latency=0.01)
    served = []
    net.register("server", lambda src, payload: served.append(payload) or "ok")
    replies = []
    for k in range(40):
        sim.schedule(k * 0.1, lambda k=k: net.request(
            "client", "server", k, on_reply=replies.append
        ))
    sim.run()
    assert len(served) < 40  # some requests lost outright
    assert len(replies) < len(served)  # and some replies lost after serving


def test_extra_latency_applies_per_direction():
    sim = Simulator()
    plan = FaultPlan(link_faults=[LinkFault(extra_latency=0.1)])
    faults = FaultInjector(sim, plan, seed=1)
    net = ServiceNetwork(sim, faults, latency=0.01)
    net.register("server", lambda src, payload: payload)
    replies = []
    net.request("client", "server", 1, on_reply=replies.append)
    sim.run()
    assert replies == [1]
    assert sim.now == 0.22  # (0.01 + 0.1) each way


def test_duplicate_registration_rejected():
    import pytest

    sim = Simulator()
    net = ServiceNetwork(sim)
    net.register("a", lambda src, payload: None)
    with pytest.raises(ValueError):
        net.register("a", lambda src, payload: None)


def test_callable_latency():
    sim = Simulator()
    net = ServiceNetwork(sim, latency=lambda src, dst: 0.5)
    net.register("server", lambda src, payload: payload)
    replies = []
    net.request("client", "server", "slow", on_reply=replies.append)
    sim.run()
    assert replies == ["slow"]
    assert sim.now == 1.0
