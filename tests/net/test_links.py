"""Latency links."""

import pytest

from repro.net.links import Link
from repro.net.sim import Simulator


def test_delivery_after_latency():
    sim = Simulator()
    link = Link(sim, latency=0.075)
    arrivals = []
    link.send(100, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [0.075]


def test_bandwidth_adds_serialization_delay():
    sim = Simulator()
    link = Link(sim, latency=0.010, bandwidth_bytes_per_s=1000.0)
    arrivals = []
    link.send(500, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(0.510)]


def test_transfer_time_without_bandwidth():
    link = Link(Simulator(), latency=0.02)
    assert link.transfer_time(10_000) == 0.02


def test_stats_accumulate():
    sim = Simulator()
    link = Link(sim, latency=0.01)
    link.send(100, lambda: None)
    link.send(200, lambda: None)
    assert link.stats.messages == 2
    assert link.stats.bytes == 300


def test_messages_can_overlap_in_flight():
    """A latency link is a pipe, not a server: sends don't queue."""
    sim = Simulator()
    link = Link(sim, latency=1.0)
    arrivals = []
    link.send(1, lambda: arrivals.append(sim.now))
    sim.schedule(0.5, lambda: link.send(1, lambda: arrivals.append(sim.now)))
    sim.run()
    assert arrivals == [1.0, 1.5]


def test_invalid_parameters():
    with pytest.raises(ValueError):
        Link(Simulator(), latency=-1.0)
    with pytest.raises(ValueError):
        Link(Simulator(), latency=0.1, bandwidth_bytes_per_s=0.0)
