"""Run the doctests embedded in public-API docstrings."""

import doctest

import pytest

import repro.core.kdc
import repro.core.ktid
import repro.core.nakt
import repro.core.publisher
import repro.crypto.aes
import repro.crypto.hashes
import repro.engine.engine
import repro.flow.admission
import repro.flow.aimd
import repro.flow.breaker
import repro.flow.credit
import repro.flow.queues
import repro.recovery.dedup
import repro.siena.network
import repro.siena.p2p
import repro.workloads.zipf

MODULES = [
    repro.core.kdc,
    repro.core.ktid,
    repro.core.nakt,
    repro.core.publisher,
    repro.crypto.aes,
    repro.crypto.hashes,
    repro.engine.engine,
    repro.flow.admission,
    repro.flow.aimd,
    repro.flow.breaker,
    repro.flow.credit,
    repro.flow.queues,
    repro.recovery.dedup,
    repro.siena.network,
    repro.siena.p2p,
    repro.workloads.zipf,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module)
    assert results.attempted > 0, "expected at least one doctest"
    assert results.failed == 0, f"{results.failed} doctest failures"
