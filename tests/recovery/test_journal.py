"""The durable broker journal: WAL, snapshots, in-flight ring."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.recovery.journal import BrokerJournal, JournalStore
from repro.siena.events import Event
from repro.siena.filters import Filter


def _filters(n):
    return [Filter.topic(f"t{i}") for i in range(n)]


def test_replay_reconstructs_subscriptions_in_order():
    journal = BrokerJournal("b1")
    f1, f2, f3 = _filters(3)
    journal.log_subscribe("sub0", f1)
    journal.log_subscribe("child3", f2)
    journal.log_subscribe("sub0", f3)
    journal.log_unsubscribe("child3", f2)
    state = journal.replay()
    assert state.subscriptions == [("sub0", f1), ("sub0", f3)]
    assert journal.replays == 1


def test_replay_reconstructs_the_covering_set():
    journal = BrokerJournal("b1")
    f1, f2 = _filters(2)
    journal.log_forwarded(f1)
    journal.log_forwarded(f2)
    journal.log_unforwarded(f1)
    assert journal.replay().forwarded_upstream == [f2]


def test_duplicate_records_fold_idempotently():
    journal = BrokerJournal("b1")
    (f1,) = _filters(1)
    journal.log_subscribe("sub0", f1)
    journal.log_subscribe("sub0", f1)
    journal.log_unsubscribe("sub0", f1)
    journal.log_unsubscribe("sub0", f1)
    assert journal.replay().subscriptions == []


def test_compaction_truncates_the_wal_without_losing_state():
    journal = BrokerJournal("b1", snapshot_every=4)
    filters = _filters(10)
    for index, flt in enumerate(filters):
        journal.log_subscribe(f"if{index}", flt)
    assert journal.snapshots_taken >= 2
    assert journal.wal_length < 4
    state = journal.replay()
    assert [flt for _, flt in state.subscriptions] == filters


def test_unsubscribe_after_compaction_still_applies():
    journal = BrokerJournal("b1", snapshot_every=2)
    f1, f2, f3 = _filters(3)
    journal.log_subscribe("a", f1)
    journal.log_subscribe("a", f2)  # snapshot taken here
    journal.log_unsubscribe("a", f1)
    journal.log_subscribe("a", f3)
    state = journal.replay()
    assert state.subscriptions == [("a", f2), ("a", f3)]


def test_inflight_ring_tracks_until_marked_done():
    journal = BrokerJournal("b1")
    e0, e1 = Event({"topic": "t", "k": 0}), Event({"topic": "t", "k": 1})
    journal.log_event(0, e0)
    journal.log_event(1, e1)
    journal.mark_done(0)
    assert journal.inflight_events() == [(1, e1)]
    assert journal.replay().inflight == [(1, e1)]
    journal.mark_done(1)
    journal.mark_done(1)  # idempotent
    assert journal.inflight_events() == []


def test_inflight_ring_evicts_oldest_at_capacity():
    journal = BrokerJournal("b1", inflight_capacity=3)
    for seq in range(5):
        journal.log_event(seq, Event({"topic": "t", "k": seq}))
    assert journal.inflight_evicted == 2
    assert [seq for seq, _ in journal.inflight_events()] == [2, 3, 4]


def test_registry_counters_labelled_by_broker():
    registry = MetricsRegistry()
    journal = BrokerJournal("b7", snapshot_every=2, registry=registry)
    f1, f2 = _filters(2)
    journal.log_subscribe("a", f1)
    journal.log_subscribe("a", f2)
    journal.replay()
    assert registry.total("journal_records_total") == 2
    assert registry.total("journal_snapshots_total") == 1
    assert registry.total("journal_replays_total") == 1
    (series,) = registry.series("journal_records_total")
    assert dict(series.labels)["broker"] == "b7"


def test_store_creates_on_demand_and_aggregates():
    store = JournalStore(snapshot_every=8)
    assert "b1" not in store
    journal = store.journal_for("b1")
    assert journal is store.journal_for("b1")
    assert "b1" in store and list(store) == ["b1"]
    (f1,) = _filters(1)
    journal.log_subscribe("a", f1)
    store.journal_for("b2").log_forwarded(f1)
    assert store.total_records() == 2


@pytest.mark.parametrize(
    "kwargs", [{"snapshot_every": 0}, {"inflight_capacity": 0}]
)
def test_degenerate_bounds_rejected(kwargs):
    with pytest.raises(ValueError):
        BrokerJournal("b", **kwargs)
