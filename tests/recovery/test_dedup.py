"""The bounded exactly-once filter: every suppression direction."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.recovery.dedup import DedupWindow


def test_fresh_pairs_accepted_duplicates_suppressed():
    window = DedupWindow(window=8)
    assert window.seen("p", 0) is False
    assert window.seen("p", 1) is False
    assert window.seen("p", 0) is True
    assert window.seen("p", 1) is True
    assert window.accepted == 2
    assert window.suppressed == 2
    assert window.suppressed_total() == 2


def test_sources_are_independent():
    window = DedupWindow(window=8)
    assert window.seen("p", 3) is False
    assert window.seen("q", 3) is False
    assert window.seen("p", 3) is True
    assert window.seen("q", 3) is True
    assert len(window) == 2


def test_out_of_order_within_window_is_tracked_precisely():
    window = DedupWindow(window=16)
    for seq in (5, 2, 9, 0, 7):
        assert window.seen("p", seq) is False
    for seq in (5, 2, 9, 0, 7):
        assert window.seen("p", seq) is True
    assert window.seen("p", 1) is False  # gap fill, still in window


def test_stragglers_behind_the_window_are_suppressed_as_stale():
    window = DedupWindow(window=4)
    for seq in range(10):
        window.seen("p", seq)
    # seq 3 fell behind max(9) - window(4) = 5: suppressed even though
    # it was never re-sent -- the documented bounded-memory trade-off.
    assert window.seen("p", 3) is True
    assert window.suppressed_stale == 1
    assert window.suppressed_total() == 1


def test_window_bounds_per_source_memory():
    window = DedupWindow(window=8)
    for seq in range(1000):
        window.seen("p", seq)
    assert window.tracked("p") <= 8 + 1


def test_lru_source_eviction_is_bounded_and_counted():
    window = DedupWindow(window=4, max_sources=2)
    window.seen("a", 0)
    window.seen("b", 0)
    window.seen("a", 1)  # refresh a; b becomes LRU
    window.seen("c", 0)  # evicts b
    assert len(window) == 2
    assert window.sources_evicted == 1
    # The evicted source lost its history: its old pair reads as fresh.
    assert window.seen("b", 0) is False


def test_registry_counters_export_suppressions():
    registry = MetricsRegistry()
    window = DedupWindow(window=4, max_sources=1, registry=registry)
    window.seen("p", 0)
    window.seen("p", 0)
    window.seen("q", 0)  # evicts p
    assert registry.total("dedup_suppressed_total") == 1
    assert registry.total("dedup_sources_evicted_total") == 1


@pytest.mark.parametrize("kwargs", [{"window": 0}, {"max_sources": 0}])
def test_degenerate_bounds_rejected(kwargs):
    with pytest.raises(ValueError):
        DedupWindow(**kwargs)
