"""Tree repair on the live overlay: adoption, re-homing, salvage.

Every test drives a real :class:`SimulatedPubSub` (seeded, deterministic)
with permanent :class:`BrokerCrash` faults and asserts on the repair
coordinator's records plus the delivery stream -- not on internals of the
surgery.  Fast heartbeats (0.1s) keep detection ~0.3-0.4s so a whole
scenario fits in a few simulated seconds.
"""

import math

import pytest

from repro.net.faults import BrokerCrash, FaultInjector, FaultPlan, PartitionFault
from repro.net.sim import Simulator
from repro.net.simnet import RetryPolicy, SimulatedPubSub
from repro.obs import Observability
from repro.recovery import JournalStore, RepairPolicy
from repro.siena.events import Event
from repro.siena.filters import Filter

_RETRY = RetryPolicy(heartbeat_interval=0.1)


def _overlay(plan, num_brokers=15, repair_after=0.3, journals=True, seed=5):
    obs = Observability()
    sim = Simulator()
    injector = FaultInjector(sim, plan, seed=seed)
    net = SimulatedPubSub(
        sim,
        num_brokers,
        arity=2,
        reliability=RetryPolicy(**vars(_RETRY)),
        faults=injector,
        seed=seed + 1,
        obs=obs,
        journals=JournalStore(registry=obs.registry) if journals else None,
        repair=RepairPolicy(repair_after=repair_after),
        dedup_window=1024,
    )
    injector.install()
    return sim, net


def _subscribe_leaves(net, topic="t"):
    subscription = Filter.topic(topic)
    subscribers = []
    for index, leaf in enumerate(net.leaf_ids()):
        subscriber_id = f"sub{index}"
        net.attach_subscriber(subscriber_id, leaf)
        net.subscribe(subscriber_id, subscription)
        subscribers.append(subscriber_id)
    return subscribers


def _publish(net, count, rate=40.0, topic="t"):
    for k in range(count):
        net.publish(Event({"topic": topic, "k": k}), delay=k / rate)


def test_permanent_kill_reparents_orphans_to_live_ancestor():
    plan = FaultPlan(crashes=[BrokerCrash(1, at=0.8)])  # never restarts
    sim, net = _overlay(plan)
    subscribers = _subscribe_leaves(net)
    _publish(net, 120, rate=40.0)  # 3s of publishing
    sim.run(until=6.0)
    (record,) = net.repair.records
    assert record.dead == 1
    assert record.adopter == 0  # the root is broker 1's parent
    assert record.orphans == 2  # children 3 and 4 adopted
    assert record.converged
    # The orphans now hang off the adopter and routing reconverged:
    assert net.brokers[3].parent == 0 and net.brokers[4].parent == 0
    assert 3 in net.brokers[0].children and 4 in net.brokers[0].children
    # Every subscriber saw every event, exactly once.
    assert len(net.deliveries) == 120 * len(subscribers)
    keys = [(d.seq, d.subscriber_id) for d in net.deliveries]
    assert len(keys) == len(set(keys))


def test_repair_rehomes_clients_of_the_dead_broker():
    plan = FaultPlan(crashes=[BrokerCrash(1, at=0.8)])
    sim, net = _overlay(plan)
    net.attach_subscriber("edge", 1)  # directly on the doomed broker
    net.subscribe("edge", Filter.topic("t"))
    _publish(net, 120, rate=40.0)
    sim.run(until=6.0)
    (record,) = net.repair.records
    assert record.clients_rehomed == 1
    assert net.rstats.failures_detected >= 1
    # The re-homed client keeps receiving events published well after
    # the crash, through the adopter.
    late = [
        d for d in net.deliveries
        if d.subscriber_id == "edge" and d.published_at > 2.0
    ]
    assert late
    keys = [(d.seq, d.subscriber_id) for d in net.deliveries]
    assert len(keys) == len(set(keys))


def test_repair_without_live_ancestor_is_recorded_as_failed():
    # Root and broker 1 both die: broker 1's ancestor chain is dead, so
    # its repair cannot find an adopter.
    plan = FaultPlan(
        crashes=[BrokerCrash(0, at=0.5), BrokerCrash(1, at=0.5)]
    )
    sim, net = _overlay(plan)
    _subscribe_leaves(net)
    sim.run(until=4.0)
    failed = [r for r in net.repair.records if not r.converged]
    assert failed
    assert all(record.adopter is None for record in failed)
    assert not net.repair.converged()
    assert net.registry.total("recovery_failed_total") >= 1


def test_partitioned_live_broker_is_never_excised():
    # Subtree (1, 3, 4) is partitioned off for 1.5s -- long enough for
    # the repair timer -- but everyone stays alive.
    plan = FaultPlan(
        partitions=[PartitionFault(group=(1, 3, 4), start=0.5, duration=1.5)]
    )
    sim, net = _overlay(plan, num_brokers=7)
    subscribers = _subscribe_leaves(net)
    _publish(net, 120, rate=40.0)
    sim.run(until=7.0)
    assert net.repair.false_alarms >= 1
    assert net.repair.records == []  # probe refused the surgery
    assert net.brokers[1].parent == 0  # topology untouched
    assert net.brokers[1].alive
    # Parked traffic flushed once the partition healed: full delivery.
    assert len(net.deliveries) == 120 * len(subscribers)
    keys = [(d.seq, d.subscriber_id) for d in net.deliveries]
    assert len(keys) == len(set(keys))


def test_convergence_time_measured_from_the_crash_instant():
    plan = FaultPlan(crashes=[BrokerCrash(6, at=1.0)])
    sim, net = _overlay(plan)
    _subscribe_leaves(net)
    _publish(net, 80, rate=40.0)
    sim.run(until=6.0)
    (record,) = net.repair.records
    assert record.crash_at == pytest.approx(1.0)
    assert record.completed_at > record.detected_at > record.crash_at
    assert record.convergence_time == pytest.approx(
        record.completed_at - 1.0
    )
    # Detection (~0.3-0.4s) + repair_after (0.3s) bound the latency.
    assert 0.3 < record.convergence_time < 2.0
    assert net.repair.max_convergence_time() == record.convergence_time
    assert math.isfinite(net.repair.max_convergence_time())
    series = net.registry.series("recovery_convergence_seconds")
    assert series and series[0].count == 1


def test_salvage_replays_journaled_inflight_through_the_adopter():
    plan = FaultPlan(crashes=[BrokerCrash(1, at=1.0)])
    sim, net = _overlay(plan)
    subscribers = _subscribe_leaves(net)
    _publish(net, 120, rate=60.0)  # 2s of publishing across the crash
    sim.run(until=6.0)
    (record,) = net.repair.records
    assert record.converged
    # Whatever was caught inside broker 1 came back via its journal; the
    # dedup layers kept the replays invisible end to end.
    assert record.inflight_replayed == net.rstats.events_salvaged
    assert len(net.deliveries) == 120 * len(subscribers)
    keys = [(d.seq, d.subscriber_id) for d in net.deliveries]
    assert len(keys) == len(set(keys))


def test_repair_requires_the_reliable_stack():
    sim = Simulator()
    with pytest.raises(ValueError):
        SimulatedPubSub(
            sim, 7, reliability=None, repair=RepairPolicy()
        )


def test_repair_policy_validates():
    with pytest.raises(ValueError):
        RepairPolicy(repair_after=0.0)
