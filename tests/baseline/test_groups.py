"""Interval-group key management baseline."""

import pytest

from repro.baseline.groups import GroupKeyServer


def test_first_join_creates_one_group():
    server = GroupKeyServer(100)
    cost = server.join("S1", 20, 30)
    assert server.key_count() == 1
    assert server.keys_of("S1") == 1
    assert cost.key_generations == 1
    assert cost.keys_to_new_subscriber == 1
    assert cost.keys_to_existing_subscribers == 0


def test_paper_overlap_example():
    """Section 3.2.1: S1 (20,30) then S2 (25,40) yields three groups."""
    server = GroupKeyServer(100)
    server.join("S1", 20, 30)
    cost = server.join("S2", 25, 40)
    assert server.key_count() == 3
    assert server.keys_of("S1") == 2   # (20,24) and (25,30)
    assert server.keys_of("S2") == 2   # (25,30) and (31,40)
    # S1 must be re-keyed for the shared interval.
    assert cost.keys_to_existing_subscribers == 1
    assert cost.subscribers_updated == 1


def test_disjoint_joins_do_not_interact():
    server = GroupKeyServer(100)
    server.join("S1", 0, 10)
    cost = server.join("S2", 50, 60)
    assert cost.keys_to_existing_subscribers == 0
    assert server.key_count() == 2


def test_nested_subscription_splits_outer():
    server = GroupKeyServer(100)
    server.join("outer", 0, 99)
    server.join("inner", 40, 60)
    assert server.keys_of("outer") == 3
    assert server.keys_of("inner") == 1


def test_identical_ranges_share_groups():
    server = GroupKeyServer(100)
    server.join("S1", 10, 20)
    cost = server.join("S2", 10, 20)
    assert server.key_count() == 1
    assert cost.keys_to_existing_subscribers == 1


def test_rekey_on_membership_change_rotates_key():
    server = GroupKeyServer(100)
    server.join("S1", 10, 20)
    old_key = server.intervals[0].key
    server.join("S2", 10, 20)
    assert server.intervals[0].key != old_key


def test_join_cost_properties():
    server = GroupKeyServer(100)
    server.join("S1", 0, 50)
    cost = server.join("S2", 25, 75)
    assert cost.messages == (
        cost.keys_to_new_subscriber + cost.keys_to_existing_subscribers
    )
    assert cost.bytes_sent == cost.messages * 16


def test_duplicate_subscriber_rejected():
    server = GroupKeyServer(100)
    server.join("S", 0, 10)
    with pytest.raises(ValueError):
        server.join("S", 20, 30)


def test_range_validation():
    server = GroupKeyServer(100)
    with pytest.raises(ValueError):
        server.join("S", -1, 10)
    with pytest.raises(ValueError):
        server.join("S", 0, 100)
    with pytest.raises(ValueError):
        GroupKeyServer(0)


def test_state_grows_with_subscribers():
    server = GroupKeyServer(1000)
    sizes = []
    for index in range(10):
        server.join(f"S{index}", index * 5, index * 5 + 200)
        sizes.append(server.state_size())
    assert sizes == sorted(sizes)
    assert sizes[-1] > sizes[0]


def test_leave_is_lazy():
    server = GroupKeyServer(100)
    server.join("S1", 10, 20)
    server.join("S2", 10, 20)
    server.leave("S1")
    # S1 still holds group membership until the epoch re-key.
    assert server.keys_of("S1") == 1


def test_epoch_rekey_evicts_departed():
    server = GroupKeyServer(100)
    server.join("S1", 10, 20)
    server.join("S2", 15, 30)
    server.leave("S1")
    generations, messages = server.rekey_epoch()
    assert server.keys_of("S1") == 0
    assert server.keys_of("S2") >= 1
    assert generations >= 1
    assert messages >= 1


def test_epoch_rekey_coalesces_intervals():
    server = GroupKeyServer(100)
    server.join("S1", 10, 20)
    server.join("S2", 15, 30)
    server.leave("S1")
    server.rekey_epoch()
    # Only S2's (15, 30) remains and is stored as one interval.
    assert server.key_count() == 1
    assert server.keys_of("S2") == 1


def test_totals_accumulate():
    server = GroupKeyServer(100)
    server.join("S1", 0, 50)
    server.join("S2", 25, 75)
    assert server.total_key_generations >= 3
    assert server.total_messages >= 3
    assert server.active_subscribers() == 2


def test_messaging_grows_with_overlap_density():
    """The paper's core scaling claim: cost grows with overlapping NS."""
    sparse = GroupKeyServer(10_000)
    dense = GroupKeyServer(10_000)
    for index in range(20):
        sparse.join(f"S{index}", index * 500, index * 500 + 10)
    for index in range(20):
        dense.join(f"S{index}", 4_000 + index * 10, 6_000 + index * 10)
    assert dense.total_messages > sparse.total_messages
