"""Property-based invariants of the interval-group server."""

from hypothesis import given, settings, strategies as st

from repro.baseline.groups import GroupKeyServer

RANGE = 64

_JOINS = st.lists(
    st.tuples(st.integers(0, RANGE - 1), st.integers(0, RANGE - 1)),
    min_size=1,
    max_size=12,
)


def _normalized(joins):
    return [
        (min(low, high), max(low, high)) for low, high in joins
    ]


@settings(max_examples=60, deadline=None)
@given(joins=_JOINS)
def test_intervals_partition_the_subscribed_space(joins):
    """Intervals are disjoint and cover exactly the union of ranges."""
    server = GroupKeyServer(RANGE)
    for index, (low, high) in enumerate(_normalized(joins)):
        server.join(f"S{index}", low, high)

    covered = set()
    for interval in server.intervals:
        assert interval.low <= interval.high
        points = set(range(interval.low, interval.high + 1))
        assert not points & covered, "intervals overlap"
        covered |= points

    expected = set()
    for low, high in _normalized(joins):
        expected |= set(range(low, high + 1))
    assert covered == expected


@settings(max_examples=60, deadline=None)
@given(joins=_JOINS)
def test_membership_matches_subscriptions(joins):
    """Every interval's member set is exactly the subscribers covering it."""
    server = GroupKeyServer(RANGE)
    ranges = {}
    for index, (low, high) in enumerate(_normalized(joins)):
        name = f"S{index}"
        server.join(name, low, high)
        ranges[name] = (low, high)

    for interval in server.intervals:
        expected_members = {
            name
            for name, (low, high) in ranges.items()
            if low <= interval.low and interval.high <= high
        }
        assert interval.members == expected_members


@settings(max_examples=40, deadline=None)
@given(
    joins=_JOINS,
    leavers=st.sets(st.integers(0, 11), max_size=6),
)
def test_epoch_rekey_restores_invariants(joins, leavers):
    """After departures and an epoch re-key, state is consistent again."""
    server = GroupKeyServer(RANGE)
    active = {}
    for index, (low, high) in enumerate(_normalized(joins)):
        name = f"S{index}"
        server.join(name, low, high)
        active[name] = (low, high)
    for index in leavers:
        name = f"S{index}"
        if name in active:
            server.leave(name)
            del active[name]
    server.rekey_epoch()

    covered = set()
    for interval in server.intervals:
        assert interval.members, "empty groups must be dropped"
        points = set(range(interval.low, interval.high + 1))
        assert not points & covered
        covered |= points
        for member in interval.members:
            low, high = active[member]
            assert low <= interval.low and interval.high <= high

    expected = set()
    for low, high in active.values():
        expected |= set(range(low, high + 1))
    assert covered == expected


@settings(max_examples=40, deadline=None)
@given(joins=_JOINS)
def test_key_count_bounded_by_fragmentation(joins):
    """At most 2k-1 intervals can arise from k interval insertions."""
    server = GroupKeyServer(RANGE)
    for index, (low, high) in enumerate(_normalized(joins)):
        server.join(f"S{index}", low, high)
    assert server.key_count() <= 2 * len(joins) - 1 + len(joins)
