"""Workload-wide group key management."""

import pytest

from repro.baseline.topicgroups import TopicGroupServer
from repro.workloads.generator import PaperWorkload, WorkloadConfig


@pytest.fixture(scope="module")
def workload() -> PaperWorkload:
    return PaperWorkload(WorkloadConfig(seed=3))


def _topic_of_kind(workload, kind):
    return next(t for t in workload.topics if t.kind == kind)


def test_plain_topic_single_group(workload):
    server = TopicGroupServer()
    topic = _topic_of_kind(workload, "plain")
    subscription = workload.subscription_for("S", topic)
    cost = server.join(subscription)
    assert cost.keys_to_new_subscriber == 1
    assert server.keys_of("S") == 1


def test_numeric_uses_interval_server(workload):
    server = TopicGroupServer()
    topic = _topic_of_kind(workload, "numeric")
    subscription = workload.subscription_for("S", topic)
    server.join(subscription)
    assert topic.name in server.numeric_servers
    assert server.keys_of("S") >= 1


def test_category_joins_whole_subtree(workload):
    server = TopicGroupServer()
    topic = _topic_of_kind(workload, "category")
    subscription = workload.subscription_for("S", topic)
    granted = topic.category_tree.label_of(
        str(next(
            c.value for c in subscription.filter if c.name == "category"
        ))
    )
    cost = server.join(subscription)
    subtree_size = sum(
        1
        for label in topic.category_tree.labels()
        if topic.category_tree.subsumes(granted, label)
    )
    assert cost.keys_to_new_subscriber == subtree_size
    assert server.keys_of("S") == subtree_size


def test_string_prefix_single_group_until_publications(workload):
    server = TopicGroupServer()
    topic = _topic_of_kind(workload, "string")
    subscription = workload.subscription_for("S", topic)
    server.join(subscription)
    assert server.keys_of("S") == 1


def test_string_value_groups_materialize_on_publish(workload):
    server = TopicGroupServer()
    topic = _topic_of_kind(workload, "string")
    subscription = workload.subscription_for("S", topic)
    prefix = next(
        c.value for c in subscription.filter if c.name == "text"
    )
    server.join(subscription)
    before = server.keys_of("S")
    messages = server.materialize_for_event(topic, prefix + "x")
    assert messages == 1
    assert server.keys_of("S") == before + 1
    # Re-publishing the same value creates nothing new.
    assert server.materialize_for_event(topic, prefix + "x") == 0


def test_non_matching_value_does_not_join(workload):
    server = TopicGroupServer()
    topic = _topic_of_kind(workload, "string")
    subscription = workload.subscription_for("S", topic)
    server.join(subscription)
    before = server.keys_of("S")
    server.materialize_for_event(topic, "zz-no-such-prefix")
    assert server.keys_of("S") == before


def test_per_publisher_groups_multiply(workload):
    single = TopicGroupServer(publishers=1)
    multi = TopicGroupServer(publishers=3)
    topic = _topic_of_kind(workload, "plain")
    subscription = workload.subscription_for("S", topic)
    single.join(subscription)
    multi.join(subscription)
    assert multi.keys_of("S") == 3 * single.keys_of("S")


def test_server_key_count_spans_topics(workload):
    server = TopicGroupServer()
    for kind in ("plain", "numeric", "category"):
        topic = _topic_of_kind(workload, kind)
        server.join(workload.subscription_for("S", topic))
    assert server.server_key_count() >= 3
    assert server.state_size() >= server.server_key_count()


def test_bytes_sent_tracks_messages(workload):
    server = TopicGroupServer()
    topic = _topic_of_kind(workload, "plain")
    server.join(workload.subscription_for("S1", topic))
    server.join(workload.subscription_for("S2", topic))
    assert server.bytes_sent() == server.total_messages * 16


def test_publisher_count_validated():
    with pytest.raises(ValueError):
        TopicGroupServer(publishers=0)
