"""The TCP runtime: frame codec, broker server, clients, cluster."""
