"""The cluster launcher: topology shape, attach points, lifecycle."""

import asyncio

import pytest

from repro.rtnet import ClusterLauncher


def test_rejects_degenerate_shapes():
    with pytest.raises(ValueError, match="at least one broker"):
        ClusterLauncher(num_brokers=0)
    with pytest.raises(ValueError, match="arity"):
        ClusterLauncher(num_brokers=3, arity=0)


def test_leaf_indices_match_the_broker_tree_shape():
    assert ClusterLauncher(num_brokers=1).leaf_indices() == [0]
    assert ClusterLauncher(num_brokers=3, arity=2).leaf_indices() == [1, 2]
    assert ClusterLauncher(num_brokers=7, arity=2).leaf_indices() == (
        [3, 4, 5, 6]
    )
    assert ClusterLauncher(num_brokers=13, arity=3).leaf_indices() == (
        [4, 5, 6, 7, 8, 9, 10, 11, 12]
    )


def test_subscriber_addresses_round_robin_across_leaves():
    async def scenario():
        async with ClusterLauncher(num_brokers=3, arity=2) as cluster:
            first = cluster.subscriber_address()
            second = cluster.subscriber_address()
            third = cluster.subscriber_address()
            return (
                cluster.publisher_address(),
                cluster.servers[0].address,
                first, second, third,
                cluster.servers[1].address,
                cluster.servers[2].address,
            )

    publisher_addr, root_addr, first, second, third, b1, b2 = (
        asyncio.run(scenario())
    )
    assert publisher_addr == root_addr
    assert first == b1
    assert second == b2
    assert third == first  # wrapped around


def test_start_binds_every_listener_on_distinct_ports():
    async def scenario():
        async with ClusterLauncher(num_brokers=5, arity=2) as cluster:
            ports = [server.port for server in cluster.servers]
            stats = cluster.stats()
            return ports, stats

    ports, stats = asyncio.run(scenario())
    assert all(port > 0 for port in ports)
    assert len(set(ports)) == 5
    assert sorted(stats) == ["b0", "b1", "b2", "b3", "b4"]
    for entry in stats.values():
        assert set(entry) == {
            "events_received", "events_forwarded",
            "deliveries", "subscriptions_received",
        }
