"""The rtnet frame codec: round-trips, corruption, incremental parsing."""

import asyncio
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtnet.frames import (
    FRAME_MAX,
    GRANT_DENIED,
    GRANT_OK,
    PROTOCOL_VERSION,
    Ack,
    EventFrame,
    FrameDecoder,
    FrameType,
    GrantAck,
    GrantRequest,
    Heartbeat,
    Hello,
    HelloAck,
    Ping,
    Pong,
    Rekey,
    Revoke,
    Subscribe,
    Unsubscribe,
    decode_payload,
    encode_frame,
    read_frame,
)
from repro.siena.filters import Filter

_INT64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_FLOATS = st.floats(allow_nan=False, allow_infinity=False, width=64)
_TEXT = st.text(max_size=40)
_PATHS = st.lists(_TEXT, max_size=5).map(tuple)


def _roundtrip(frame):
    frames = FrameDecoder().feed(encode_frame(frame))
    assert len(frames) == 1
    return frames[0]


# -- round-trips ---------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(peer_id=_TEXT, role=_TEXT, version=st.integers(0, 2 ** 16 - 1))
def test_hello_roundtrip(peer_id, role, version):
    assert _roundtrip(Hello(peer_id, role, version)) == Hello(
        peer_id, role, version
    )


@settings(max_examples=50, deadline=None)
@given(peer_id=_TEXT, version=st.integers(0, 2 ** 16 - 1))
def test_hello_ack_roundtrip(peer_id, version):
    assert _roundtrip(HelloAck(peer_id, version)) == HelloAck(peer_id, version)


@settings(max_examples=50, deadline=None)
@given(seq=_INT64, sent_at=_FLOATS, payload=st.binary(max_size=300))
def test_event_frame_roundtrip(seq, sent_at, payload):
    decoded = _roundtrip(EventFrame(seq, sent_at, payload))
    assert (decoded.seq, decoded.sent_at, decoded.payload) == (
        seq, sent_at, payload,
    )


@settings(max_examples=50, deadline=None)
@given(seq=_INT64)
def test_ack_roundtrip(seq):
    assert _roundtrip(Ack(seq)) == Ack(seq)


@settings(max_examples=30, deadline=None)
@given(sent_at=_FLOATS)
def test_heartbeat_roundtrip(sent_at):
    assert _roundtrip(Heartbeat(sent_at)) == Heartbeat(sent_at)


@settings(max_examples=50, deadline=None)
@given(token=st.binary(min_size=1, max_size=16), path=_PATHS)
def test_ping_pong_roundtrip(token, path):
    assert _roundtrip(Ping(token, path)) == Ping(token, path)
    assert _roundtrip(Pong(token, path)) == Pong(token, path)


def test_subscribe_unsubscribe_roundtrip():
    subscription = Filter.numeric_range("t", "v", 5, 40)
    assert _roundtrip(Subscribe(subscription)).filter == subscription
    assert _roundtrip(Unsubscribe(subscription)).filter == subscription


@settings(max_examples=50, deadline=None)
@given(
    request_id=_INT64,
    subscriber=_TEXT,
    at_time=_FLOATS,
    min_epoch=st.none() | st.integers(0, 2 ** 62),
    publisher=st.none() | _TEXT.filter(bool),
)
def test_grant_request_roundtrip(
    request_id, subscriber, at_time, min_epoch, publisher
):
    frame = GrantRequest(
        request_id,
        subscriber,
        (Filter.topic("t"), Filter.numeric_range("t", "v", 1, 9)),
        at_time,
        publisher,
        min_epoch,
    )
    assert _roundtrip(frame) == frame


@settings(max_examples=50, deadline=None)
@given(request_id=_INT64, status=st.integers(0, 255), detail=_TEXT)
def test_grant_ack_roundtrip(request_id, status, detail):
    frame = GrantAck(request_id, status, detail)
    assert _roundtrip(frame) == frame


def test_grant_ack_carries_a_real_grant():
    from repro.core import KDC, CompositeKeySpace, NumericKeySpace

    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 16)})
    )
    grant = kdc.authorize("alice", Filter.numeric_range("t", "v", 0, 15))
    decoded = _roundtrip(GrantAck(3, GRANT_OK, grant=grant))
    assert decoded.status == GRANT_OK
    assert decoded.grant == grant


@settings(max_examples=50, deadline=None)
@given(topic=_TEXT, epoch=_INT64, at_time=_FLOATS)
def test_rekey_roundtrip(topic, epoch, at_time):
    frame = Rekey(topic, epoch, at_time)
    assert _roundtrip(frame) == frame


@settings(max_examples=50, deadline=None)
@given(request_id=_INT64, subscriber=_TEXT, topic=_TEXT)
def test_revoke_roundtrip(request_id, subscriber, topic):
    frame = Revoke(request_id, subscriber, topic)
    assert _roundtrip(frame) == frame


# -- corruption never hangs, always ValueError ---------------------------------


def _frame_corpus():
    return [
        Hello("peer", "publisher", PROTOCOL_VERSION),
        HelloAck("b0"),
        Subscribe(Filter.topic("t")),
        EventFrame(3, 1.5, b"payload"),
        Ack(7),
        Heartbeat(2.0),
        Ping(b"\x01\x02", ("b3", "b1")),
        Pong(b"\x01\x02", ("b3",)),
        GrantRequest(5, "alice", (Filter.topic("t"),), 12.5, "pub", 3),
        GrantAck(5, GRANT_DENIED, "revoked"),
        Rekey("t", 4, 99.0),
        Revoke(9, "alice", "t"),
    ]


@settings(max_examples=120, deadline=None)
@given(
    index=st.integers(0, 11),
    cut=st.integers(min_value=1, max_value=30),
)
def test_truncated_payloads_rejected(index, cut):
    frame = _frame_corpus()[index]
    payload = encode_frame(frame)[4:]  # strip the length prefix
    truncated = payload[: max(1, len(payload) - cut)]
    if truncated == payload:
        return
    try:
        decode_payload(truncated)
    except ValueError:
        return  # the contract: loud, typed failure
    # EVENT payloads are length-delimited only by the frame, so a cut
    # event still parses (with a shorter payload) -- that is fine; the
    # PSE2 decoder underneath rejects it.
    assert isinstance(frame, EventFrame)


@settings(max_examples=150, deadline=None)
@given(
    index=st.integers(0, 11),
    position=st.integers(min_value=0, max_value=10 ** 6),
    bit=st.integers(0, 7),
)
def test_bit_flips_never_hang_or_crash(index, position, bit):
    data = bytearray(encode_frame(_frame_corpus()[index]))
    position %= len(data)
    data[position] ^= 1 << bit
    decoder = FrameDecoder()
    try:
        decoder.feed(bytes(data))
    except ValueError:
        pass  # only ValueError is acceptable


@settings(max_examples=80, deadline=None)
@given(garbage=st.binary(min_size=1, max_size=120))
def test_garbage_payloads_rejected_loudly(garbage):
    try:
        frame = decode_payload(garbage)
    except ValueError:
        return
    assert frame.type in FrameType


def test_oversized_length_prefix_rejected_immediately():
    decoder = FrameDecoder()
    with pytest.raises(ValueError, match="invalid frame length"):
        decoder.feed(struct.pack(">I", FRAME_MAX + 1))


def test_zero_length_prefix_rejected():
    with pytest.raises(ValueError, match="invalid frame length"):
        FrameDecoder().feed(struct.pack(">I", 0) + b"rest")


def test_unknown_frame_type_rejected():
    with pytest.raises(ValueError, match="unknown frame type"):
        decode_payload(bytes([99]) + b"body")


def test_empty_payload_rejected():
    with pytest.raises(ValueError, match="empty frame payload"):
        decode_payload(b"")


def test_trailing_bytes_after_hello_rejected():
    payload = encode_frame(Hello("p", "publisher"))[4:] + b"x"
    with pytest.raises(ValueError, match="trailing bytes"):
        decode_payload(payload)


def test_encode_rejects_frames_over_frame_max():
    with pytest.raises(ValueError, match="exceeds FRAME_MAX"):
        encode_frame(EventFrame(0, 0.0, b"\0" * FRAME_MAX))


# -- incremental parsing -------------------------------------------------------


def test_decoder_reassembles_byte_at_a_time():
    wire = b"".join(encode_frame(frame) for frame in _frame_corpus())
    decoder = FrameDecoder()
    frames = []
    for offset in range(len(wire)):
        frames.extend(decoder.feed(wire[offset: offset + 1]))
    assert [frame.type for frame in frames] == [
        frame.type for frame in _frame_corpus()
    ]
    assert decoder.pending == 0


def test_decoder_returns_multiple_frames_per_feed():
    wire = encode_frame(Ack(1)) + encode_frame(Ack(2)) + encode_frame(Ack(3))
    assert FrameDecoder().feed(wire) == [Ack(1), Ack(2), Ack(3)]


def test_decoder_tracks_pending_bytes():
    decoder = FrameDecoder()
    wire = encode_frame(Heartbeat(1.0))
    assert decoder.feed(wire[:6]) == []
    assert decoder.pending == 6
    assert decoder.feed(wire[6:]) == [Heartbeat(1.0)]
    assert decoder.pending == 0


# -- stream reader -------------------------------------------------------------


def _stream_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def test_read_frame_returns_none_on_clean_eof():
    async def scenario():
        return await read_frame(_stream_with(b""))

    assert asyncio.run(scenario()) is None


def test_read_frame_raises_on_mid_frame_eof():
    async def scenario():
        wire = encode_frame(Ack(5))
        return await read_frame(_stream_with(wire[:-2]))

    with pytest.raises(ValueError, match="mid frame"):
        asyncio.run(scenario())


def test_read_frame_raises_on_mid_header_eof():
    async def scenario():
        return await read_frame(_stream_with(b"\x00\x00"))

    with pytest.raises(ValueError, match="mid frame header"):
        asyncio.run(scenario())


def test_read_frame_reads_back_to_back_frames():
    async def scenario():
        reader = _stream_with(
            encode_frame(Ack(1)) + encode_frame(Heartbeat(2.0))
        )
        first = await read_frame(reader)
        second = await read_frame(reader)
        third = await read_frame(reader)
        return first, second, third

    assert asyncio.run(scenario()) == (Ack(1), Heartbeat(2.0), None)
