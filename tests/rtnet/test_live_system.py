"""``System.builder().transport("tcp")``: the synchronous live facade."""

import pytest

from repro.api import System
from repro.siena.events import Event
from repro.siena.filters import Filter


def test_builder_rejects_unknown_transport():
    with pytest.raises(ValueError, match="unknown transport"):
        System.builder().transport("carrier-pigeon")


def test_tcp_transport_rejects_unwired_extensions():
    builder = (
        System.builder()
        .brokers(3)
        .topic("t", numeric={"v": 16})
        .transport("tcp")
        .admission(rate=100.0)
    )
    with pytest.raises(ValueError, match="not yet wired"):
        builder.build()


def test_tcp_transport_disseminates_over_real_sockets():
    system = (
        System.builder()
        .brokers(3, arity=2)
        .master_key(bytes(range(16)))
        .topic("cancerTrail", numeric={"age": 128})
        .transport("tcp")
        .build()
    )
    with system:
        doctor = system.subscribe(
            "doctor", Filter.numeric_range("cancerTrail", "age", 21, 127)
        )
        outsider = system.subscribe(
            "outsider", Filter.numeric_range("cancerTrail", "age", 90, 127)
        )
        system.publisher("hospital").publish(
            Event(
                {"topic": "cancerTrail", "age": 25, "record": "rec-17"},
                publisher="hospital",
            ),
            secret_attributes={"record"},
        )
        system.settle()

        assert [r.event["record"] for r in doctor.opened] == ["rec-17"]
        assert doctor.unreadable == 0
        assert outsider.opened == []
        assert outsider.unreadable == 0

        # The live facade exposes the same observability surface.
        snapshot = system.snapshot()
        assert any(
            name.startswith("rtnet_") for name in snapshot["counters"]
        )
        stats = system.broker_stats()
        assert stats["b0"]["events_received"] == 1
        assert "rtnet_frames_total" in system.to_prometheus()


def test_live_publishers_cached_and_duplicate_subscribers_rejected():
    system = (
        System.builder()
        .brokers(1)
        .topic("t", numeric={"v": 16})
        .transport("tcp")
        .build()
    )
    with system:
        assert system.publisher("p") is system.publisher("p")
        system.subscribe("s", Filter.numeric_range("t", "v", 0, 15))
        with pytest.raises(ValueError, match="already attached"):
            system.subscribe("s", Filter.numeric_range("t", "v", 0, 15))
