"""Reconnection: backoff, resubscribe, unacked resend, exactly-once."""

import asyncio
import random
import time

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.routing.tokens import TokenAuthority
from repro.rtnet import (
    BackoffPolicy,
    BrokerServer,
    RtPublisher,
    RtSubscriber,
)
from repro.siena.events import Event
from repro.siena.filters import Filter

_FAST = BackoffPolicy(base=0.01, max_delay=0.05)


def _make_kdc() -> KDC:
    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    return kdc


async def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(0.01)


def test_backoff_policy_grows_and_caps():
    policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=1.0, jitter=0.0)
    rng = random.Random(7)
    delays = [policy.delay(attempt, rng) for attempt in range(6)]
    assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
    assert delays[4] == delays[5] == 1.0  # capped


def test_backoff_jitter_only_shrinks_the_delay():
    policy = BackoffPolicy(base=0.1, factor=1.0, max_delay=0.1, jitter=0.5)
    rng = random.Random(3)
    for attempt in range(20):
        delay = policy.delay(attempt, rng)
        assert 0.05 <= delay <= 0.1


def test_connect_gives_up_after_max_attempts():
    async def scenario():
        subscriber = RtSubscriber(
            "s", "127.0.0.1", 1,  # nothing listens on port 1
            schema_lookup=lambda topic: None,
            authority=TokenAuthority(bytes(16)),
            backoff=BackoffPolicy(base=0.001, max_delay=0.01, max_attempts=3),
        )
        with pytest.raises(OSError):
            await subscriber.connect()

    asyncio.run(scenario())


def test_subscriber_resubscribes_after_broker_restart():
    kdc = _make_kdc()
    authority = TokenAuthority(kdc.master_key)

    async def scenario():
        server = BrokerServer("b0")
        await server.start()
        port = server.port

        subscriber = RtSubscriber(
            "s", server.host, port,
            schema_lookup=lambda topic: kdc.config_for(topic).schema,
            authority=authority, backoff=_FAST,
        )
        await subscriber.connect()
        await subscriber.add_grant(
            kdc.authorize("s", Filter.numeric_range("t", "v", 0, 63))
        )
        await subscriber.settle()

        # Kill the broker; a fresh one takes over the same port.  The
        # restarted broker has no routing state -- delivery only works
        # if the subscriber re-registers its filters on reconnect.
        await server.stop()
        server = BrokerServer("b0-prime", port=port)
        await server.start()
        await _wait_for(lambda: subscriber.stats.reconnects >= 1
                        and subscriber._connected.is_set())
        assert subscriber.broker_id == "b0-prime"

        publisher = RtPublisher(
            "p", server.host, port, kdc, authority=authority, backoff=_FAST
        )
        await publisher.connect()
        await publisher.publish(Event({"topic": "t", "v": 10}, publisher="p"))
        await publisher.settle()
        await subscriber.settle()

        opened = len(subscriber.opened)
        reconnects = subscriber.stats.reconnects
        await subscriber.close()
        await publisher.close()
        await server.stop()
        return opened, reconnects

    opened, reconnects = asyncio.run(scenario())
    assert opened == 1
    assert reconnects >= 1


def test_publisher_resends_unacked_tail_after_restart():
    kdc = _make_kdc()
    authority = TokenAuthority(kdc.master_key)

    async def scenario():
        server = BrokerServer("b0")
        await server.start()
        port = server.port

        publisher = RtPublisher(
            "p", server.host, port, kdc, authority=authority, backoff=_FAST
        )
        await publisher.connect()
        await publisher.publish(Event({"topic": "t", "v": 5}, publisher="p"))
        await publisher.settle()
        await _wait_for(lambda: publisher.unacked == 0)

        # Simulate a lost ACK: re-mark the frame unacked, then restart
        # the broker.  On reconnect the publisher must replay the tail.
        resend = publisher._unacked
        await publisher.publish(Event({"topic": "t", "v": 6}, publisher="p"))
        frame = publisher._unacked[1]
        await _wait_for(lambda: publisher.unacked == 0)
        resend[frame.seq] = frame

        await server.stop()
        server = BrokerServer("b0", port=port)
        await server.start()
        await _wait_for(lambda: publisher.stats.reconnects >= 1
                        and publisher.unacked == 0)
        await publisher.settle()

        received = server.broker.stats.events_received
        await publisher.close()
        await server.stop()
        return received

    # The replayed event is the only one the restarted broker sees.
    assert asyncio.run(scenario()) == 1


def test_dedup_window_makes_resends_exactly_once():
    kdc = _make_kdc()
    authority = TokenAuthority(kdc.master_key)

    async def scenario():
        server = BrokerServer("b0")
        await server.start()

        subscriber = RtSubscriber(
            "s", server.host, server.port,
            schema_lookup=lambda topic: kdc.config_for(topic).schema,
            authority=authority,
        )
        await subscriber.connect()
        await subscriber.add_grant(
            kdc.authorize("s", Filter.numeric_range("t", "v", 0, 63))
        )
        await subscriber.settle()

        publisher = RtPublisher(
            "p", server.host, server.port, kdc, authority=authority
        )
        await publisher.connect()
        await publisher.publish(Event({"topic": "t", "v": 9}, publisher="p"))
        await publisher.settle()
        await subscriber.settle()
        await _wait_for(lambda: len(subscriber.log) == 1)
        await publisher.close()

        # A restarted publisher session with the same identity replays
        # its stream from sequence 0 -- the same (origin, sequence)
        # envelope as the first publication.  The subscriber's dedup
        # window must swallow it: at-least-once in, exactly-once out.
        replayer = RtPublisher(
            "p", server.host, server.port, kdc, authority=authority
        )
        await replayer.connect()
        await replayer.publish(Event({"topic": "t", "v": 9}, publisher="p"))
        await replayer.settle()
        await subscriber.settle()
        await _wait_for(lambda: len(subscriber.log) == 2)

        results = (
            len(subscriber.opened),
            subscriber.duplicates,
            [entry[2] for entry in subscriber.log],
        )
        await subscriber.close()
        await replayer.close()
        await server.stop()
        return results

    opened, duplicates, verdicts = asyncio.run(scenario())
    assert opened == 1
    assert duplicates == 1
    assert verdicts == ["open", "duplicate"]
