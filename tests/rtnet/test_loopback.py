"""End-to-end dissemination over a real loopback TCP broker tree."""

import asyncio

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.obs.metrics import MetricsRegistry
from repro.routing.tokens import TokenAuthority
from repro.rtnet import ClusterLauncher, RtPublisher, RtSubscriber
from repro.siena.events import Event
from repro.siena.filters import Filter


def _make_kdc() -> KDC:
    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        "cancerTrail", CompositeKeySpace({"age": NumericKeySpace("age", 128)})
    )
    return kdc


def _schema_lookup(kdc: KDC):
    return lambda topic: kdc.config_for(topic).schema


def test_two_broker_tree_delivers_only_to_the_authorized():
    kdc = _make_kdc()
    authority = TokenAuthority(kdc.master_key)
    registry = MetricsRegistry()

    async def scenario():
        async with ClusterLauncher(
            num_brokers=2, arity=2, registry=registry
        ) as cluster:
            # The doctor is authorized for ages [21, 127]; the outsider
            # for [90, 127] only -- the event below matches neither of
            # the outsider's token covers, so it is filtered in-network.
            sub_host, sub_port = cluster.subscriber_address()
            doctor = RtSubscriber(
                "doctor", sub_host, sub_port,
                schema_lookup=_schema_lookup(kdc), authority=authority,
            )
            outsider = RtSubscriber(
                "outsider", *cluster.subscriber_address(),
                schema_lookup=_schema_lookup(kdc), authority=authority,
            )
            await doctor.connect()
            await outsider.connect()
            await doctor.add_grant(kdc.authorize(
                "doctor", Filter.numeric_range("cancerTrail", "age", 21, 127)
            ))
            await outsider.add_grant(kdc.authorize(
                "outsider", Filter.numeric_range("cancerTrail", "age", 90, 127)
            ))
            await doctor.settle()
            await outsider.settle()

            publisher = RtPublisher(
                "hospital", *cluster.publisher_address(), kdc,
                authority=authority,
            )
            await publisher.connect()
            await publisher.publish(
                Event(
                    {"topic": "cancerTrail", "age": 25,
                     "patientRecord": "rec-17"},
                    publisher="hospital",
                ),
                secret_attributes={"patientRecord"},
            )
            await publisher.settle()
            await doctor.settle()
            await outsider.settle()

            results = (
                [result.event["patientRecord"] for result in doctor.opened],
                doctor.unreadable,
                outsider.opened,
                outsider.unreadable,
                publisher.unacked,
                cluster.stats(),
            )
            await doctor.close()
            await outsider.close()
            await publisher.close()
            return results

    opened, doc_unreadable, out_opened, out_unreadable, unacked, stats = (
        asyncio.run(scenario())
    )
    assert opened == ["rec-17"]
    assert doc_unreadable == 0
    # Nothing even reaches the outsider: the token covers do not match.
    assert out_opened == []
    assert out_unreadable == 0
    assert unacked == 0
    # The root saw the publication; the leaf delivered it.
    assert stats["b0"]["events_received"] == 1
    assert stats["b1"]["deliveries"] == 1


def test_seven_broker_tree_fans_out_to_every_leaf():
    kdc = _make_kdc()
    authority = TokenAuthority(kdc.master_key)

    async def scenario():
        async with ClusterLauncher(num_brokers=7, arity=2) as cluster:
            assert cluster.leaf_indices() == [3, 4, 5, 6]
            subscribers = []
            for index in range(4):
                subscriber = RtSubscriber(
                    f"s{index}", *cluster.subscriber_address(),
                    schema_lookup=_schema_lookup(kdc), authority=authority,
                )
                await subscriber.connect()
                await subscriber.add_grant(kdc.authorize(
                    f"s{index}",
                    Filter.numeric_range("cancerTrail", "age", 0, 127),
                ))
                subscribers.append(subscriber)
            for subscriber in subscribers:
                await subscriber.settle()

            publisher = RtPublisher(
                "p", *cluster.publisher_address(), kdc, authority=authority
            )
            await publisher.connect()
            for age in (10, 60, 110):
                await publisher.publish(Event(
                    {"topic": "cancerTrail", "age": age}, publisher="p"
                ))
            await publisher.settle()
            for subscriber in subscribers:
                await subscriber.settle()

            counts = [len(subscriber.opened) for subscriber in subscribers]
            for endpoint in subscribers + [publisher]:
                await endpoint.close()
            return counts

    assert asyncio.run(scenario()) == [3, 3, 3, 3]


def test_version_mismatch_is_rejected_with_hello_ack_zero():
    from repro.rtnet import BrokerServer, HandshakeError, RtEndpoint

    async def scenario():
        server = BrokerServer("b0")
        await server.start()
        endpoint = RtEndpoint("late", server.host, server.port)
        # Speak a future protocol version; the server must answer with
        # HELLO_ACK version 0 and the client must not retry.
        import repro.rtnet.client as client_module
        original = client_module.PROTOCOL_VERSION
        client_module.PROTOCOL_VERSION = 99
        try:
            try:
                await endpoint.connect()
            except HandshakeError:
                return True
            finally:
                await endpoint.close()
            return False
        finally:
            client_module.PROTOCOL_VERSION = original
            await server.stop()

    assert asyncio.run(scenario()) is True
