"""The self-verification harness."""

import pytest

from repro.harness.verification import (
    CheckResult,
    format_verification,
    run_verification,
)


@pytest.fixture(scope="module")
def results():
    return run_verification()


def test_all_checks_pass(results):
    failing = [result for result in results if not result.passed]
    assert not failing, format_verification(failing)


def test_every_check_reports_detail(results):
    assert all(result.detail for result in results)
    assert len(results) == 8


def test_formatting():
    rendered = format_verification(
        [
            CheckResult("good", True, "fine"),
            CheckResult("bad", False, "broken"),
        ]
    )
    assert "[PASS] good" in rendered
    assert "[FAIL] bad" in rendered
    assert "1/2 checks passed" in rendered


def test_exceptions_become_failures(monkeypatch):
    import repro.harness.verification as verification

    def explode():
        raise RuntimeError("boom")

    monkeypatch.setattr(verification, "CHECKS", [explode])
    results = verification.run_verification()
    assert len(results) == 1
    assert not results[0].passed
    assert "boom" in results[0].detail


def test_cli_verify(capsys):
    from repro.cli import main

    assert main(["verify"]) == 0
    output = capsys.readouterr().out
    assert "8/8 checks passed" in output
