"""KDC-outage chaos: the acceptance scenario for the replicated service."""

from dataclasses import replace

from repro.harness.kdcchaos import (
    KdcChaosConfig,
    format_kdc_chaos_report,
    run_kdc_chaos,
    run_kdc_chaos_mode,
)

#: The acceptance configuration: 3 replicas, a 1s primary outage
#: straddling an epoch boundary, plus a client partition and a nested
#: second-replica crash.
CONFIG = KdcChaosConfig()


def test_replicated_meets_sla_while_baseline_degrades():
    report = run_kdc_chaos(CONFIG)
    assert report.replicated.decrypt_rate >= 0.99
    assert report.baseline.decrypt_rate < 0.97  # measurably degraded
    assert report.replicated.decrypt_rate > report.baseline.decrypt_rate


def test_outage_straddles_an_epoch_boundary():
    boundary = CONFIG.boundary()
    start = boundary - CONFIG.outage_duration / 2
    assert start < boundary < start + CONFIG.outage_duration
    assert 0.0 < boundary < CONFIG.duration


def test_replicated_run_used_the_availability_machinery():
    result = run_kdc_chaos_mode(
        CONFIG, replicas=CONFIG.replicas,
        grace_period=CONFIG.grace_period, mode="replicated",
    )
    assert result.client_failovers > 0       # replicas actually failed over
    assert result.grace_opens > 0            # grace window actually used
    assert result.view_changes >= 1          # leadership moved off kdc0
    assert result.messages_lost > 0          # the faults actually bit
    assert result.converged                  # registry log consistent


def test_baseline_without_grace_misses_boundary_traffic():
    result = run_kdc_chaos_mode(
        CONFIG, replicas=1, grace_period=0.0, mode="single-kdc"
    )
    assert result.decrypted < result.attempted
    assert result.grace_opens == 0
    # Degraded-mode renewal counters surface the outage.
    assert result.late_renewals > 0 or result.renewal_failures > 0


def test_same_seed_reproduces_every_counter():
    first = run_kdc_chaos(CONFIG)
    second = run_kdc_chaos(CONFIG)
    assert first.baseline == second.baseline
    assert first.replicated == second.replicated


def test_different_seed_changes_jitter_but_not_the_sla():
    report = run_kdc_chaos(replace(CONFIG, seed=11))
    assert report.replicated.decrypt_rate >= 0.99


def test_report_formatting():
    report = run_kdc_chaos(CONFIG)
    text = format_kdc_chaos_report(report)
    assert "KDC chaos run" in text
    assert "single-kdc" in text
    assert "replicated" in text
    assert "decrypt" in text
