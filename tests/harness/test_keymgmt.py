"""Key-management comparison harness (Figures 3-5), small scale."""

import pytest

from repro.harness.keymgmt import run_key_management
from repro.workloads.generator import WorkloadConfig


@pytest.fixture(scope="module")
def rows():
    return run_key_management(
        [2, 8, 16],
        config=WorkloadConfig(seed=41),
    )


def test_row_per_population(rows):
    assert [row.num_subscribers for row in rows] == [2, 8, 16]


def test_psguard_keys_flat_in_ns(rows):
    """Fig 3: PSGuard per-subscriber keys independent of NS."""
    values = [row.psguard_keys_per_subscriber for row in rows]
    assert max(values) <= 1.6 * min(values)


def test_group_keys_grow_with_ns(rows):
    """Fig 3: SubscriberGroup keys grow with NS."""
    assert (
        rows[-1].group_keys_per_subscriber
        > rows[0].group_keys_per_subscriber
    )


def test_group_worse_than_psguard_at_scale(rows):
    last = rows[-1]
    assert last.group_keys_per_subscriber > last.psguard_keys_per_subscriber


def test_publisher_keys(rows):
    """Fig 4: PSGuard publishers hold one key per topic; group publishers
    hold every group key."""
    for row in rows:
        assert row.psguard_keys_per_publisher == 128.0
    assert (
        rows[-1].group_keys_per_publisher
        > rows[0].group_keys_per_publisher
    )
    assert (
        rows[-1].group_keys_per_publisher
        > rows[-1].psguard_keys_per_publisher
    )


def test_kdc_compute_flat_vs_growing(rows):
    """Fig 5: PSGuard per-join compute constant; group compute grows."""
    psguard = [row.psguard_kdc_compute_ms for row in rows]
    group = [row.group_kdc_compute_ms for row in rows]
    assert max(psguard) <= 2.0 * min(psguard)
    assert group[-1] > group[0]


def test_kdc_network_flat_vs_growing(rows):
    psguard = [row.psguard_kdc_network_kb for row in rows]
    assert max(psguard) <= 1.6 * min(psguard)
    assert rows[-1].group_kdc_network_kb > rows[0].group_kdc_network_kb
