"""The cache-effect measurement behind Figure 11."""

import pytest

from repro.harness.endtoend import measure_cache_effect


@pytest.fixture(scope="module")
def rows():
    return measure_cache_effect(
        cache_sizes_kb=(0, 1, 64), events=300
    )


def test_one_row_per_cache_size(rows):
    assert [row.cache_kb for row in rows] == [0, 1, 64]


def test_uncached_pays_full_tree_walks(rows):
    uncached = rows[0]
    # Depth-8 tree (range 256): the publisher re-derives root + walk,
    # the subscriber walks from its authorization element.
    assert uncached.publisher_hash_per_event >= 6
    assert uncached.subscriber_hash_per_event >= 5
    assert uncached.publisher_hit_rate == 0.0


def test_cache_cuts_derivations(rows):
    uncached, small, large = rows
    assert small.publisher_hash_per_event < uncached.publisher_hash_per_event
    assert large.publisher_hash_per_event <= small.publisher_hash_per_event
    assert large.subscriber_hash_per_event < 1.0


def test_hit_rates_rise(rows):
    hit_rates = [row.publisher_hit_rate for row in rows]
    assert hit_rates == sorted(hit_rates)
    assert hit_rates[-1] > 0.9


def test_crypto_cost_decreases(rows):
    costs = [row.crypto_per_event_s for row in rows]
    assert costs[-1] < costs[0]
    assert all(cost > 0 for cost in costs)
