"""End-to-end harness (Figures 9-11), at reduced scale for test speed."""

import pytest

from repro.harness.endtoend import (
    MODES,
    _ExperimentNetwork,
    max_throughput,
    sample_pipeline_costs,
)


@pytest.fixture(scope="module")
def pipelines():
    return {mode: sample_pipeline_costs(mode, samples=40) for mode in MODES}


def test_siena_pipeline_is_free(pipelines):
    siena = pipelines["siena"]
    assert siena.seal_s == 0.0
    assert siena.open_s == 0.0
    assert siena.per_event_crypto_s == 0.0


def test_psguard_pipelines_measured(pipelines):
    for mode in ("topic", "numeric", "category", "string"):
        pipeline = pipelines[mode]
        assert pipeline.seal_s > 0
        assert pipeline.open_s > 0
        assert pipeline.per_event_crypto_s > 0


def test_category_has_highest_match_overhead(pipelines):
    crypto = {m: pipelines[m].per_event_crypto_s for m in
              ("topic", "numeric", "category", "string")}
    assert crypto["category"] == max(crypto.values())
    assert crypto["topic"] == min(crypto.values())


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        sample_pipeline_costs("quantum")


def test_network_builds_all_node_counts(pipelines):
    for nodes in (0, 2, 6):
        network = _ExperimentNetwork("siena", nodes, pipelines["siena"])
        assert len(network.net.brokers) == nodes + 1


def test_saturation_monotone_in_rate(pipelines):
    network_factory = lambda: _ExperimentNetwork(  # noqa: E731
        "siena", 2, pipelines["siena"]
    )
    low_saturated, low_latency = network_factory().run_at_rate(
        200, events=150
    )
    high_saturated, _ = network_factory().run_at_rate(500_000, events=150)
    assert not low_saturated
    assert high_saturated
    assert low_latency > 0


def test_max_throughput_brackets_saturation(pipelines):
    result = max_throughput(
        "siena", 2, pipelines["siena"], events=150
    )
    assert result.throughput_events_per_s > 100
    assert result.latency_s > 0
    network = _ExperimentNetwork("siena", 2, pipelines["siena"])
    saturated, _ = network.run_at_rate(
        result.throughput_events_per_s * 4, events=150
    )
    assert saturated


def test_throughput_rises_with_routing_nodes(pipelines):
    """Fig 9's shape: offloading fan-out raises the saturation rate."""
    lone = max_throughput("siena", 0, pipelines["siena"], events=150)
    spread = max_throughput("siena", 6, pipelines["siena"], events=150)
    assert (
        spread.throughput_events_per_s
        > 1.3 * lone.throughput_events_per_s
    )


def test_psguard_throughput_slightly_below_siena(pipelines):
    siena = max_throughput("siena", 2, pipelines["siena"], events=150)
    topic = max_throughput("topic", 2, pipelines["topic"], events=150)
    drop = 1 - (
        topic.throughput_events_per_s / siena.throughput_events_per_s
    )
    assert 0.0 <= drop < 0.15
