"""The ``repro metrics`` workload and its tracing invariants."""

from repro.harness.metricsrun import (
    MetricsRunConfig,
    check_invariants,
    run_metrics_workload,
)

_CONFIG = MetricsRunConfig(seed=7, duration=1.0, drain=1.5,
                           publish_rate=20.0)


def test_invariants_hold_on_seeded_run():
    result = run_metrics_workload(_CONFIG)
    assert check_invariants(result) == []


def test_workload_exercises_faults_and_retries():
    result = run_metrics_workload(_CONFIG)
    summary = result.obs.tracer.summary()
    assert summary["total_retransmits"] > 0
    assert result.obs.registry.total("net_hop_retries_total") > 0
    delivery = result.obs.registry.get("net_delivery_latency_seconds")
    assert delivery is not None and delivery.count == result.delivered


def test_snapshot_carries_workload_section():
    result = run_metrics_workload(_CONFIG)
    document = result.snapshot()
    assert document["workload"]["published"] == result.published
    assert "tracing" in document
    assert document["counters"]


def test_run_is_deterministic():
    a = run_metrics_workload(_CONFIG)
    b = run_metrics_workload(_CONFIG)
    assert a.delivered == b.delivered
    assert a.obs.registry.snapshot() == b.obs.registry.snapshot()
    assert a.obs.tracer.summary() == b.obs.tracer.summary()
