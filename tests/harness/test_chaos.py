"""Acceptance criteria for the chaos harness.

Under the issue's headline scenario -- 20% per-broker crash probability
and 5% link loss -- at-least-once delivery with retries plus redundancy
``k=2`` must reach at least 99% delivery, while the fire-and-forget
baseline measurably degrades.  All numbers are seeded, so tolerances are
exact bounds, not statistical hopes.
"""

import dataclasses

import pytest

from repro.harness.chaos import (
    ChaosConfig,
    format_chaos_report,
    run_chaos,
    run_multipath_chaos,
    run_tree_chaos,
)


# One shared run keeps the suite fast: every acceptance assertion reads
# from the same seeded report the CLI prints.
_CONFIG = ChaosConfig(seed=7, duration=5.0, crash_probability=0.2,
                      link_loss=0.05, redundancy=2)


@pytest.fixture(scope="module")
def report():
    return run_chaos(_CONFIG)


def test_reliable_redundant_hits_99_percent(report):
    assert report.multipath_reliable.redundancy == 2
    assert report.multipath_reliable.delivery_rate >= 0.99


def test_fire_and_forget_measurably_degrades(report):
    baseline = report.multipath_baseline.delivery_rate
    assert baseline < 0.95
    assert report.multipath_reliable.delivery_rate - baseline >= 0.05
    assert report.tree_baseline.delivery_rate \
        < report.tree_reliable.delivery_rate
    assert report.tree_reliable.delivery_rate >= 0.99


def test_reliability_costs_show_up_in_overheads(report):
    reliable = report.tree_reliable
    assert reliable.retries > 0
    assert reliable.acks_sent > 0
    assert reliable.heartbeats_sent > 0
    assert reliable.failures_detected > 0
    assert reliable.retry_overhead > 0
    baseline = report.tree_baseline
    assert baseline.retries == 0
    assert baseline.acks_sent == 0


def test_analytic_loss_model_tracks_measurement(report):
    # The paper's (1-(1-f)^d)^k model, fed the realized mean per-hop
    # failure rate, should land near the measured baseline rate.
    baseline = report.multipath_baseline
    assert baseline.analytic_rate == pytest.approx(
        baseline.delivery_rate, abs=0.08
    )
    # More redundancy can only help, in measurement as in the model.
    assert report.multipath_reliable.delivery_rate \
        >= baseline.delivery_rate


def test_chaos_run_is_deterministic():
    small = ChaosConfig(seed=11, duration=1.0, drain=1.5)
    first = run_tree_chaos(small, reliable=True)
    second = run_tree_chaos(small, reliable=True)
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    multi_a = run_multipath_chaos(small, reliable=True, redundancy=2)
    multi_b = run_multipath_chaos(small, reliable=True, redundancy=2)
    assert dataclasses.asdict(multi_a) == dataclasses.asdict(multi_b)


def test_different_seeds_inject_different_faults():
    a = run_tree_chaos(ChaosConfig(seed=1, duration=1.0, drain=1.5),
                       reliable=False)
    b = run_tree_chaos(ChaosConfig(seed=2, duration=1.0, drain=1.5),
                       reliable=False)
    assert dataclasses.asdict(a) != dataclasses.asdict(b)


def test_report_formatting_prints_both_rates(report):
    text = format_chaos_report(report)
    assert "delivery" in text
    assert "fire-and-forget" in text
    assert "reliable" in text
    assert f"{report.multipath_reliable.delivery_rate:.2f}" in text
    assert f"{report.multipath_baseline.delivery_rate:.2f}" in text
