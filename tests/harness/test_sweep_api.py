"""The public sweep APIs behind Figures 9-10 (reduced scale)."""

import pytest

from repro.harness.endtoend import throughput_latency_sweep


@pytest.fixture(scope="module")
def sweep():
    return throughput_latency_sweep(
        modes=("siena", "topic"), node_counts=(0, 6), events=100
    )


def test_one_result_per_cell(sweep):
    cells = {(r.mode, r.routing_nodes) for r in sweep}
    assert cells == {
        ("siena", 0), ("siena", 6), ("topic", 0), ("topic", 6),
    }


def test_results_are_physical(sweep):
    for result in sweep:
        assert result.throughput_events_per_s > 0
        assert result.latency_s > 0


def test_fig9_shape_holds_at_reduced_scale(sweep):
    by_cell = {(r.mode, r.routing_nodes): r for r in sweep}
    # Routing nodes raise throughput.
    assert (
        by_cell[("siena", 6)].throughput_events_per_s
        > by_cell[("siena", 0)].throughput_events_per_s
    )
    # PSGuard stays within a modest factor of Siena.
    drop = 1 - (
        by_cell[("topic", 6)].throughput_events_per_s
        / by_cell[("siena", 6)].throughput_events_per_s
    )
    assert -0.05 <= drop <= 0.15


def test_fig10_shape_holds_at_reduced_scale(sweep):
    by_cell = {(r.mode, r.routing_nodes): r for r in sweep}
    # Deeper trees pay more WAN hops.
    assert (
        by_cell[("siena", 6)].latency_s > by_cell[("siena", 0)].latency_s
    )
    # Crypto is invisible next to the WAN.
    ratio = (
        by_cell[("topic", 6)].latency_s / by_cell[("siena", 6)].latency_s
    )
    assert ratio == pytest.approx(1.0, abs=0.08)
