"""Crypto cost calibration."""

from repro.harness.timing import CryptoCosts, measure_crypto_costs


def test_measurement_returns_positive_costs():
    costs = measure_crypto_costs(iterations=500)
    for name in (
        "hash_s",
        "keyed_hash_s",
        "encrypt_256_s",
        "decrypt_256_s",
        "encrypt_key_s",
        "plain_match_s",
        "token_match_s",
        "serialize_s",
    ):
        assert getattr(costs, name) > 0, name


def test_measurement_cached_per_process():
    assert measure_crypto_costs(500) is measure_crypto_costs(500)


def test_cache_survives_interleaved_iteration_counts():
    # Regression: with lru_cache(maxsize=1) a call at another iteration
    # count evicted the first measurement, so alternating callers
    # re-benchmarked (and re-jittered) on every call.
    first = measure_crypto_costs(500)
    measure_crypto_costs(250)
    assert measure_crypto_costs(500) is first


def test_all_costs_sub_millisecond():
    """Every primitive is microsecond scale on any modern host."""
    costs = measure_crypto_costs(500)
    for name, value in vars(costs).items():
        assert value < 1e-3, (name, value)


def test_hash_us_conversion():
    costs = CryptoCosts(1e-6, 2e-6, 3e-6, 4e-6, 5e-6, 6e-6, 7e-6, 8e-6)
    assert costs.hash_us == 1.0
