"""Acceptance criteria for the recovery harness.

Under the issue's headline scenario -- two permanent broker kills plus a
1s partition of a live subtree -- the self-healing overlay must hold
delivery at 99%+ with ZERO duplicate deliveries surfaced at any
subscriber, repair both kills (finite convergence time in the metrics
snapshot), and refuse to excise the partitioned-but-live brokers.  All
numbers are seeded, so the bounds are exact.
"""

import dataclasses
import math

import pytest

from repro.harness.recovery import (
    RecoveryConfig,
    check_recovery,
    format_recovery_report,
    run_recovery,
)

_CONFIG = RecoveryConfig(seed=7)


@pytest.fixture(scope="module")
def result():
    return run_recovery(_CONFIG)


def test_delivery_gate_holds(result):
    assert result.delivery_rate >= 0.99
    assert result.expected > 0


def test_exactly_once_zero_surfaced_duplicates(result):
    assert result.duplicate_collisions == 0
    # ...while the suppression machinery demonstrably worked: repairs
    # and salvage re-sent events, and something absorbed them.
    assert result.duplicates_suppressed + result.events_salvaged > 0


def test_both_permanent_kills_repaired(result):
    assert result.repairs_attempted == 2
    assert result.repairs_converged == 2
    assert result.failed_repairs == 0
    assert result.reparented == 4  # two orphaned children per kill
    assert math.isfinite(result.max_convergence)
    assert 0 < result.max_convergence < 2.0


def test_partition_counted_as_false_alarm_not_repair(result):
    assert result.false_alarms >= 1
    # Only the two kills appear in the repair records.
    assert {record.dead for record in result.records} == set(
        _CONFIG.kill_brokers
    )


def test_journals_were_exercised(result):
    assert result.journal_records > 0
    assert result.events_salvaged >= 0
    assert result.dead_letters == 0


def test_gates_pass_and_catch_violations(result):
    assert check_recovery(_CONFIG, result) == []
    strict = dataclasses.replace(_CONFIG, min_delivery_rate=1.01)
    assert any(
        "delivery rate" in problem
        for problem in check_recovery(strict, result)
    )
    three_kills = dataclasses.replace(
        _CONFIG, kill_brokers=(1, 6, 5), kill_times=(0.1, 0.2, 0.3)
    )
    assert any(
        "repairs converged" in problem
        for problem in check_recovery(three_kills, result)
    )


def test_seeded_runs_are_identical(result):
    again = run_recovery(RecoveryConfig(seed=7))
    assert dataclasses.asdict(again) == dataclasses.asdict(result)


def test_report_renders_the_gated_numbers(result):
    report = format_recovery_report(_CONFIG, result)
    assert "Self-healing overlay" in report
    assert "Tree repairs" in report
    assert "convergence" in report
    assert "Metrics snapshot (recovery)" in report


def test_config_validation_rejects_broken_scenarios():
    with pytest.raises(ValueError):
        RecoveryConfig(kill_brokers=(0,), kill_times=(0.2,)).validate()
    with pytest.raises(ValueError):
        RecoveryConfig(num_brokers=7).validate()  # defaults out of range
    with pytest.raises(ValueError):
        RecoveryConfig(partition_group=(1, 3)).validate()  # kill overlap
    with pytest.raises(ValueError):
        RecoveryConfig(kill_times=(0.5,)).validate()  # length mismatch
