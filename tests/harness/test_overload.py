"""Acceptance criteria for the overload harness.

Under the issue's headline scenario -- a Zipf publisher storm at 4x the
sustainable rate with 10% high-priority traffic -- the flow-controlled
overlay must keep every queue inside its bound, deliver 99%+ of
high-priority events, degrade best-effort delivery gracefully (tracking
the analytic floor, no cliff), recover fully after the storm, stall on
credits behind a slow broker, and shed less when the publisher paces
itself with AIMD.  All numbers are seeded, so the bounds are exact.
"""

import dataclasses

import pytest

from repro.harness.overload import (
    OverloadConfig,
    check_overload,
    format_overload_report,
    run_overload,
)

_CONFIG = OverloadConfig(seed=7)


@pytest.fixture(scope="module")
def result():
    return run_overload(_CONFIG)


def test_queues_stayed_bounded(result):
    assert 0 < result.peak_ingress_depth <= _CONFIG.queue_capacity
    assert result.peak_egress_depth <= _CONFIG.queue_capacity
    # The service pump keeps the raw CPU backlog O(1) -- the unbounded
    # hop queue is gone from the flow-controlled path.
    assert result.max_node_backlog <= 4


def test_high_priority_rides_out_the_storm(result):
    storm = result.storm_phase
    assert storm.high_delivery >= _CONFIG.min_high_delivery
    # The storm genuinely overloaded the overlay.
    assert result.shed_events > 0
    assert storm.best_effort_delivery < 0.5


def test_degradation_is_graceful_not_a_cliff(result):
    ratios = [point.best_effort_delivery for point in result.sweep]
    assert ratios == sorted(ratios, reverse=True)
    for point in result.sweep:
        floor = _CONFIG.degradation_floor * point.ideal_best_effort
        assert point.best_effort_delivery >= floor
        assert point.high_delivery >= _CONFIG.min_high_delivery
    # At sustainable load nothing is shed at all.
    assert result.sweep[0].shed_events == 0


def test_post_storm_recovery_is_complete(result):
    recovery = result.recovery_phase
    assert recovery.overall_delivery >= _CONFIG.min_recovery_delivery
    assert result.queues_drained
    assert result.breaker_final == "closed"


def test_slow_broker_backpressures_on_credits(result):
    assert result.credit_stalls > 0
    assert result.credit_stall_seconds > 0.0
    assert result.slowdown_peak_depth <= _CONFIG.queue_capacity
    assert result.slowdown_high_delivery >= _CONFIG.min_high_delivery


def test_aimd_pacing_sheds_less_than_fixed_rate(result):
    assert result.static_shed_fraction > 0.0
    assert result.adaptive_shed_fraction < result.static_shed_fraction
    assert result.adaptive_offered < result.static_offered
    # The limiter converged below the storm rate.
    assert (
        result.adaptive_final_rate
        < _CONFIG.storm_factor * _CONFIG.capacity
    )


def test_gates_pass_and_catch_violations(result):
    assert check_overload(_CONFIG, result) == []
    broken = dataclasses.replace(_CONFIG, min_high_delivery=1.01)
    problems = check_overload(broken, result)
    assert any("high-priority" in problem for problem in problems)
    strict = dataclasses.replace(_CONFIG, degradation_floor=2.0)
    problems = check_overload(strict, result)
    assert any("cliff" in problem for problem in problems)


def test_seeded_runs_are_identical(result):
    again = run_overload(OverloadConfig(seed=7))
    assert dataclasses.asdict(again) == dataclasses.asdict(result)


def test_report_renders_the_gated_numbers(result):
    report = format_overload_report(_CONFIG, result)
    assert "Overload run: seed 7" in report
    assert "Storm timeline" in report
    assert "Graceful degradation sweep" in report
    assert "Backpressure and adaptation" in report
    assert "Metrics snapshot (overload)" in report


def test_config_validation_rejects_broken_scenarios():
    with pytest.raises(ValueError):
        OverloadConfig(storm_factor=20.0).validate()  # high slice > capacity
    with pytest.raises(ValueError):
        OverloadConfig(storm_factor=0.5).validate()  # not a storm
    with pytest.raises(ValueError):
        OverloadConfig(high_fraction=0.0).validate()
    with pytest.raises(ValueError):
        OverloadConfig(steady_factor=1.2, storm_factor=4.0).validate()
    with pytest.raises(ValueError):
        OverloadConfig(
            num_topics=4, topics_per_subscriber=8
        ).validate()
