"""Shared fixtures for the PSGuard test suite."""

from __future__ import annotations

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace


@pytest.fixture
def master_key() -> bytes:
    """A fixed KDC master key for reproducible derivations."""
    return bytes(range(16))


@pytest.fixture
def topic_key() -> bytes:
    """A fixed topic key."""
    return bytes(range(16, 32))


@pytest.fixture
def age_space() -> NumericKeySpace:
    """The paper's running example: an age attribute over (0, 127)."""
    return NumericKeySpace("age", 128)


@pytest.fixture
def medical_kdc(master_key: bytes) -> KDC:
    """A KDC with the paper's cancerTrail topic registered."""
    kdc = KDC(master_key=master_key)
    kdc.register_topic(
        "cancerTrail",
        CompositeKeySpace({"age": NumericKeySpace("age", 128)}),
    )
    return kdc
