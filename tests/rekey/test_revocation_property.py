"""Property: a revoked subscriber never opens post-revocation epochs.

Lazy revocation's safety half, stated over randomized shapes: whatever
the filter range, epoch length, revocation instant, and event stream, a
subscriber whose renewal was denied cannot open any event sealed in an
epoch after the last one it was authorized for.  (The liveness half --
pre-revocation epochs stay readable through the grace window -- is
asserted alongside.)
"""

from hypothesis import given, settings, strategies as st

from repro.core import KDC, CompositeKeySpace, NumericKeySpace, Publisher
from repro.core.renewal import RenewalManager, RenewalPolicy
from repro.core.subscriber import Subscriber
from repro.siena.events import Event
from repro.siena.filters import Filter

TOPIC = "t"


@settings(max_examples=40, deadline=None)
@given(
    epoch_length=st.floats(min_value=1.0, max_value=3600.0),
    low=st.integers(0, 15),
    span=st.integers(0, 15),
    revoke_after=st.integers(0, 2),
    extra_epochs=st.integers(1, 4),
    values=st.lists(st.integers(0, 15), min_size=1, max_size=8),
    lead_fraction=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(0, 2 ** 32 - 1),
)
def test_revoked_subscriber_never_opens_later_epochs(
    epoch_length,
    low,
    span,
    revoke_after,
    extra_epochs,
    values,
    lead_fraction,
    seed,
):
    high = min(15, low + span)
    kdc = KDC(master_key=seed.to_bytes(16, "big"))
    kdc.register_topic(
        TOPIC,
        CompositeKeySpace({"v": NumericKeySpace("v", 16)}),
        epoch_length=epoch_length,
    )
    publisher = Publisher("press", kdc)
    victim = Subscriber("victim")
    manager = RenewalManager(
        victim, kdc,
        renew_lead_time=RenewalPolicy(
            lead=lead_fraction * epoch_length
        ).lead,
    )

    base = kdc.epoch_of(TOPIC, 0.0) + 1
    start = kdc.epoch_start(TOPIC, base) + epoch_length / 2
    manager.add_subscription(
        Filter.numeric_range(TOPIC, "v", low, high), at_time=start
    )

    def seal(value, at_time):
        return publisher.publish(
            Event(
                {"topic": TOPIC, "v": value, "rec": "x"},
                publisher="press",
            ),
            secret_attributes={"rec"},
            at_time=at_time,
        )

    schema = kdc.config_for(TOPIC).schema

    # Authorized epochs flow: renew across revoke_after boundaries.
    for index in range(revoke_after):
        boundary = kdc.epoch_start(TOPIC, base + index + 1)
        manager.tick(boundary - manager.renew_lead_time)
    last_authorized_epoch = base + revoke_after

    kdc.revoke("victim", TOPIC)

    # Liveness half of lazy revocation: the current epoch's grant keeps
    # working until the boundary -- matching events still open.
    mid = kdc.epoch_start(TOPIC, last_authorized_epoch) + epoch_length / 2
    for value in values:
        sealed = seal(value, mid)
        opened = victim.receive(sealed, lambda _topic: schema, at_time=mid)
        if low <= value <= high:
            assert opened is not None
            assert opened.event["rec"] == "x"
        else:
            assert opened is None

    # Safety half: every later boundary's renewal is denied (exactly
    # once, then the subscription is cancelled); events sealed in any
    # epoch past the last authorized one must be unreadable.
    for index in range(extra_epochs):
        epoch = last_authorized_epoch + 1 + index
        boundary = kdc.epoch_start(TOPIC, epoch)
        manager.tick(boundary - manager.renew_lead_time)
        mid = boundary + epoch_length / 2
        for value in values:
            sealed = seal(value, mid)
            opened = victim.receive(
                sealed, lambda _topic: schema, at_time=mid
            )
            assert opened is None, (
                f"revoked subscriber opened an event sealed in epoch "
                f"{epoch} (authorized through {last_authorized_epoch})"
            )
    assert manager.stats.renewals_denied == 1
