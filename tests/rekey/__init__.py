"""Tests for the live key-lifecycle plane (:mod:`repro.rekey`)."""
