"""Epoch-boundary renewal under live TCP.

A grant expiring mid-stream must renew within the policy's lead/grace
window with zero dropped and zero unauthorized events -- the focused,
two-epoch version of the full churn harness.
"""

import asyncio
import random

from repro.core import KDC, CompositeKeySpace, NumericKeySpace
from repro.core.renewal import RenewalPolicy
from repro.rekey import KdcChannel
from repro.routing.tokens import TokenAuthority
from repro.rtnet.client import RtPublisher, RtSubscriber
from repro.rtnet.cluster import ClusterLauncher
from repro.siena.events import Event
from repro.siena.filters import Filter

TOPIC = "t"
EPOCH = 10.0


def _kdc():
    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        TOPIC,
        CompositeKeySpace({"v": NumericKeySpace("v", 16)}),
        epoch_length=EPOCH,
    )
    return kdc


def test_grant_expiring_mid_stream_renews_within_grace():
    kdc = _kdc()
    authority = TokenAuthority(kdc.master_key)
    policy = RenewalPolicy(lead=2.0, grace=1.0)
    rng = random.Random(3)
    opened_records = []

    async def scenario():
        async with ClusterLauncher(
            num_brokers=3, arity=2, kdc=kdc
        ) as cluster:
            channel = KdcChannel("alice-kdc", *cluster.kdc_address())
            await channel.connect()
            subscriber = RtSubscriber(
                "alice",
                *cluster.subscriber_address(),
                schema_lookup=lambda t: kdc.config_for(t).schema,
                authority=authority,
                kdc_channel=channel,
                renewal=policy,
            )
            await subscriber.connect()
            publisher = RtPublisher(
                "press", *cluster.publisher_address(), kdc,
                authority=authority,
            )
            await publisher.connect()

            base = kdc.epoch_of(TOPIC, 0.0) + 1
            start = kdc.epoch_start(TOPIC, base) + EPOCH / 2
            channel.advance(start)
            await subscriber.join(
                Filter.numeric_range(TOPIC, "v", 0, 15), at_time=start
            )

            async def publish(tag, at_time):
                await publisher.publish(
                    Event(
                        {"topic": TOPIC, "v": rng.randrange(16),
                         "rec": tag},
                        publisher="press",
                    ),
                    secret_attributes={"rec"},
                    at_time=at_time,
                )

            # Old-epoch traffic.
            for n in range(4):
                await publish(f"pre{n}", start + 0.1 * n)
            await publisher.settle()
            await subscriber.settle()

            # The grant expires at the next boundary; announce the
            # rollover inside the lead window -- the renewal tick runs
            # from the REKEY handler and fetches next-epoch keys.
            boundary = kdc.epoch_start(TOPIC, base + 1)
            await cluster.kdc_server.roll_epoch(
                TOPIC, boundary - policy.lead / 2
            )
            await subscriber.settle_rekey()

            # New-epoch traffic flows without a delivery gap.
            for n in range(4):
                await publish(f"post{n}", boundary + 0.1 * n)
            await publisher.settle()
            await subscriber.settle()

            opened_records.extend(
                result.event["rec"] for result in subscriber.opened
            )
            stats = subscriber.renewal.stats
            assert stats.renewals == 2  # join + boundary renewal
            assert stats.renewal_failures == 0
            assert stats.renewals_denied == 0
            assert subscriber.unreadable == 0  # nothing dropped as noise
            assert publisher.unacked == 0
            await channel.close()
            await subscriber.close()
            await publisher.close()

    asyncio.run(scenario())
    assert sorted(opened_records) == sorted(
        [f"pre{n}" for n in range(4)] + [f"post{n}" for n in range(4)]
    )


def test_full_churn_harness_passes_its_gates():
    from repro.harness.rekey import (
        RekeyChaosConfig,
        check_rekey,
        run_rekey_chaos,
    )

    config = RekeyChaosConfig(survivors=1, events_per_epoch=4)
    result = run_rekey_chaos(config)
    assert check_rekey(config, result) == []
    assert result.rollovers_completed == 3
    assert result.unauthorized_opens() == 0
    assert result.survivor_delivery_ratio() == 1.0
