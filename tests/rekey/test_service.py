"""KdcServer/KdcChannel loopback round trips: grant, deny, revoke, rekey."""

import asyncio

import pytest

from repro.core import KDC, CompositeKeySpace, NumericKeySpace
from repro.errors import GrantDenied
from repro.rekey import KdcChannel, KdcServer
from repro.siena.filters import Filter

TOPIC = "t"


def _kdc(epoch_length=10.0):
    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        TOPIC,
        CompositeKeySpace({"v": NumericKeySpace("v", 16)}),
        epoch_length=epoch_length,
    )
    return kdc


def _run(coroutine):
    return asyncio.run(coroutine)


async def _dial(kdc):
    server = KdcServer(kdc)
    await server.start()
    channel = KdcChannel("alice-kdc", *server.address)
    await channel.connect()
    return server, channel


def test_grant_round_trip_installs_via_callback():
    async def scenario():
        kdc = _kdc()
        server, channel = await _dial(kdc)
        try:
            grants, errors = [], []
            channel.authorize(
                "alice",
                Filter.numeric_range(TOPIC, "v", 0, 15),
                at_time=5.0,
                on_grant=grants.append,
                on_error=errors.append,
            )
            await channel.settle_grants()
            assert errors == []
            assert len(grants) == 1
            assert grants[0].topic == TOPIC
            assert grants[0].epoch == kdc.epoch_of(TOPIC, 5.0)
            assert channel.rekey_stats.grants_installed == 1
            assert len(channel.grant_latencies_s) == 1
        finally:
            await channel.close()
            await server.stop()

    _run(scenario())


def test_denied_grant_surfaces_grant_denied():
    async def scenario():
        kdc = _kdc()
        kdc.revoke("mallory", TOPIC)
        server, channel = await _dial(kdc)
        try:
            grants, errors = [], []
            channel.authorize(
                "mallory",
                Filter.numeric_range(TOPIC, "v", 0, 15),
                on_grant=grants.append,
                on_error=errors.append,
            )
            await channel.settle_grants()
            assert grants == []
            assert len(errors) == 1
            assert isinstance(errors[0], GrantDenied)
            assert isinstance(errors[0], PermissionError)
            assert channel.rekey_stats.grants_denied == 1
        finally:
            await channel.close()
            await server.stop()

    _run(scenario())


def test_revoke_round_trip_then_denial():
    async def scenario():
        kdc = _kdc()
        server, channel = await _dial(kdc)
        try:
            await channel.revoke("bob", TOPIC)
            assert channel.rekey_stats.revokes_sent == 1
            with pytest.raises(GrantDenied):
                kdc.authorize("bob", Filter.numeric_range(TOPIC, "v", 0, 15))
        finally:
            await channel.close()
            await server.stop()

    _run(scenario())


def test_rekey_broadcast_advances_the_logical_clock():
    async def scenario():
        kdc = _kdc(epoch_length=10.0)
        server, channel = await _dial(kdc)
        try:
            seen = []
            channel.on_rekey.append(seen.append)
            boundary = kdc.epoch_start(TOPIC, kdc.epoch_of(TOPIC, 0.0) + 1)
            epoch = await server.roll_epoch(TOPIC, boundary)
            # The broadcast is one frame; settle via the server's own
            # PING answering (the channel is source-routed to itself).
            await channel.settle()
            assert len(seen) == 1
            assert seen[0].topic == TOPIC
            assert seen[0].epoch == epoch
            assert channel.now() == boundary
            assert channel.rekey_stats.rekeys_seen == 1
        finally:
            await channel.close()
            await server.stop()

    _run(scenario())


def test_stale_grant_request_answers_unavailable_without_killing_session():
    async def scenario():
        kdc = _kdc()
        server, channel = await _dial(kdc)
        try:
            grants, errors = [], []
            # Unknown topic: the server answers GRANT_UNAVAILABLE
            # instead of dropping the connection.
            channel.authorize(
                "alice",
                Filter.numeric_range("no-such-topic", "v", 0, 15),
                on_grant=grants.append,
                on_error=errors.append,
            )
            await channel.settle_grants()
            assert grants == []
            assert len(errors) == 1
            # The session survives: a good request still completes.
            channel.authorize(
                "alice",
                Filter.numeric_range(TOPIC, "v", 0, 15),
                on_grant=grants.append,
                on_error=errors.append,
            )
            await channel.settle_grants()
            assert len(grants) == 1
        finally:
            await channel.close()
            await server.stop()

    _run(scenario())
