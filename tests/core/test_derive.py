"""Cache-aware derivation walks."""

import pytest

from repro.core.cache import KeyCache
from repro.core.category import CategoryKeySpace, CategoryTree
from repro.core.derive import (
    STRING_END,
    cache_namespace,
    cached_walk,
    derivation_step,
    element_path,
    value_path,
)
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace

TOPIC_KEY = bytes(range(16))


def test_derivation_step_matches_nakt():
    space = NumericKeySpace("age", 128)
    root = space.root_key(TOPIC_KEY)
    expected = space.node_key(TOPIC_KEY, KTID.parse("01"))
    assert derivation_step(derivation_step(root, 0), 1) == expected


def test_derivation_step_rejects_garbage():
    with pytest.raises(TypeError):
        derivation_step(bytes(16), 3.14)


def test_value_path_matches_all_spaces():
    numeric = NumericKeySpace("age", 128)
    assert value_path(numeric, 25) == tuple(numeric.ktid(25).digits)
    tree = CategoryTree.from_spec("r", {"a": {"b": {}}})
    category = CategoryKeySpace("kind", tree)
    assert value_path(category, "b") == ("r", "a", "b")
    strings = StringKeySpace("s")
    assert value_path(strings, "ab") == ("a", "b", STRING_END)
    suffixes = StringKeySpace("s", suffix_mode=True)
    assert value_path(suffixes, "ab") == ("b", "a", STRING_END)


def test_element_path_for_grants():
    numeric = NumericKeySpace("age", 128)
    element = numeric.cover(0, 63)[0]
    assert element_path(numeric, element) == tuple(element.digits)
    strings = StringKeySpace("s")
    assert element_path(strings, "ab") == ("a", "b")


def test_cached_walk_without_cache_matches_direct():
    space = NumericKeySpace("age", 128)
    root = space.root_key(TOPIC_KEY)
    leaf = space.ktid(99)
    key, operations = cached_walk(
        None, ("ns",), (), root, tuple(leaf.digits)
    )
    assert key == space.node_key(TOPIC_KEY, leaf)
    assert operations == space.depth


def test_cached_walk_reuses_intermediates():
    space = NumericKeySpace("age", 128)
    root = space.root_key(TOPIC_KEY)
    cache = KeyCache(64 * 1024)
    namespace = cache_namespace("t", "age", 0)
    first, cold_ops = cached_walk(
        cache, namespace, (), root, tuple(space.ktid(64).digits)
    )
    second, warm_ops = cached_walk(
        cache, namespace, (), root, tuple(space.ktid(65).digits)
    )
    assert cold_ops == space.depth
    assert warm_ops < cold_ops
    assert second == space.node_key(TOPIC_KEY, space.ktid(65))


def test_cached_walk_exact_hit_is_free():
    space = NumericKeySpace("age", 128)
    root = space.root_key(TOPIC_KEY)
    cache = KeyCache(64 * 1024)
    namespace = cache_namespace("t", "age", 0)
    target = tuple(space.ktid(5).digits)
    cached_walk(cache, namespace, (), root, target)
    _, operations = cached_walk(cache, namespace, (), root, target)
    assert operations == 0


def test_cached_walk_from_mid_tree_grant():
    space = NumericKeySpace("age", 128)
    grants = space.authorization_keys(TOPIC_KEY, 32, 63)
    (element, key), = grants
    leaf = space.ktid(40)
    derived, operations = cached_walk(
        None,
        ("ns",),
        tuple(element.digits),
        key,
        tuple(leaf.digits),
    )
    assert derived == space.node_key(TOPIC_KEY, leaf)
    assert operations == leaf.depth - element.depth


def test_cached_walk_rejects_non_prefix_start():
    with pytest.raises(ValueError):
        cached_walk(None, ("ns",), (1,), bytes(16), (0, 1))


def test_namespace_separates_epochs():
    assert cache_namespace("t", "age", 0) != cache_namespace("t", "age", 1)
    assert cache_namespace("t", "age", b"abcdef") == cache_namespace(
        "t", "age", b"abcd"
    )


def test_namespaces_do_not_collide_across_attributes():
    cache = KeyCache(64 * 1024)
    cache.put(cache_namespace("t", "age", 0) + (1,), b"A" * 16)
    assert (
        cache.deepest_ancestor(
            cache_namespace("t", "salary", 0) + (1, 0),
            floor=len(cache_namespace("t", "salary", 0)),
        )
        is None
    )
