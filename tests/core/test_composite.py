"""Composite key space: schemas, combination, grants for clauses."""

import pytest

from repro.core.composite import (
    CompositeKeySpace,
    combine_keys,
    filter_as_clauses,
)
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op

TOPIC_KEY = bytes(range(16))


class TestCombineKeys:
    def test_single_component_is_identity(self):
        assert combine_keys({"a": b"k" * 8}) == b"k" * 8

    def test_order_independent(self):
        keys = {"a": bytes(16), "b": bytes(range(16))}
        assert combine_keys(keys) == combine_keys(dict(reversed(keys.items())))

    def test_name_sensitive(self):
        assert combine_keys(
            {"a": bytes(16), "b": bytes(range(16))}
        ) != combine_keys({"a": bytes(16), "c": bytes(range(16))})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_keys({})

    def test_combined_differs_from_components(self):
        keys = {"a": bytes(16), "b": bytes(range(16))}
        combined = combine_keys(keys)
        assert combined not in keys.values()


class TestSchema:
    def test_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CompositeKeySpace({"age": NumericKeySpace("salary", 10)})

    def test_attribute_names(self):
        schema = CompositeKeySpace(
            {
                "age": NumericKeySpace("age", 128),
                "name": StringKeySpace("name"),
            }
        )
        assert schema.attribute_names() == {"age", "name"}

    def test_space_for_unknown_raises(self):
        schema = CompositeKeySpace({})
        with pytest.raises(KeyError):
            schema.space_for("age")

    def test_event_component_type_checks(self):
        schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
        with pytest.raises(TypeError):
            schema.event_component(TOPIC_KEY, "age", "not-a-number")


class TestAuthorizationComponents:
    def test_numeric_range_constraints_merged(self):
        schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
        clause = Filter.of(
            Constraint("topic", Op.EQ, "t"),
            Constraint("age", Op.GE, 16),
            Constraint("age", Op.LE, 31),
        )
        components, hash_ops = schema.authorization_components(
            TOPIC_KEY, clause
        )
        assert len(components) == 1
        assert isinstance(components[0].element, KTID)
        assert hash_ops > 0

    def test_eq_constraint_becomes_point_range(self):
        schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
        clause = Filter.of(
            Constraint("topic", Op.EQ, "t"), Constraint("age", Op.EQ, 25)
        )
        components, _ = schema.authorization_components(TOPIC_KEY, clause)
        space = schema.space_for("age")
        assert components[0].element == space.ktid(25)

    def test_strict_inequalities_tightened_by_least_count(self):
        schema = CompositeKeySpace(
            {"age": NumericKeySpace("age", 128, least_count=4)}
        )
        clause = Filter.of(
            Constraint("topic", Op.EQ, "t"),
            Constraint("age", Op.GT, 16),
            Constraint("age", Op.LT, 64),
        )
        components, _ = schema.authorization_components(TOPIC_KEY, clause)
        space = schema.space_for("age")
        covered = [space.node_range(c.element) for c in components]
        assert min(low for low, _ in covered) >= 20
        assert max(high for _, high in covered) <= 63

    def test_unsupported_numeric_operator_rejected(self):
        schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
        clause = Filter.of(
            Constraint("topic", Op.EQ, "t"), Constraint("age", Op.NE, 25)
        )
        with pytest.raises(ValueError, match="not securable"):
            schema.authorization_components(TOPIC_KEY, clause)

    def test_string_wrong_operator_rejected(self):
        schema = CompositeKeySpace({"name": StringKeySpace("name")})
        clause = Filter.of(
            Constraint("topic", Op.EQ, "t"),
            Constraint("name", Op.SUFFIX, "x"),
        )
        with pytest.raises(ValueError):
            schema.authorization_components(TOPIC_KEY, clause)

    def test_undeclared_attribute_constraints_skipped(self):
        schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
        clause = Filter.of(
            Constraint("topic", Op.EQ, "t"),
            Constraint("age", Op.GE, 0),
            Constraint("region", Op.EQ, "EU"),
        )
        components, _ = schema.authorization_components(TOPIC_KEY, clause)
        assert {c.attribute for c in components} == {"age"}


class TestClauses:
    def test_single_filter_is_one_clause(self):
        subscription = Filter.topic("t")
        assert filter_as_clauses(subscription) == [subscription]

    def test_list_preserved(self):
        filters = [Filter.topic("t"), Filter.topic("t")]
        assert filter_as_clauses(filters) == filters

    def test_empty_disjunction_rejected(self):
        with pytest.raises(ValueError):
            filter_as_clauses([])

    def test_non_filter_clause_rejected(self):
        with pytest.raises(TypeError):
            filter_as_clauses([Filter.topic("t"), "not a filter"])
