"""The numeric attribute key tree: covers, keys, and security properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace

TOPIC_KEY = bytes(range(16))


class TestGeometry:
    def test_paper_figure_1(self):
        """R = (0, 31), lc = 4: depth 3 and ktid(22) = 101."""
        space = NumericKeySpace("num", 32, least_count=4)
        assert space.depth == 3
        assert str(space.ktid(22)) == "101"

    def test_section_52_workload_tree(self):
        """Range 256, least count 4: height 6 (Section 5.2)."""
        space = NumericKeySpace("value", 256, least_count=4)
        assert space.depth == 6
        assert space.leaf_count == 64

    def test_value_bounds(self):
        space = NumericKeySpace("num", 32)
        with pytest.raises(ValueError):
            space.ktid(32)
        with pytest.raises(ValueError):
            space.ktid(-1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NumericKeySpace("n", 0)
        with pytest.raises(ValueError):
            NumericKeySpace("n", 10, least_count=0)
        with pytest.raises(ValueError):
            NumericKeySpace("n", 10, least_count=11)
        with pytest.raises(ValueError):
            NumericKeySpace("n", 10, arity=1)

    def test_node_range(self):
        space = NumericKeySpace("num", 32)
        assert space.node_range(KTID.root()) == (0, 31)
        assert space.node_range(KTID.parse("1")) == (16, 31)
        assert space.node_range(KTID.parse("01")) == (8, 15)

    def test_node_range_with_least_count(self):
        space = NumericKeySpace("num", 32, least_count=4)
        assert space.node_range(space.ktid(22)) == (20, 23)

    def test_node_range_rejects_foreign_ktid(self):
        space = NumericKeySpace("num", 32)
        with pytest.raises(ValueError):
            space.node_range(KTID((0,), arity=3))


class TestCover:
    def test_paper_example_8_19(self):
        """Section 3.1: SS for (8, 19) is {(8, 15), (16, 19)}."""
        space = NumericKeySpace("num", 32)
        ranges = [space.node_range(k) for k in space.cover(8, 19)]
        assert ranges == [(8, 15), (16, 19)]

    def test_full_range_is_root(self):
        space = NumericKeySpace("num", 32)
        assert space.cover(0, 31) == [KTID.root()]

    def test_single_value(self):
        space = NumericKeySpace("num", 32)
        cover = space.cover(5, 5)
        assert len(cover) == 1
        assert space.node_range(cover[0]) == (5, 5)

    def test_empty_range_rejected(self):
        space = NumericKeySpace("num", 32)
        with pytest.raises(ValueError):
            space.cover(10, 5)

    def test_exhaustive_correctness_small_tree(self):
        """Every cover exactly spans its range, disjointly, within bound."""
        space = NumericKeySpace("num", 32)
        for low in range(32):
            for high in range(low, 32):
                cover = space.cover(low, high)
                ranges = sorted(space.node_range(k) for k in cover)
                # Contiguous, disjoint, exactly spanning [low, high].
                assert ranges[0][0] == low
                assert ranges[-1][1] == high
                for previous, following in zip(ranges, ranges[1:]):
                    assert following[0] == previous[1] + 1
                assert len(cover) <= space.max_cover_size()

    def test_bound_formula(self):
        space = NumericKeySpace("num", 1024)
        assert space.max_cover_size() == 2 * 10 - 2

    def test_least_count_snaps_outward(self):
        space = NumericKeySpace("num", 32, least_count=4)
        ranges = [space.node_range(k) for k in space.cover(5, 9)]
        assert ranges[0][0] == 4
        assert ranges[-1][1] == 11


class TestKeys:
    def test_encryption_key_is_leaf_key(self):
        space = NumericKeySpace("age", 128)
        leaf, key = space.encryption_key(TOPIC_KEY, 25)
        assert leaf == space.ktid(25)
        assert key == space.node_key(TOPIC_KEY, leaf)

    def test_matching_subscription_derives_encryption_key(self):
        space = NumericKeySpace("age", 128)
        grants = space.authorization_keys(TOPIC_KEY, 20, 60)
        leaf, expected = space.encryption_key(TOPIC_KEY, 33)
        derivable = [
            NumericKeySpace.derive_encryption_key(grant, leaf)[0]
            for grant in grants
            if grant[0].is_prefix_of(leaf)
        ]
        assert derivable == [expected]

    def test_non_matching_subscription_has_no_ancestor_element(self):
        space = NumericKeySpace("age", 128)
        grants = space.authorization_keys(TOPIC_KEY, 20, 60)
        leaf, _ = space.encryption_key(TOPIC_KEY, 61)
        assert not any(k.is_prefix_of(leaf) for k, _ in grants)

    def test_derivation_refused_for_non_ancestor(self):
        space = NumericKeySpace("age", 128)
        grant = (space.ktid(20).parent(), b"\x00" * 16)
        with pytest.raises(ValueError):
            NumericKeySpace.derive_encryption_key(grant, space.ktid(120))

    def test_sibling_keys_differ(self):
        space = NumericKeySpace("age", 128)
        _, first = space.encryption_key(TOPIC_KEY, 0)
        _, second = space.encryption_key(TOPIC_KEY, 1)
        assert first != second

    def test_keys_differ_across_topics(self):
        space = NumericKeySpace("age", 128)
        _, first = space.encryption_key(TOPIC_KEY, 25)
        _, second = space.encryption_key(bytes(16), 25)
        assert first != second

    def test_keys_differ_across_attributes(self):
        first = NumericKeySpace("age", 128)
        second = NumericKeySpace("salary", 128)
        assert (
            first.encryption_key(TOPIC_KEY, 25)[1]
            != second.encryption_key(TOPIC_KEY, 25)[1]
        )

    def test_derivation_cost_counts_levels(self):
        space = NumericKeySpace("age", 128)
        root_grant = (KTID.root(), space.node_key(TOPIC_KEY, KTID.root()))
        leaf = space.ktid(25)
        _, operations = NumericKeySpace.derive_encryption_key(
            root_grant, leaf
        )
        assert operations == space.depth


@settings(max_examples=60, deadline=None)
@given(
    range_exp=st.integers(3, 9),
    low=st.integers(0, 400),
    span=st.integers(0, 400),
    value=st.integers(0, 511),
)
def test_matching_iff_derivable_property(range_exp, low, span, value):
    """The central security property of Section 3.1.

    ``K(e)`` is derivable from the grant iff ``low <= v <= high``.
    """
    size = 2**range_exp
    space = NumericKeySpace("num", size)
    low = min(low, size - 1)
    high = min(low + span, size - 1)
    value = min(value, size - 1)
    grants = space.authorization_keys(TOPIC_KEY, low, high)
    leaf, expected = space.encryption_key(TOPIC_KEY, value)
    ancestors = [g for g in grants if g[0].is_prefix_of(leaf)]
    if low <= value <= high:
        assert len(ancestors) == 1
        derived, _ = NumericKeySpace.derive_encryption_key(
            ancestors[0], leaf
        )
        assert derived == expected
    else:
        assert not ancestors


@settings(max_examples=40, deadline=None)
@given(
    arity=st.integers(2, 4),
    low=st.integers(0, 80),
    span=st.integers(0, 80),
)
def test_cover_within_bound_for_any_arity(arity, low, span):
    space = NumericKeySpace("num", 81, arity=arity)
    high = min(low + span, 80)
    low = min(low, 80)
    if low > high:
        low, high = high, low
    cover = space.cover(low, high)
    assert len(cover) <= 2 * (arity - 1) * space.depth + 1
    ranges = sorted(space.node_range(k) for k in cover)
    assert ranges[0][0] <= low and ranges[-1][1] >= high
