"""The key cache: LRU eviction, byte budget, deepest-ancestor lookup."""

import pytest

from repro.core.cache import KeyCache

KEY = bytes(16)


def _path(*parts):
    return tuple(parts)


def test_put_get():
    cache = KeyCache(1024)
    cache.put(_path("ns", 1, 0), KEY)
    assert cache.get(_path("ns", 1, 0)) == KEY


def test_miss_returns_none_and_counts():
    cache = KeyCache(1024)
    assert cache.get(_path("missing")) is None
    assert cache.misses == 1
    assert cache.hits == 0


def test_hit_rate():
    cache = KeyCache(1024)
    cache.put(_path("a"), KEY)
    cache.get(_path("a"))
    cache.get(_path("b"))
    assert cache.hit_rate == 0.5


def test_zero_capacity_accepts_nothing():
    cache = KeyCache(0)
    cache.put(_path("a"), KEY)
    assert len(cache) == 0


def test_eviction_under_byte_budget():
    cache = KeyCache(KeyCache.entry_cost(_path("x", 0)) * 3)
    for index in range(5):
        cache.put(_path("x", index), bytes([index] * 16))
    assert len(cache) <= 3
    assert cache.size_bytes <= cache.capacity_bytes


def test_lru_order_eviction():
    capacity = KeyCache.entry_cost(_path("x", 0)) * 2
    cache = KeyCache(capacity)
    cache.put(_path("x", 0), KEY)
    cache.put(_path("x", 1), KEY)
    cache.get(_path("x", 0))          # refresh 0
    cache.put(_path("x", 2), KEY)     # evicts 1
    assert cache.get(_path("x", 0)) == KEY
    assert cache.get(_path("x", 1)) is None


def test_size_bytes_tracks_contents():
    cache = KeyCache(10_000)
    assert cache.size_bytes == 0
    cache.put(_path("a", 1), KEY)
    first = cache.size_bytes
    assert first == KeyCache.entry_cost(_path("a", 1))
    cache.put(_path("a", 1), KEY)  # refresh, not growth
    assert cache.size_bytes == first


def test_deepest_ancestor_prefers_longest():
    cache = KeyCache(10_000)
    cache.put(_path("ns", 1), b"k1" * 8)
    cache.put(_path("ns", 1, 0), b"k2" * 8)
    found = cache.deepest_ancestor(_path("ns", 1, 0, 1))
    assert found == (_path("ns", 1, 0), b"k2" * 8)


def test_deepest_ancestor_exact_hit():
    cache = KeyCache(10_000)
    cache.put(_path("ns", 1, 0), KEY)
    found = cache.deepest_ancestor(_path("ns", 1, 0))
    assert found == (_path("ns", 1, 0), KEY)


def test_deepest_ancestor_floor_excludes_shallow_entries():
    cache = KeyCache(10_000)
    cache.put(_path("ns",), KEY)
    assert cache.deepest_ancestor(_path("ns", 1, 0), floor=2) is None


def test_deepest_ancestor_counts_hits_and_misses():
    cache = KeyCache(10_000)
    cache.put(_path("ns", 1), KEY)
    cache.deepest_ancestor(_path("ns", 1, 0, 1))
    cache.deepest_ancestor(_path("other", 9))
    assert cache.hits == 1
    assert cache.misses == 1


def test_clear_resets_everything():
    cache = KeyCache(10_000)
    cache.put(_path("a"), KEY)
    cache.get(_path("a"))
    cache.clear()
    assert len(cache) == 0
    assert cache.size_bytes == 0
    assert cache.hits == 0
    assert cache.hit_rate == 0.0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        KeyCache(-1)


def test_oversized_entry_skipped_without_evicting():
    small = KeyCache(KeyCache.entry_cost(_path("a")) + 1)
    small.put(_path("a"), KEY)
    huge_path = _path("x" * 1000)
    small.put(huge_path, KEY)
    assert small.get(_path("a")) == KEY
    assert small.get(huge_path) is None


def test_instrument_registers_counters_and_size_gauge():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    cache = KeyCache(KeyCache.entry_cost(_path("a")) * 2).instrument(
        registry, "key_cache", role="subscriber"
    )
    cache.put(_path("a"), KEY)
    cache.get(_path("a"))
    cache.get(_path("nope"))
    cache.put(_path("b"), KEY)
    cache.put(_path("c"), KEY)  # over budget: evicts the LRU entry
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    assert counters['key_cache_hits_total{role="subscriber"}'] == 1
    assert counters['key_cache_misses_total{role="subscriber"}'] == 1
    assert counters['key_cache_evictions_total{role="subscriber"}'] == 1
    gauge = snapshot["gauges"]['key_cache_size_bytes{role="subscriber"}']
    assert gauge == cache.size_bytes > 0


def test_instrument_does_not_replay_prior_totals():
    from repro.obs.metrics import MetricsRegistry

    cache = KeyCache(10_000)
    cache.put(_path("a"), KEY)
    cache.get(_path("a"))  # pre-instrumentation hit stays local-only
    registry = MetricsRegistry()
    cache.instrument(registry, "key_cache")
    counters = registry.snapshot()["counters"]
    assert counters.get("key_cache_hits_total", 0) == 0
    assert registry.snapshot()["gauges"]["key_cache_size_bytes"] == (
        cache.size_bytes
    )
    cache.get(_path("a"))
    assert registry.snapshot()["counters"]["key_cache_hits_total"] == 1
    assert cache.hits == 2


def test_stats_summary():
    cache = KeyCache(10_000)
    cache.put(_path("a"), KEY)
    cache.get(_path("a"))
    cache.get(_path("b"))
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)
    assert stats["size_bytes"] == cache.size_bytes
