"""Fuzzing the wire decoders: garbage must fail loudly, never silently."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.wire import (
    _MAGIC_EVENT,
    _MAGIC_GRANT,
    decode_grant,
    decode_sealed_event,
    encode_grant,
)
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op


@settings(max_examples=150, deadline=None)
@given(garbage=st.binary(max_size=200))
def test_grant_decoder_never_accepts_garbage(garbage):
    try:
        grant = decode_grant(_MAGIC_GRANT + garbage)
    except Exception:
        return  # loud failure is the contract
    # The astronomically unlikely parse must still be a coherent grant.
    assert grant.key_count() >= 0


@settings(max_examples=150, deadline=None)
@given(garbage=st.binary(max_size=200))
def test_event_decoder_never_accepts_garbage(garbage):
    try:
        sealed = decode_sealed_event(_MAGIC_EVENT + garbage)
    except Exception:
        return
    assert isinstance(sealed.ciphertext, bytes)


@settings(max_examples=60, deadline=None)
@given(
    cut=st.integers(min_value=1, max_value=50),
)
def test_truncated_grants_always_rejected(cut):
    kdc = KDC(master_key=bytes(16))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    data = encode_grant(
        kdc.authorize("S", Filter.numeric_range("t", "v", 5, 40))
    )
    truncated = data[: max(4, len(data) - cut)]
    if truncated == data:
        return
    with pytest.raises(Exception):
        decode_grant(truncated)


def test_float_constraint_roundtrip():
    kdc = KDC(master_key=bytes(16))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    grant = kdc.authorize(
        "S",
        Filter.of(
            Constraint("topic", Op.EQ, "t"),
            Constraint("v", Op.GE, 1.5),
            Constraint("v", Op.LE, 40.25),
            Constraint("score", Op.GT, 0.125),
        ),
    )
    decoded = decode_grant(encode_grant(grant))
    assert decoded == grant
    values = {
        (c.name, c.op): c.value
        for clause in decoded.clauses
        for c in clause.clause
    }
    assert values[("v", Op.GE)] == 1.5
    assert values[("score", Op.GT)] == 0.125


# -- hardened decode contract: ValueError only, trailing bytes rejected --------


def _sample_grant():
    kdc = KDC(master_key=bytes(16))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    return kdc.authorize("S", Filter.numeric_range("t", "v", 5, 40))


def _sample_sealed():
    from repro.core.publisher import Publisher
    from repro.siena.events import Event

    kdc = KDC(master_key=bytes(16))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    return Publisher("P", kdc).publish(
        Event({"topic": "t", "v": 9, "body": "x"}, publisher="P"),
        secret_attributes={"body"},
    )


def test_trailing_bytes_after_grant_rejected():
    from repro.core.wire import encode_sealed_event

    data = encode_grant(_sample_grant())
    with pytest.raises(ValueError, match="trailing bytes"):
        decode_grant(data + b"\x00")
    sealed = encode_sealed_event(_sample_sealed())
    with pytest.raises(ValueError, match="trailing bytes"):
        decode_sealed_event(sealed + b"junk")


@settings(max_examples=150, deadline=None)
@given(
    position=st.integers(min_value=4, max_value=10 ** 6),
    bit=st.integers(0, 7),
)
def test_grant_bit_flips_raise_value_error_only(position, bit):
    data = bytearray(encode_grant(_sample_grant()))
    position = 4 + position % (len(data) - 4)  # keep the magic intact
    data[position] ^= 1 << bit
    try:
        decoded = decode_grant(bytes(data))
    except ValueError:
        return  # the only exception type the contract allows
    # A surviving parse must still be structurally coherent.
    assert decoded.key_count() >= 0


@settings(max_examples=150, deadline=None)
@given(
    position=st.integers(min_value=4, max_value=10 ** 6),
    bit=st.integers(0, 7),
)
def test_sealed_event_bit_flips_raise_value_error_only(position, bit):
    from repro.core.wire import encode_sealed_event

    data = bytearray(encode_sealed_event(_sample_sealed()))
    position = 4 + position % (len(data) - 4)
    data[position] ^= 1 << bit
    try:
        sealed = decode_sealed_event(bytes(data))
    except ValueError:
        return
    assert isinstance(sealed.ciphertext, bytes)


@settings(max_examples=100, deadline=None)
@given(cut=st.integers(min_value=1, max_value=60))
def test_truncated_sealed_events_raise_value_error_only(cut):
    from repro.core.wire import encode_sealed_event

    data = encode_sealed_event(_sample_sealed())
    truncated = data[: max(4, len(data) - cut)]
    if truncated == data:
        return
    with pytest.raises(ValueError):
        decode_sealed_event(truncated)


def test_legacy_pse1_events_still_decode():
    from dataclasses import replace

    from repro.core.wire import _MAGIC_EVENT_V1, encode_sealed_event

    sealed = _sample_sealed()
    # A PSE1 frame is the PSE2 body without the flags/envelope block.
    unstamped = replace(sealed, origin=None, sequence=None)
    data = encode_sealed_event(unstamped)
    legacy = _MAGIC_EVENT_V1 + data[5:]
    decoded = decode_sealed_event(legacy)
    assert decoded.origin is None
    assert decoded.ciphertext == unstamped.ciphertext


# -- the filter codec (SUBSCRIBE/UNSUBSCRIBE control frames) -------------------


_NUMERIC_FILTERS = st.builds(
    lambda low, high: Filter.numeric_range("t", "v", min(low, high),
                                           max(low, high)),
    st.integers(0, 63),
    st.integers(0, 63),
)


@settings(max_examples=60, deadline=None)
@given(subscription=_NUMERIC_FILTERS)
def test_filter_roundtrip(subscription):
    from repro.core.wire import decode_filter, encode_filter

    assert decode_filter(encode_filter(subscription)) == subscription


def test_filter_roundtrip_preserves_value_types():
    from repro.core.wire import decode_filter, encode_filter

    subscription = Filter.of(
        Constraint("topic", Op.EQ, "t"),
        Constraint("v", Op.GE, 1.5),
        Constraint("n", Op.LT, 7),
        Constraint("flag", Op.ANY, None),
    )
    decoded = decode_filter(encode_filter(subscription))
    assert decoded == subscription
    values = {c.name: c.value for c in decoded}
    assert isinstance(values["v"], float)
    assert isinstance(values["n"], int)
    assert values["flag"] is None


def test_filter_trailing_bytes_rejected():
    from repro.core.wire import decode_filter, encode_filter

    data = encode_filter(Filter.topic("t"))
    with pytest.raises(ValueError, match="trailing bytes"):
        decode_filter(data + b"\x00")


@settings(max_examples=120, deadline=None)
@given(garbage=st.binary(max_size=120))
def test_filter_decoder_never_accepts_garbage(garbage):
    from repro.core.wire import decode_filter

    try:
        subscription = decode_filter(garbage)
    except ValueError:
        return  # loud, typed failure is the contract
    assert isinstance(subscription, Filter)
