"""Fuzzing the wire decoders: garbage must fail loudly, never silently."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.wire import (
    _MAGIC_EVENT,
    _MAGIC_GRANT,
    decode_grant,
    decode_sealed_event,
    encode_grant,
)
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op


@settings(max_examples=150, deadline=None)
@given(garbage=st.binary(max_size=200))
def test_grant_decoder_never_accepts_garbage(garbage):
    try:
        grant = decode_grant(_MAGIC_GRANT + garbage)
    except Exception:
        return  # loud failure is the contract
    # The astronomically unlikely parse must still be a coherent grant.
    assert grant.key_count() >= 0


@settings(max_examples=150, deadline=None)
@given(garbage=st.binary(max_size=200))
def test_event_decoder_never_accepts_garbage(garbage):
    try:
        sealed = decode_sealed_event(_MAGIC_EVENT + garbage)
    except Exception:
        return
    assert isinstance(sealed.ciphertext, bytes)


@settings(max_examples=60, deadline=None)
@given(
    cut=st.integers(min_value=1, max_value=50),
)
def test_truncated_grants_always_rejected(cut):
    kdc = KDC(master_key=bytes(16))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    data = encode_grant(
        kdc.authorize("S", Filter.numeric_range("t", "v", 5, 40))
    )
    truncated = data[: max(4, len(data) - cut)]
    if truncated == data:
        return
    with pytest.raises(Exception):
        decode_grant(truncated)


def test_float_constraint_roundtrip():
    kdc = KDC(master_key=bytes(16))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
    )
    grant = kdc.authorize(
        "S",
        Filter.of(
            Constraint("topic", Op.EQ, "t"),
            Constraint("v", Op.GE, 1.5),
            Constraint("v", Op.LE, 40.25),
            Constraint("score", Op.GT, 0.125),
        ),
    )
    decoded = decode_grant(encode_grant(grant))
    assert decoded == grant
    values = {
        (c.name, c.op): c.value
        for clause in decoded.clauses
        for c in clause.clause
    }
    assert values[("v", Op.GE)] == 1.5
    assert values[("score", Op.GT)] == 0.125
