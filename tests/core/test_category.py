"""Category trees and subsumption key derivation."""

import pytest

from repro.core.category import CategoryKeySpace, CategoryTree

TOPIC_KEY = bytes(range(16))


@pytest.fixture
def vehicle_tree() -> CategoryTree:
    return CategoryTree.from_spec(
        "vehicle",
        {
            "car": {"sedan": {}, "suv": {}},
            "bike": {"road": {}, "mountain": {}},
        },
    )


class TestCategoryTree:
    def test_membership_and_size(self, vehicle_tree):
        assert "sedan" in vehicle_tree
        assert "boat" not in vehicle_tree
        assert len(vehicle_tree) == 7

    def test_path(self, vehicle_tree):
        assert vehicle_tree.path("sedan") == ("vehicle", "car", "sedan")
        assert vehicle_tree.path("vehicle") == ("vehicle",)

    def test_path_unknown_label(self, vehicle_tree):
        with pytest.raises(KeyError):
            vehicle_tree.path("boat")

    def test_subsumption(self, vehicle_tree):
        assert vehicle_tree.subsumes("vehicle", "sedan")
        assert vehicle_tree.subsumes("car", "sedan")
        assert vehicle_tree.subsumes("sedan", "sedan")
        assert not vehicle_tree.subsumes("bike", "sedan")
        assert not vehicle_tree.subsumes("sedan", "car")

    def test_depth_and_height(self, vehicle_tree):
        assert vehicle_tree.depth("vehicle") == 0
        assert vehicle_tree.depth("sedan") == 2
        assert vehicle_tree.height() == 2

    def test_children_and_leaves(self, vehicle_tree):
        assert vehicle_tree.children("car") == ["sedan", "suv"]
        assert set(vehicle_tree.leaves()) == {
            "sedan", "suv", "road", "mountain",
        }

    def test_duplicate_label_rejected(self, vehicle_tree):
        with pytest.raises(ValueError):
            vehicle_tree.add_category("sedan", "bike")

    def test_unknown_parent_rejected(self, vehicle_tree):
        with pytest.raises(KeyError):
            vehicle_tree.add_category("kayak", "boat")

    def test_incremental_build(self):
        tree = CategoryTree.from_spec("root", {})
        tree.add_category("a", "root")
        tree.add_category("b", "a")
        assert tree.path("b") == ("root", "a", "b")


class TestCategoryKeySpace:
    def test_subsumption_derives_key(self, vehicle_tree):
        space = CategoryKeySpace("kind", vehicle_tree)
        _, sedan_key = space.encryption_key(TOPIC_KEY, "sedan")
        grant = space.authorization_key(TOPIC_KEY, "car")
        derived, operations = space.derive_encryption_key(grant, "sedan")
        assert derived == sedan_key
        assert operations == 1

    def test_root_grant_derives_everything(self, vehicle_tree):
        space = CategoryKeySpace("kind", vehicle_tree)
        grant = space.authorization_key(TOPIC_KEY, "vehicle")
        for label in vehicle_tree.labels():
            derived, _ = space.derive_encryption_key(grant, label)
            assert derived == space.node_key(TOPIC_KEY, label)

    def test_non_subsuming_grant_refused(self, vehicle_tree):
        space = CategoryKeySpace("kind", vehicle_tree)
        grant = space.authorization_key(TOPIC_KEY, "bike")
        with pytest.raises(ValueError):
            space.derive_encryption_key(grant, "sedan")

    def test_descendant_grant_cannot_reach_ancestor(self, vehicle_tree):
        space = CategoryKeySpace("kind", vehicle_tree)
        grant = space.authorization_key(TOPIC_KEY, "sedan")
        with pytest.raises(ValueError):
            space.derive_encryption_key(grant, "car")

    def test_sibling_keys_differ(self, vehicle_tree):
        space = CategoryKeySpace("kind", vehicle_tree)
        assert (
            space.node_key(TOPIC_KEY, "car")
            != space.node_key(TOPIC_KEY, "bike")
        )

    def test_keys_scoped_by_topic_key(self, vehicle_tree):
        space = CategoryKeySpace("kind", vehicle_tree)
        assert (
            space.node_key(TOPIC_KEY, "sedan")
            != space.node_key(bytes(16), "sedan")
        )

    def test_exact_match_zero_extra_hashes(self, vehicle_tree):
        space = CategoryKeySpace("kind", vehicle_tree)
        grant = space.authorization_key(TOPIC_KEY, "sedan")
        _, operations = space.derive_encryption_key(grant, "sedan")
        assert operations == 0
