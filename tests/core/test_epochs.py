"""Epoch policies: static and adaptive (Section 3.1's deferred policy)."""

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.epochs import AdaptiveEpochPolicy, StaticEpochPolicy
from repro.core.kdc import KDC
from repro.siena.filters import Filter


class TestStaticPolicy:
    def test_constant_length(self):
        policy = StaticEpochPolicy(600.0)
        policy.observe_subscription(1.0)
        policy.observe_subscription(2.0)
        assert policy.current_length() == 600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticEpochPolicy(0.0)


class TestAdaptivePolicy:
    def test_defaults_until_history(self):
        policy = AdaptiveEpochPolicy(base_length=1000.0)
        assert policy.current_length() == 1000.0
        policy.observe_subscription(0.0)  # first arrival: no gap yet
        assert policy.current_length() == 1000.0

    def test_hot_topic_gets_short_epochs(self):
        policy = AdaptiveEpochPolicy(base_length=1000.0, target_renewals=16)
        for index in range(50):
            policy.observe_subscription(index * 1.0)  # 1s inter-arrival
        assert policy.current_length() < 1000.0

    def test_cold_topic_gets_long_epochs(self):
        policy = AdaptiveEpochPolicy(base_length=1000.0, target_renewals=16)
        for index in range(10):
            policy.observe_subscription(index * 10_000.0)
        assert policy.current_length() > 1000.0

    def test_length_clamped_to_max_scale(self):
        policy = AdaptiveEpochPolicy(
            base_length=1000.0, target_renewals=16, max_scale=4
        )
        for index in range(10):
            policy.observe_subscription(index * 1e9)
        assert policy.current_length() <= 4000.0
        fast = AdaptiveEpochPolicy(
            base_length=1000.0, target_renewals=16, max_scale=4
        )
        for index in range(50):
            fast.observe_subscription(index * 1e-6)
        assert fast.current_length() >= 250.0

    def test_lengths_quantized_to_powers_of_two(self):
        import math

        policy = AdaptiveEpochPolicy(base_length=1000.0)
        for index in range(40):
            policy.observe_subscription(index * 37.0)
        ratio = policy.current_length() / 1000.0
        assert math.log2(ratio) == round(math.log2(ratio))

    def test_identical_history_gives_identical_schedule(self):
        """Replica determinism: same history, same epoch length."""
        first = AdaptiveEpochPolicy(base_length=1000.0)
        second = AdaptiveEpochPolicy(base_length=1000.0)
        for index in range(30):
            first.observe_subscription(index * 3.0)
            second.observe_subscription(index * 3.0)
        assert first.current_length() == second.current_length()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveEpochPolicy(base_length=0)
        with pytest.raises(ValueError):
            AdaptiveEpochPolicy(target_renewals=0)
        with pytest.raises(ValueError):
            AdaptiveEpochPolicy(smoothing=0)
        with pytest.raises(ValueError):
            AdaptiveEpochPolicy(max_scale=0)


class TestKDCIntegration:
    def test_kdc_feeds_policy_and_retunes(self, master_key):
        policy = AdaptiveEpochPolicy(base_length=1000.0, target_renewals=4)
        kdc = KDC(master_key=master_key)
        kdc.register_topic(
            "hot", CompositeKeySpace({}), epoch_length=1000.0,
            epoch_policy=policy,
        )
        for index in range(40):
            kdc.authorize(f"S{index}", Filter.topic("hot"),
                          at_time=index * 1.0)
        new_length = kdc.retune_epoch("hot")
        assert new_length < 1000.0
        assert kdc.config_for("hot").epoch_length == new_length

    def test_retune_without_policy_is_noop(self, medical_kdc):
        before = medical_kdc.config_for("cancerTrail").epoch_length
        assert medical_kdc.retune_epoch("cancerTrail") == before
