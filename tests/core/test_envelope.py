"""Event sealing and opening: confidentiality semantics."""

import pytest

from repro.core.category import CategoryKeySpace, CategoryTree
from repro.core.composite import CompositeKeySpace
from repro.core.envelope import open_event, seal_event
from repro.core.nakt import NumericKeySpace
from repro.core.strings import StringKeySpace
from repro.siena.events import Event

TOPIC_KEY = bytes(range(16))


@pytest.fixture
def schema():
    return CompositeKeySpace({"age": NumericKeySpace("age", 128)})


@pytest.fixture
def sealed_record(schema):
    event = Event(
        {"topic": "cancerTrail", "age": 25, "patientRecord": "record-17"},
        publisher="P",
    )
    return seal_event(event, schema, TOPIC_KEY, {"patientRecord"})


def test_secret_attribute_stripped_from_routable(sealed_record):
    assert "patientRecord" not in sealed_record.routable
    assert "patientRecord" not in repr(sealed_record.routable.attributes)


def test_routable_attributes_preserved(sealed_record):
    assert sealed_record.routable["topic"] == "cancerTrail"
    assert sealed_record.routable["age"] == 25


def test_single_attribute_seals_direct(sealed_record):
    assert sealed_record.direct
    assert len(sealed_record.locks) == 1
    assert sealed_record.locks[0].attributes == ("age",)


def test_open_with_correct_leaf_key(schema, sealed_record):
    space = schema.space_for("age")
    _, leaf_key = space.encryption_key(TOPIC_KEY, 25)
    result = open_event(sealed_record, schema, {"age": leaf_key})
    assert result.event["patientRecord"] == "record-17"
    assert result.event["age"] == 25
    assert result.event.publisher == "P"
    assert result.decrypt_operations == 1


def test_open_with_wrong_key_fails(schema, sealed_record):
    space = schema.space_for("age")
    _, wrong_key = space.encryption_key(TOPIC_KEY, 26)
    with pytest.raises(ValueError):
        open_event(sealed_record, schema, {"age": wrong_key})


def test_open_with_missing_component_fails(schema, sealed_record):
    with pytest.raises(ValueError):
        open_event(sealed_record, schema, {})


def test_ciphertext_hides_payload(sealed_record):
    assert b"record-17" not in sealed_record.ciphertext


def test_missing_secret_attribute_rejected(schema):
    event = Event({"topic": "t", "age": 1})
    with pytest.raises(ValueError, match="absent"):
        seal_event(event, schema, TOPIC_KEY, {"nonexistent"})


def test_plain_topic_event_sealed_under_topic_key():
    schema = CompositeKeySpace({})
    event = Event({"topic": "news", "message": "m"})
    sealed = seal_event(event, schema, TOPIC_KEY, {"message"})
    assert sealed.locks[0].attributes == ("topic",)
    result = open_event(sealed, schema, {"topic": TOPIC_KEY})
    assert result.event["message"] == "m"


def test_plain_event_without_topic_rejected():
    schema = CompositeKeySpace({})
    with pytest.raises(ValueError):
        seal_event(Event({"message": "m"}), schema, TOPIC_KEY, {"message"})


def test_multi_attribute_conjunction_lock():
    schema = CompositeKeySpace(
        {
            "age": NumericKeySpace("age", 128),
            "salary": NumericKeySpace("salary", 1024),
        }
    )
    event = Event(
        {"topic": "t", "age": 30, "salary": 500, "message": "m"}
    )
    sealed = seal_event(event, schema, TOPIC_KEY, {"message"})
    assert sealed.locks[0].attributes == ("age", "salary")
    age_key = schema.space_for("age").encryption_key(TOPIC_KEY, 30)[1]
    salary_key = schema.space_for("salary").encryption_key(TOPIC_KEY, 500)[1]
    result = open_event(
        sealed, schema, {"age": age_key, "salary": salary_key}
    )
    assert result.event["message"] == "m"
    # One component alone cannot open a conjunction lock.
    with pytest.raises(ValueError):
        open_event(sealed, schema, {"age": age_key})


def test_extra_lock_subsets_enable_disjunctive_access():
    schema = CompositeKeySpace(
        {
            "age": NumericKeySpace("age", 128),
            "salary": NumericKeySpace("salary", 1024),
        }
    )
    event = Event(
        {"topic": "t", "age": 30, "salary": 500, "message": "m"}
    )
    sealed = seal_event(
        event, schema, TOPIC_KEY, {"message"},
        extra_lock_subsets=[("age",)],
    )
    assert not sealed.direct
    assert len(sealed.locks) == 2
    age_key = schema.space_for("age").encryption_key(TOPIC_KEY, 30)[1]
    result = open_event(sealed, schema, {"age": age_key})
    assert result.event["message"] == "m"
    assert result.decrypt_operations == 2  # unwrap + payload


def test_invalid_lock_subset_rejected():
    schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
    event = Event({"topic": "t", "age": 1, "message": "m"})
    with pytest.raises(ValueError):
        seal_event(
            event, schema, TOPIC_KEY, {"message"},
            extra_lock_subsets=[("salary",)],
        )


def test_multiple_secret_attributes():
    schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
    event = Event(
        {"topic": "t", "age": 5, "message": "m", "diagnosis": "d"}
    )
    sealed = seal_event(event, schema, TOPIC_KEY, {"message", "diagnosis"})
    assert "diagnosis" not in sealed.routable
    key = schema.space_for("age").encryption_key(TOPIC_KEY, 5)[1]
    result = open_event(sealed, schema, {"age": key})
    assert result.event["diagnosis"] == "d"
    assert result.event["message"] == "m"


def test_wire_size_reports_reasonable_total(sealed_record):
    assert sealed_record.wire_size() > len(sealed_record.ciphertext)


def test_category_and_string_components_seal():
    tree = CategoryTree.from_spec("root", {"a": {"aa": {}}, "b": {}})
    schema = CompositeKeySpace(
        {
            "kind": CategoryKeySpace("kind", tree),
            "name": StringKeySpace("name"),
        }
    )
    event = Event(
        {"topic": "t", "kind": "aa", "name": "widget", "message": "m"}
    )
    sealed = seal_event(event, schema, TOPIC_KEY, {"message"})
    kind_key = schema.space_for("kind").encryption_key(TOPIC_KEY, "aa")[1]
    name_key = schema.space_for("name").encryption_key(
        TOPIC_KEY, "widget"
    )[1]
    result = open_event(
        sealed, schema, {"kind": kind_key, "name": name_key}
    )
    assert result.event["message"] == "m"
