"""Topic key space, including per-publisher isolation."""

import pytest

from repro.core.topics import TopicKeySpace

MASTER = bytes(range(16))


def test_shared_topic_key_deterministic():
    space = TopicKeySpace()
    assert space.topic_key(MASTER, "w") == space.topic_key(MASTER, "w")


def test_topic_key_differs_by_topic():
    space = TopicKeySpace()
    assert space.topic_key(MASTER, "a") != space.topic_key(MASTER, "b")


def test_per_publisher_keys_isolate_publishers():
    """Section 3.1 "Multiple Publishers": K_P(w) != K_Q(w)."""
    space = TopicKeySpace(per_publisher=True)
    key_p = space.topic_key(MASTER, "w", publisher="P")
    key_q = space.topic_key(MASTER, "w", publisher="Q")
    assert key_p != key_q


def test_per_publisher_requires_identity():
    space = TopicKeySpace(per_publisher=True)
    with pytest.raises(ValueError):
        space.topic_key(MASTER, "w")


def test_per_publisher_key_differs_from_shared():
    shared = TopicKeySpace().topic_key(MASTER, "w")
    scoped = TopicKeySpace(per_publisher=True).topic_key(
        MASTER, "w", publisher="P"
    )
    assert shared != scoped


def test_separator_prevents_identity_splicing():
    """K_{"ab"}("c") must differ from K_{"a"}("bc")."""
    space = TopicKeySpace(per_publisher=True)
    assert space.topic_key(MASTER, "c", publisher="ab") != space.topic_key(
        MASTER, "bc", publisher="a"
    )
