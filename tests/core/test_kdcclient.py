"""The failover KDC client: retries, breakers, dedup-backed idempotence."""

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import AuthorizationDenied, KDCUnavailableError
from repro.core.kdcclient import ClientRetryPolicy, KDCClient
from repro.core.kdcservice import KDCCluster
from repro.net.faults import (
    ANY,
    BrokerCrash,
    FaultInjector,
    FaultPlan,
    LinkFault,
)
from repro.net.service import ServiceNetwork
from repro.net.sim import Simulator
from repro.siena.filters import Filter

MASTER = bytes(range(16))


def _setup(plan=None, replicas=3, policy=None, seed=2):
    sim = Simulator()
    faults = FaultInjector(sim, plan, seed=seed) if plan is not None else None
    net = ServiceNetwork(sim, faults, latency=0.005)
    replica_ids = [f"kdc{i}" for i in range(replicas)]
    cluster = KDCCluster(net, replica_ids, MASTER, faults=faults)
    cluster.register_topic("t", CompositeKeySpace({}), epoch_length=10.0)
    if faults is not None:
        faults.install()
    client = KDCClient(
        net, "client", replica_ids,
        policy=policy or ClientRetryPolicy(), seed=seed,
    )
    return sim, net, cluster, client


def _authorize(sim, client, horizon=5.0, **kwargs):
    grants, errors = [], []
    client.authorize(
        "S", Filter.topic("t"),
        on_grant=grants.append, on_error=errors.append, **kwargs,
    )
    sim.run(until=sim.now + horizon)
    return grants, errors


def test_healthy_path_single_attempt():
    sim, net, cluster, client = _setup()
    grants, errors = _authorize(sim, client, at_time=0.0)
    assert len(grants) == 1 and not errors
    assert client.stats.attempts == 1
    assert client.stats.retries == 0
    assert grants[0].topic == "t"


def test_failover_to_surviving_replica():
    plan = FaultPlan(crashes=[BrokerCrash("kdc0", at=0.0, duration=5.0)])
    sim, net, cluster, client = _setup(plan=plan)
    grants, errors = _authorize(sim, client, at_time=0.0)
    assert len(grants) == 1 and not errors
    assert client.stats.failovers >= 1
    assert client.stats.timeouts >= 1
    # Stickiness: the next request goes straight to the responsive replica.
    attempts_before = client.stats.attempts
    grants2, _ = _authorize(sim, client, at_time=0.0)
    assert len(grants2) == 1
    assert client.stats.attempts == attempts_before + 1


def test_all_replicas_down_exhausts_and_fails():
    plan = FaultPlan(crashes=[
        BrokerCrash(f"kdc{i}", at=0.0, duration=60.0) for i in range(3)
    ])
    sim, net, cluster, client = _setup(plan=plan)
    grants, errors = _authorize(sim, client, horizon=30.0, at_time=0.0)
    assert not grants
    assert len(errors) == 1
    assert isinstance(errors[0], KDCUnavailableError)
    assert client.stats.failures == 1
    assert client.stats.attempts == client.policy.max_attempts


def test_breaker_opens_and_skips_dead_replica():
    policy = ClientRetryPolicy(
        max_attempts=30, breaker_threshold=2, breaker_cooldown=10.0
    )
    plan = FaultPlan(crashes=[BrokerCrash("kdc0", at=0.0, duration=60.0)])
    sim, net, cluster, client = _setup(plan=plan, policy=policy)
    _authorize(sim, client, at_time=0.0)
    assert client.stats.breaker_opens == 0  # failed over before threshold
    # Hammer kdc0 alone by shrinking the view to just the dead replica.
    lone_policy = ClientRetryPolicy(
        max_attempts=6, breaker_threshold=2, breaker_cooldown=10.0
    )
    lone = KDCClient(net, "client2", ["kdc0"], policy=lone_policy, seed=9)
    grants, errors = _authorize(sim, lone, horizon=30.0, at_time=0.0)
    assert not grants and errors
    assert lone.stats.breaker_opens >= 1


def test_denial_is_terminal_not_retried():
    sim, net, cluster, client = _setup()
    cluster.revoke("S", "t")
    sim.run(until=0.5)
    grants, errors = _authorize(sim, client, at_time=1.0)
    assert not grants
    assert isinstance(errors[0], AuthorizationDenied)
    assert client.stats.denied == 1
    assert client.stats.retries == 0


def test_admin_redirects_to_primary():
    sim, net, cluster, client = _setup()
    client._preferred = "kdc2"  # force the first attempt at a backup
    oks, errors = [], []
    client.admin("revoke", ("S", "t"), on_ok=oks.append,
                 on_error=errors.append)
    sim.run(until=1.0)
    assert oks and not errors
    assert client.stats.redirects == 1
    assert ("S", "t") in cluster.replicas["kdc0"].kdc.revocations


def test_retransmit_hits_dedup_not_double_issue():
    """Losing replies (not requests) forces retransmits; the replica's
    dedup cache answers them without re-serving."""
    policy = ClientRetryPolicy(timeout=0.05, max_attempts=10, jitter=0.0)
    plan = FaultPlan(link_faults=[LinkFault(loss=0.4)])
    sim, net, cluster, client = _setup(plan=plan, policy=policy, seed=11)
    for k in range(10):
        sim.schedule(k * 0.5, lambda: client.authorize(
            "S", Filter.topic("t"), at_time=sim.now
        ))
    sim.run(until=20.0)
    served = sum(r.stats.authorizations for r in cluster.replicas.values())
    dedup = sum(r.stats.dedup_hits for r in cluster.replicas.values())
    assert client.stats.successes == 10
    # Each logical request was issued at most once per replica it reached;
    # every extra arrival was answered from the cache.
    assert served <= 10 * len(cluster.replica_ids)
    if client.stats.retries:
        assert dedup >= 1


def test_partition_from_preferred_replica_fails_over():
    # The partition opens after the registry has replicated, so the
    # backups can serve while kdc0 is cut off from everyone.
    plan = FaultPlan(link_faults=[
        LinkFault(ANY, "kdc0", start=0.1, duration=5.0, partitioned=True)
    ])
    sim, net, cluster, client = _setup(plan=plan)
    sim.run(until=0.2)
    grants, errors = _authorize(sim, client, at_time=0.2)
    assert len(grants) == 1 and not errors
    assert client.stats.failovers >= 1


def test_stale_backup_is_retried_not_terminal():
    """A backup that never saw the topic registration answers ``stale``;
    the client fails over instead of giving up."""
    plan = FaultPlan(link_faults=[
        # Cut kdc2 off from the cluster from the start: it misses the
        # register_topic replication entirely.
        LinkFault("kdc0", "kdc2", start=0.0, duration=60.0, partitioned=True)
    ])
    sim, net, cluster, client = _setup(plan=plan)
    client._preferred = "kdc2"  # first attempt lands on the stale backup
    grants, errors = _authorize(sim, client, at_time=0.0)
    assert len(grants) == 1 and not errors
    assert client.stats.failovers >= 1
    assert cluster.replicas["kdc2"].stats.requests_served >= 1


def test_policy_validation():
    with pytest.raises(ValueError):
        ClientRetryPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        ClientRetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        ClientRetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        ClientRetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        KDCClient(ServiceNetwork(Simulator()), "c", [])


def test_timeouts_escalate_with_backoff():
    import random

    policy = ClientRetryPolicy(timeout=0.1, backoff=2.0, jitter=0.0)
    rng = random.Random(0)
    assert policy.timeout_for(0, rng) == pytest.approx(0.1)
    assert policy.timeout_for(3, rng) == pytest.approx(0.8)


def test_deterministic_replay():
    def run():
        plan = FaultPlan(
            crashes=[BrokerCrash("kdc0", at=0.2, duration=1.0)],
            link_faults=[LinkFault(loss=0.2)],
        )
        sim, net, cluster, client = _setup(plan=plan, seed=13)
        for k in range(15):
            sim.schedule(k * 0.3, lambda: client.authorize(
                "S", Filter.topic("t"), at_time=sim.now
            ))
        sim.run(until=20.0)
        s = client.stats
        return (s.successes, s.failures, s.retries, s.failovers,
                s.timeouts, net.stats.lost)

    assert run() == run()
