"""The replicated KDC service: leadership, registry log, dedup, catch-up."""

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.kdcservice import (
    KDCCluster,
    KDCRequest,
    KDCResponse,
    RegistryCommand,
)
from repro.net.faults import BrokerCrash, FaultInjector, FaultPlan, LinkFault
from repro.net.service import ServiceNetwork
from repro.net.sim import Simulator
from repro.siena.filters import Filter

MASTER = bytes(range(16))


def _cluster(replicas=3, plan=None, seed=1, sync_interval=0.25):
    sim = Simulator()
    faults = None
    if plan is not None:
        faults = FaultInjector(sim, plan, seed=seed)
    net = ServiceNetwork(sim, faults, latency=0.005)
    cluster = KDCCluster(
        net,
        [f"kdc{i}" for i in range(replicas)],
        MASTER,
        faults=faults,
        sync_interval=sync_interval,
    )
    cluster.register_topic("t", CompositeKeySpace({}), epoch_length=10.0)
    if faults is not None:
        faults.install()
    return sim, net, cluster


def _authorize(net, sim, replica, request_id=("c", 0), at_time=None):
    """One authorize RPC against *replica*; returns the KDCResponse."""
    replies = []
    net.request(
        "client",
        replica,
        KDCRequest("authorize", request_id, {
            "subscriber": "S",
            "filters": Filter.topic("t"),
            "at_time": at_time if at_time is not None else sim.now,
        }),
        on_reply=replies.append,
    )
    sim.run(until=sim.now + 1.0)
    return replies[-1] if replies else None


def test_any_replica_serves_derivations():
    sim, net, cluster = _cluster()
    grants = []
    for index, replica in enumerate(cluster.replica_ids):
        response = _authorize(net, sim, replica, request_id=("c", index))
        assert response.ok
        grants.append(response.value)
    # Stateless derivation: every replica issues identical key material.
    assert len({g.epoch for g in grants}) == 1
    first = grants[0].clauses[0].components[0].key
    assert all(
        g.clauses[0].components[0].key == first for g in grants
    )


def test_request_dedup_returns_memoized_response():
    sim, net, cluster = _cluster()
    first = _authorize(net, sim, "kdc0", request_id=("c", 7))
    again = _authorize(net, sim, "kdc0", request_id=("c", 7), at_time=0.0)
    assert again.value is first.value  # served from the dedup cache
    assert cluster.replicas["kdc0"].stats.dedup_hits == 1
    assert cluster.replicas["kdc0"].stats.authorizations == 1


def test_admin_mutation_replicates_to_backups():
    sim, net, cluster = _cluster()
    replies = []
    net.request("client", "kdc0", KDCRequest(
        "admin", ("c", 1), {"op": "revoke", "args": ("S", "t")}
    ), on_reply=replies.append)
    sim.run(until=1.0)
    assert replies and replies[0].ok
    for replica in cluster.replicas.values():
        assert ("S", "t") in replica.kdc.revocations
    assert cluster.converged()
    # The revocation bites on the next renewal, from any replica.
    denied = _authorize(net, sim, "kdc2", request_id=("c", 2))
    assert not denied.ok and denied.error == "denied"


def test_admin_rejected_at_backup_with_redirect():
    sim, net, cluster = _cluster()
    replies = []
    net.request("client", "kdc1", KDCRequest(
        "admin", ("c", 1), {"op": "revoke", "args": ("S", "t")}
    ), on_reply=replies.append)
    sim.run(until=1.0)
    assert not replies[0].ok
    assert replies[0].error == "not_primary"
    assert replies[0].primary == "kdc0"
    assert replies[0].retryable


def test_primary_crash_elects_next_in_ring():
    plan = FaultPlan(crashes=[BrokerCrash("kdc0", at=1.0, duration=2.0)])
    sim, net, cluster = _cluster(plan=plan)
    sim.run(until=1.5)
    assert cluster.primary_id == "kdc1"
    assert cluster.view == 1
    assert cluster.stats.view_changes == 1
    # The crashed primary's restart does not steal leadership back.
    sim.run(until=4.0)
    assert cluster.primary_id == "kdc1"


def test_restarted_replica_recovers_and_catches_up():
    plan = FaultPlan(crashes=[BrokerCrash("kdc2", at=0.5, duration=1.0)])
    sim, net, cluster = _cluster(plan=plan)
    sim.run(until=0.6)
    # Mutate the registry while kdc2 is down.
    net.request("client", "kdc0", KDCRequest(
        "admin", ("c", 1), {"op": "revoke", "args": ("S", "t")}
    ))
    sim.run(until=1.4)
    assert ("S", "t") not in cluster.replicas["kdc2"].kdc.revocations
    sim.run(until=3.0)
    replica = cluster.replicas["kdc2"]
    assert not replica.recovering
    assert replica.stats.catchups_completed == 1
    assert ("S", "t") in replica.kdc.revocations
    assert cluster.converged()


def test_recovering_replica_refuses_derivations():
    plan = FaultPlan(
        crashes=[BrokerCrash("kdc2", at=0.5, duration=1.0)],
        # Keep kdc2 partitioned after restart so catch-up cannot finish.
        link_faults=[LinkFault("kdc2", "kdc0", start=1.4, duration=5.0,
                               partitioned=True)],
    )
    sim, net, cluster = _cluster(plan=plan)
    sim.run(until=2.0)
    assert cluster.replicas["kdc2"].recovering
    response = _authorize(net, sim, "kdc2")
    assert not response.ok and response.error == "recovering"
    assert response.retryable


def test_lost_replicate_healed_by_anti_entropy():
    # Drop everything between the primary and kdc1 around the mutation.
    plan = FaultPlan(link_faults=[
        LinkFault("kdc0", "kdc1", start=0.0, duration=0.5, partitioned=True)
    ])
    sim, net, cluster = _cluster(plan=plan)
    net.request("client", "kdc0", KDCRequest(
        "admin", ("c", 1), {"op": "revoke", "args": ("S", "t")}
    ))
    sim.run(until=0.3)
    assert ("S", "t") not in cluster.replicas["kdc1"].kdc.revocations
    sim.run(until=2.0)  # periodic sync pulls the missed suffix
    assert ("S", "t") in cluster.replicas["kdc1"].kdc.revocations
    assert cluster.converged()


def test_out_of_order_command_rejected_without_corruption():
    sim, net, cluster = _cluster()
    replica = cluster.replicas["kdc1"]
    applied = replica.applied_seq
    gap = RegistryCommand(applied + 5, "revoke", ("S", "t"))
    assert not replica.append(gap)
    assert replica.applied_seq == applied
    assert ("S", "t") not in replica.kdc.revocations


def test_invalid_command_leaves_log_untouched():
    sim, net, cluster = _cluster()
    replica = cluster.replicas["kdc0"]
    applied = replica.applied_seq
    bad = RegistryCommand(applied + 1, "set_epoch_length", ("t", -1.0))
    with pytest.raises(ValueError):
        replica.append(bad)
    assert replica.applied_seq == applied


def test_single_replica_cluster_survives_restart():
    plan = FaultPlan(crashes=[BrokerCrash("kdc0", at=1.0, duration=1.0)])
    sim, net, cluster = _cluster(replicas=1, plan=plan)
    sim.run(until=1.5)
    assert cluster.primary_id is None
    sim.run(until=2.5)
    assert cluster.primary_id == "kdc0"
    response = _authorize(net, sim, "kdc0")
    assert response.ok


def test_deterministic_replay():
    def run():
        plan = FaultPlan(
            crashes=[BrokerCrash("kdc0", at=0.5, duration=1.0)],
            link_faults=[LinkFault(loss=0.3)],
        )
        sim, net, cluster = _cluster(plan=plan, seed=5)
        for k in range(20):
            sim.schedule(k * 0.1, lambda k=k: net.request(
                "client", "kdc0", KDCRequest("authorize", ("c", k), {
                    "subscriber": "S",
                    "filters": Filter.topic("t"),
                    "at_time": k * 0.1,
                }),
            ))
        sim.run(until=5.0)
        return (
            net.stats.requests_delivered,
            net.stats.lost,
            cluster.replicas["kdc0"].stats.authorizations,
            cluster.view,
        )

    assert run() == run()
