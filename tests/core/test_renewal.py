"""Client-side grant renewal across epochs."""

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.renewal import RenewalManager
from repro.core.subscriber import Subscriber
from repro.siena.events import Event
from repro.siena.filters import Filter

EPOCH = 100.0


@pytest.fixture
def kdc(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic(
        "t",
        CompositeKeySpace({"v": NumericKeySpace("v", 64)}),
        epoch_length=EPOCH,
    )
    return kdc


def _lookup(kdc):
    return lambda name: kdc.config_for(name).schema


def test_first_grant_fetched_on_registration(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    assert subscriber.key_count(0.0) == grant.key_count()
    assert manager.stats.renewals == 1


def test_tick_before_expiry_is_noop(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    assert manager.tick(grant.expires_at - 10.0) == 0
    assert manager.stats.renewals == 1


def test_tick_renews_into_next_epoch(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc)
    publisher = Publisher("P", kdc)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    next_epoch_time = grant.expires_at + 1.0
    assert manager.tick(next_epoch_time) == 1

    sealed = publisher.publish(
        Event({"topic": "t", "v": 5, "message": "fresh"}),
        at_time=next_epoch_time,
    )
    result = subscriber.receive(
        sealed, _lookup(kdc), at_time=next_epoch_time
    )
    assert result is not None
    assert result.event["message"] == "fresh"


def test_expired_grants_dropped(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    manager.tick(grant.expires_at + 1.0)
    # Only the new epoch's grant remains on the key ring.
    assert len(subscriber.grants) == 1
    assert manager.stats.grants_dropped == 1


def test_lead_time_renews_early_for_next_epoch(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc, renew_lead_time=10.0)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    margin_time = grant.expires_at - 5.0
    assert manager.tick(margin_time) == 1
    epochs = {g.epoch for g in subscriber.grants}
    assert len(epochs) == 2  # old epoch still valid + next epoch staged


def test_continuous_operation_across_three_epochs(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc)
    publisher = Publisher("P", kdc)
    manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    lookup = _lookup(kdc)
    opened = 0
    for step in range(1, 40):
        now = step * 25.0
        manager.tick(now)
        sealed = publisher.publish(
            Event({"topic": "t", "v": 7, "message": f"m{step}"}),
            at_time=now,
        )
        if subscriber.receive(sealed, lookup, at_time=now) is not None:
            opened += 1
    assert opened == 39  # never a coverage gap
    assert manager.stats.renewals >= 10


def test_multiple_standing_subscriptions(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc)
    first = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 20), at_time=0.0
    )
    manager.add_subscription(
        Filter.numeric_range("t", "v", 40, 63), at_time=0.0
    )
    renewed = manager.tick(first.expires_at + 1.0)
    assert renewed == 2


def test_next_renewal_at(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc, renew_lead_time=7.0)
    assert manager.next_renewal_at() is None
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    assert manager.next_renewal_at() == pytest.approx(
        grant.expires_at - 7.0
    )


def test_cancel_all_stops_renewal(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    manager.cancel_all(at_time=1.0)
    assert manager.tick(grant.expires_at + 1.0) == 0
    assert subscriber.key_count(grant.expires_at + 1.0) == 0


def test_negative_lead_time_rejected(kdc):
    with pytest.raises(ValueError):
        RenewalManager(Subscriber("S"), kdc, renew_lead_time=-1.0)


def test_tick_exactly_at_expiry_targets_upcoming_epoch(kdc):
    """A zero-lead tick at precisely ``expires_at`` must not re-fetch the
    ending epoch's grant (float division can land the boundary instant a
    hair inside the old epoch)."""
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc, renew_lead_time=0.0)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    assert manager.tick(grant.expires_at) == 1
    epochs = {g.epoch for g in subscriber.grants}
    assert epochs == {grant.epoch + 1}


def test_boundary_renewals_never_duplicate_an_epoch(kdc):
    """Ticking exactly on every boundary walks one epoch per boundary."""
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc, renew_lead_time=0.0)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    seen = [grant.epoch]
    boundary = grant.expires_at
    for _ in range(5):
        assert manager.tick(boundary) == 1
        newest = max(g.epoch for g in subscriber.grants)
        seen.append(newest)
        boundary = kdc.epoch_start("t", newest + 1)
    assert seen == list(range(grant.epoch, grant.epoch + 6))


def test_lead_renewal_at_boundary_keeps_events_decryptable(kdc):
    """The early-renewed grant opens next-epoch events published exactly
    at the boundary instant."""
    subscriber = Subscriber("S")
    publisher = Publisher("P", kdc)
    manager = RenewalManager(subscriber, kdc, renew_lead_time=10.0)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    assert manager.tick(grant.expires_at - 10.0) == 1
    sealed = publisher.publish(
        Event({"topic": "t", "v": 3, "message": "boundary"}),
        at_time=grant.expires_at,
    )
    result = subscriber.receive(sealed, _lookup(kdc), at_time=grant.expires_at)
    assert result is not None and result.event["message"] == "boundary"


class _FlakyKDC:
    """Delegates to a real KDC but fails while ``down`` is set."""

    def __init__(self, kdc):
        self.kdc = kdc
        self.down = False

    def authorize(self, *args, **kwargs):
        from repro.core.kdc import KDCUnavailableError

        if self.down:
            raise KDCUnavailableError("kdc offline")
        return self.kdc.authorize(*args, **kwargs)


def test_unavailable_kdc_counts_failures_and_retries(kdc):
    subscriber = Subscriber("S")
    flaky = _FlakyKDC(kdc)
    manager = RenewalManager(subscriber, flaky)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    flaky.down = True
    assert manager.tick(grant.expires_at) == 0
    assert manager.stats.renewal_failures == 1
    assert manager.stats.degraded
    flaky.down = False
    # The next tick retries and the renewal lands (late).
    assert manager.tick(grant.expires_at + 1.0) == 1
    assert manager.stats.late_renewals == 1


def test_revoked_subscription_is_cancelled_on_renewal(kdc):
    subscriber = Subscriber("S")
    manager = RenewalManager(subscriber, kdc)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    kdc.revoke("S", "t")
    assert manager.tick(grant.expires_at) == 0
    assert manager.stats.renewals_denied == 1
    # Lazy revocation: no further renewal attempts for this filter.
    assert manager.tick(grant.expires_at + EPOCH) == 0
    assert manager.stats.renewals_denied == 1


def test_grace_window_keeps_old_epoch_events_readable(kdc):
    """An in-flight old-epoch event delivered after the boundary opens
    within the grace window (and counts as a grace open)."""
    subscriber = Subscriber("S", grace_period=5.0)
    publisher = Publisher("P", kdc)
    manager = RenewalManager(subscriber, kdc)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    sealed = publisher.publish(
        Event({"topic": "t", "v": 9, "message": "in-flight"}),
        at_time=grant.expires_at - 0.5,
    )
    late = grant.expires_at + 1.0
    manager.tick(late)
    result = subscriber.receive(sealed, _lookup(kdc), at_time=late)
    assert result is not None
    assert subscriber.stats.grace_opens == 1
    # Without grace the same arrival is unreadable.
    bare = Subscriber("S", grace_period=0.0)
    bare.add_grant(kdc.authorize(
        "S", Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    ))
    bare.drop_expired(late)
    assert bare.receive(sealed, _lookup(kdc), at_time=late) is None
