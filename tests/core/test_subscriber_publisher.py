"""Publisher and subscriber engines end to end."""

import pytest

from repro.core.category import CategoryKeySpace, CategoryTree
from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.strings import StringKeySpace
from repro.core.subscriber import Subscriber
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op


@pytest.fixture
def kdc(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic(
        "cancerTrail", CompositeKeySpace({"age": NumericKeySpace("age", 128)})
    )
    tree = CategoryTree.from_spec(
        "conditions", {"oncology": {"lung": {}, "skin": {}}, "cardio": {}}
    )
    kdc.register_topic(
        "diagnoses",
        CompositeKeySpace({"category": CategoryKeySpace("category", tree)}),
    )
    kdc.register_topic(
        "symbols", CompositeKeySpace({"name": StringKeySpace("name")})
    )
    kdc.register_topic("newsletters", CompositeKeySpace({}))
    return kdc


def _lookup(kdc):
    return lambda topic: kdc.config_for(topic).schema


def _publish(kdc, attributes, secret={"message"}):
    publisher = Publisher("P", kdc)
    return publisher.publish(
        Event(attributes, publisher="P"), secret_attributes=set(secret)
    )


class TestNumericFlow:
    def test_matching_subscriber_reads(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize("S", Filter.numeric_range("cancerTrail", "age", 20, 60))
        )
        sealed = _publish(
            kdc, {"topic": "cancerTrail", "age": 25, "message": "m"}
        )
        result = subscriber.receive(sealed, _lookup(kdc))
        assert result is not None
        assert result.event["message"] == "m"
        assert subscriber.stats.events_opened == 1

    def test_non_matching_subscriber_cannot_read(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize("S", Filter.numeric_range("cancerTrail", "age", 30, 40))
        )
        sealed = _publish(
            kdc, {"topic": "cancerTrail", "age": 25, "message": "m"}
        )
        assert subscriber.receive(sealed, _lookup(kdc)) is None
        assert subscriber.stats.events_unreadable == 1

    def test_paper_example_boundary(self, kdc):
        """f = age > 20 reads age 25; f' = age > 30 must not (Section 1)."""
        can_read = Subscriber("S1")
        can_read.add_grant(
            kdc.authorize("S1", Filter.numeric_range("cancerTrail", "age", 21, 127))
        )
        cannot_read = Subscriber("S2")
        cannot_read.add_grant(
            kdc.authorize("S2", Filter.numeric_range("cancerTrail", "age", 31, 127))
        )
        sealed = _publish(
            kdc, {"topic": "cancerTrail", "age": 25, "message": "record"}
        )
        assert can_read.receive(sealed, _lookup(kdc)).event["message"] == "record"
        assert cannot_read.receive(sealed, _lookup(kdc)) is None

    def test_wrong_topic_not_opened(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize("S", Filter.numeric_range("cancerTrail", "age", 0, 127))
        )
        sealed = _publish(kdc, {"topic": "newsletters", "message": "m"})
        assert subscriber.receive(sealed, _lookup(kdc)) is None


class TestCategoryFlow:
    def test_subsumption_read(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize(
                "S",
                Filter.of(
                    Constraint("topic", Op.EQ, "diagnoses"),
                    Constraint("category", Op.EQ, "oncology"),
                ),
            )
        )
        sealed = _publish(
            kdc, {"topic": "diagnoses", "category": "lung", "message": "m"}
        )
        assert subscriber.receive(sealed, _lookup(kdc)).event["message"] == "m"

    def test_sibling_category_refused(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize(
                "S",
                Filter.of(
                    Constraint("topic", Op.EQ, "diagnoses"),
                    Constraint("category", Op.EQ, "cardio"),
                ),
            )
        )
        sealed = _publish(
            kdc, {"topic": "diagnoses", "category": "lung", "message": "m"}
        )
        assert subscriber.receive(sealed, _lookup(kdc)) is None


class TestStringFlow:
    def test_prefix_read(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize(
                "S",
                Filter.of(
                    Constraint("topic", Op.EQ, "symbols"),
                    Constraint("name", Op.PREFIX, "GO"),
                ),
            )
        )
        sealed = _publish(
            kdc, {"topic": "symbols", "name": "GOOG", "message": "m"}
        )
        assert subscriber.receive(sealed, _lookup(kdc)).event["message"] == "m"

    def test_non_prefix_refused(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize(
                "S",
                Filter.of(
                    Constraint("topic", Op.EQ, "symbols"),
                    Constraint("name", Op.PREFIX, "MS"),
                ),
            )
        )
        sealed = _publish(
            kdc, {"topic": "symbols", "name": "GOOG", "message": "m"}
        )
        assert subscriber.receive(sealed, _lookup(kdc)) is None


class TestPlainTopicFlow:
    def test_topic_subscriber_reads_plain_events(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(kdc.authorize("S", Filter.topic("newsletters")))
        sealed = _publish(kdc, {"topic": "newsletters", "message": "m"})
        assert subscriber.receive(sealed, _lookup(kdc)).event["message"] == "m"

    def test_topic_subscriber_reads_attributed_events(self, kdc):
        """Topic-only grants hold root components for securable attrs."""
        subscriber = Subscriber("S")
        subscriber.add_grant(kdc.authorize("S", Filter.topic("cancerTrail")))
        sealed = _publish(
            kdc, {"topic": "cancerTrail", "age": 99, "message": "m"}
        )
        assert subscriber.receive(sealed, _lookup(kdc)).event["message"] == "m"

    def test_range_subscriber_cannot_read_plain_event(self, kdc):
        """A filter requiring the age attribute doesn't match plain events."""
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize("S", Filter.numeric_range("cancerTrail", "age", 0, 127))
        )
        sealed = _publish(kdc, {"topic": "cancerTrail", "message": "m"})
        assert subscriber.receive(sealed, _lookup(kdc)) is None


class TestEpochs:
    def test_expired_grant_refused(self, kdc):
        subscriber = Subscriber("S")
        grant = kdc.authorize(
            "S", Filter.numeric_range("cancerTrail", "age", 0, 127),
            at_time=0.0,
        )
        subscriber.add_grant(grant)
        sealed = _publish(
            kdc, {"topic": "cancerTrail", "age": 25, "message": "m"}
        )
        late = grant.expires_at + 1.0
        assert subscriber.receive(sealed, _lookup(kdc), at_time=late) is None

    def test_next_epoch_event_unreadable_with_old_grant(self, kdc):
        """Lazy revocation: old keys cannot open next-epoch events."""
        subscriber = Subscriber("S")
        grant = kdc.authorize(
            "S", Filter.numeric_range("cancerTrail", "age", 0, 127),
            at_time=0.0,
        )
        subscriber.add_grant(grant)
        next_epoch_time = grant.expires_at + 1.0
        publisher = Publisher("P", kdc)
        sealed = publisher.publish(
            Event(
                {"topic": "cancerTrail", "age": 25, "message": "m"},
                publisher="P",
            ),
            secret_attributes={"message"},
            at_time=next_epoch_time,
        )
        # Even at a time where the grant is (wrongly) considered active,
        # the keys simply do not match the new epoch's topic key.
        assert subscriber.receive(sealed, _lookup(kdc), at_time=0.0) is None

    def test_drop_expired(self, kdc):
        subscriber = Subscriber("S")
        grant = kdc.authorize("S", Filter.topic("newsletters"), at_time=0.0)
        subscriber.add_grant(grant)
        dropped = subscriber.drop_expired(grant.expires_at + 1)
        assert dropped == 1
        assert subscriber.key_count() == 0


class TestEngineBookkeeping:
    def test_grant_ownership_enforced(self, kdc):
        subscriber = Subscriber("S")
        grant = kdc.authorize("other", Filter.topic("newsletters"))
        with pytest.raises(ValueError):
            subscriber.add_grant(grant)

    def test_publisher_requires_topic(self, kdc):
        publisher = Publisher("P", kdc)
        with pytest.raises(ValueError):
            publisher.publish(Event({"message": "m"}))

    def test_default_secret_attributes(self, kdc):
        publisher = Publisher("P", kdc)
        sealed = publisher.publish(
            Event({"topic": "newsletters", "message": "m", "body": "b"})
        )
        assert "message" not in sealed.routable
        assert "body" not in sealed.routable

    def test_publisher_memoizes_topic_key(self, kdc):
        publisher = Publisher("P", kdc)
        publisher.publish(Event({"topic": "newsletters", "message": "m"}))
        publisher.publish(Event({"topic": "newsletters", "message": "m2"}))
        assert kdc.stats.publisher_keys_issued == 1

    def test_temporal_locality_reduces_hash_work(self, kdc):
        publisher = Publisher("P", kdc)
        publisher.publish(
            Event({"topic": "cancerTrail", "age": 64, "message": "a"})
        )
        cold = publisher.stats.hash_operations
        publisher.publish(
            Event({"topic": "cancerTrail", "age": 64, "message": "b"})
        )
        warm_same = publisher.stats.hash_operations - cold
        assert warm_same == 0  # exact cache hit
        publisher.publish(
            Event({"topic": "cancerTrail", "age": 65, "message": "c"})
        )
        warm_near = publisher.stats.hash_operations - cold
        assert 0 < warm_near < cold

    def test_subscriber_cache_reduces_hash_work(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize("S", Filter.numeric_range("cancerTrail", "age", 0, 127))
        )
        publisher = Publisher("P", kdc)
        lookup = _lookup(kdc)
        first = publisher.publish(
            Event({"topic": "cancerTrail", "age": 33, "message": "x"})
        )
        second = publisher.publish(
            Event({"topic": "cancerTrail", "age": 33, "message": "y"})
        )
        first_result = subscriber.receive(first, lookup)
        cold_ops = first_result.hash_operations
        second_result = subscriber.receive(second, lookup)
        assert second_result.hash_operations == 0
        assert cold_ops > 0
