"""The key distribution center: epochs, statelessness, grants."""

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC, TOPIC_COMPONENT
from repro.core.nakt import NumericKeySpace
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op


def test_topic_key_deterministic(medical_kdc):
    assert medical_kdc.topic_key("cancerTrail") == medical_kdc.topic_key(
        "cancerTrail"
    )


def test_topic_key_differs_per_topic(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic("a", CompositeKeySpace({}))
    kdc.register_topic("b", CompositeKeySpace({}))
    assert kdc.topic_key("a") != kdc.topic_key("b")


def test_unregistered_topic_rejected(medical_kdc):
    with pytest.raises(KeyError):
        medical_kdc.topic_key("unknown")


def test_short_master_key_rejected():
    with pytest.raises(ValueError):
        KDC(master_key=b"short")


def test_epoch_rollover_changes_topic_key(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic("t", CompositeKeySpace({}), epoch_length=100.0)
    early = kdc.topic_key("t", at_time=0.0)
    late = kdc.topic_key("t", at_time=500.0)
    assert early != late


def test_epoch_numbering_consistent(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic("t", CompositeKeySpace({}), epoch_length=100.0)
    epoch = kdc.epoch_of("t", 250.0)
    end = kdc.epoch_end("t", 250.0)
    assert kdc.epoch_of("t", end - 1e-6) == epoch
    assert kdc.epoch_of("t", end + 1e-6) == epoch + 1


def test_epoch_offsets_are_staggered_per_topic(master_key):
    """Flash-crowd avoidance: epochs don't all roll over together."""
    kdc = KDC(master_key=master_key)
    for name in ("t0", "t1", "t2", "t3", "t4", "t5"):
        kdc.register_topic(name, CompositeKeySpace({}), epoch_length=1000.0)
    ends = {kdc.epoch_end(name, 0.0) for name in
            ("t0", "t1", "t2", "t3", "t4", "t5")}
    assert len(ends) > 1


def test_invalid_epoch_length_rejected(master_key):
    kdc = KDC(master_key=master_key)
    with pytest.raises(ValueError):
        kdc.register_topic("t", CompositeKeySpace({}), epoch_length=0)


def test_replica_is_stateless_equivalent(medical_kdc):
    """Replicas share only rk(KDC) + registry yet issue identical keys."""
    replica = medical_kdc.replicate()
    assert replica.topic_key("cancerTrail") == medical_kdc.topic_key(
        "cancerTrail"
    )
    original = medical_kdc.authorize(
        "S", Filter.numeric_range("cancerTrail", "age", 20, 60)
    )
    cloned = replica.authorize(
        "S", Filter.numeric_range("cancerTrail", "age", 20, 60)
    )
    assert [c.components for c in original.clauses] == [
        c.components for c in cloned.clauses
    ]


def test_per_publisher_topic_keys(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic("t", CompositeKeySpace({}), per_publisher=True)
    key_p = kdc.topic_key("t", publisher="P")
    key_q = kdc.topic_key("t", publisher="Q")
    assert key_p != key_q
    with pytest.raises(ValueError):
        kdc.topic_key("t")  # publisher identity required


def test_shared_topic_key_ignores_publisher(medical_kdc):
    assert medical_kdc.topic_key(
        "cancerTrail", publisher="P"
    ) == medical_kdc.topic_key("cancerTrail", publisher="Q")


def test_grant_contains_cover_elements(medical_kdc):
    grant = medical_kdc.authorize(
        "S", Filter.numeric_range("cancerTrail", "age", 16, 31)
    )
    assert grant.topic == "cancerTrail"
    elements = [
        str(c.element)
        for clause in grant.clauses
        for c in clause.components
        if c.attribute == "age"
    ]
    # (16, 31) is exactly the depth-1 element "1" of a 128-leaf... no:
    # for range 128 the cover of (16, 31) is the single element 0001x ->
    # it must be a single aligned block.
    assert len(elements) == 1


def test_grant_counts_and_bytes(medical_kdc):
    grant = medical_kdc.authorize(
        "S", Filter.numeric_range("cancerTrail", "age", 20, 60)
    )
    assert grant.key_count() >= 1
    assert grant.wire_bytes() >= 16 * grant.key_count()
    assert grant.hash_operations > 0


def test_topic_only_grant_gets_topic_and_root_components(medical_kdc):
    grant = medical_kdc.authorize("S", Filter.topic("cancerTrail"))
    clause = grant.clauses[0]
    attributes = {c.attribute for c in clause.components}
    assert TOPIC_COMPONENT in attributes
    assert "age" in attributes  # root component for the securable attr


def test_constrained_grant_has_no_topic_component(medical_kdc):
    grant = medical_kdc.authorize(
        "S", Filter.numeric_range("cancerTrail", "age", 20, 60)
    )
    attributes = {
        c.attribute for clause in grant.clauses for c in clause.components
    }
    assert TOPIC_COMPONENT not in attributes


def test_grant_requires_topic_constraint(medical_kdc):
    with pytest.raises(ValueError, match="topic"):
        medical_kdc.authorize(
            "S", Filter.of(Constraint("age", Op.GT, 20))
        )


def test_disjunction_grants_one_clause_each(medical_kdc):
    filters = [
        Filter.numeric_range("cancerTrail", "age", 0, 20),
        Filter.numeric_range("cancerTrail", "age", 60, 100),
    ]
    grant = medical_kdc.authorize("S", filters)
    assert len(grant.clauses) == 2


def test_disjunction_must_share_topic(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic("a", CompositeKeySpace({}))
    kdc.register_topic("b", CompositeKeySpace({}))
    with pytest.raises(ValueError, match="same topic"):
        kdc.authorize("S", [Filter.topic("a"), Filter.topic("b")])


def test_stats_accumulate(medical_kdc):
    medical_kdc.authorize(
        "S", Filter.numeric_range("cancerTrail", "age", 20, 60)
    )
    assert medical_kdc.stats.grants_issued == 1
    assert medical_kdc.stats.keys_issued >= 1
    assert medical_kdc.stats.bytes_sent > 0
    medical_kdc.stats.reset()
    assert medical_kdc.stats.grants_issued == 0


def test_unsatisfiable_numeric_constraints_rejected(medical_kdc):
    unsatisfiable = Filter.of(
        Constraint("topic", Op.EQ, "cancerTrail"),
        Constraint("age", Op.GE, 60),
        Constraint("age", Op.LE, 20),
    )
    with pytest.raises(ValueError, match="unsatisfiable"):
        medical_kdc.authorize("S", unsatisfiable)


def test_issue_token_deterministic(medical_kdc):
    assert medical_kdc.issue_token("cancerTrail") == medical_kdc.issue_token(
        "cancerTrail"
    )
    assert medical_kdc.issue_token("cancerTrail") != medical_kdc.topic_key(
        "cancerTrail"
    )
