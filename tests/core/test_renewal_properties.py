"""Property-based renewal continuity: no decrypt coverage holes.

For any epoch length, lead time, and tick schedule whose gaps stay under
one epoch, a subscriber driven by :class:`RenewalManager` must decrypt
every event published while it holds a standing subscription -- including
events landing exactly on epoch boundaries, where the float arithmetic of
``epoch_of`` is at its most treacherous.
"""

from hypothesis import given, settings, strategies as st

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.renewal import RenewalManager
from repro.core.subscriber import Subscriber
from repro.siena.events import Event
from repro.siena.filters import Filter

MASTER = bytes(range(16))


def _system(epoch_length):
    kdc = KDC(master_key=MASTER)
    kdc.register_topic(
        "t",
        CompositeKeySpace({"v": NumericKeySpace("v", 64)}),
        epoch_length=epoch_length,
    )
    return kdc, Publisher("P", kdc), Subscriber("S")


@settings(max_examples=40, deadline=None)
@given(
    epoch_length=st.floats(0.5, 100.0, allow_nan=False),
    lead_fraction=st.floats(0.0, 0.5),
    gap_fractions=st.lists(
        # Tick gaps as fractions of the epoch; < 1 means the manager is
        # never silent for a whole epoch, so continuity must hold.
        st.floats(0.05, 0.95),
        min_size=5,
        max_size=40,
    ),
)
def test_no_coverage_holes_at_any_tick_schedule(
    epoch_length, lead_fraction, gap_fractions
):
    kdc, publisher, subscriber = _system(epoch_length)
    manager = RenewalManager(
        subscriber, kdc, renew_lead_time=lead_fraction * epoch_length
    )
    manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    lookup = lambda name: kdc.config_for(name).schema  # noqa: E731
    now = 0.0
    for gap in gap_fractions:
        now += gap * epoch_length
        manager.tick(now)
        sealed = publisher.publish(
            Event({"topic": "t", "v": 11, "message": "x"}), at_time=now
        )
        assert subscriber.receive(sealed, lookup, at_time=now) is not None


@settings(max_examples=40, deadline=None)
@given(
    epoch_length=st.floats(0.5, 100.0, allow_nan=False),
    epochs=st.integers(1, 12),
)
def test_boundary_ticks_walk_epochs_without_duplicates(epoch_length, epochs):
    """Zero-lead ticks landing exactly on each boundary always install
    the upcoming epoch's grant (the float-boundary edge case)."""
    kdc, publisher, subscriber = _system(epoch_length)
    manager = RenewalManager(subscriber, kdc, renew_lead_time=0.0)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    lookup = lambda name: kdc.config_for(name).schema  # noqa: E731
    current = grant
    for _ in range(epochs):
        boundary = current.expires_at
        assert manager.tick(boundary) == 1
        newest = max(subscriber.grants, key=lambda g: g.epoch)
        assert newest.epoch == current.epoch + 1
        # The fresh grant opens an event published exactly at the boundary.
        sealed = publisher.publish(
            Event({"topic": "t", "v": 5, "message": "b"}), at_time=boundary
        )
        assert subscriber.receive(sealed, lookup, at_time=boundary) is not None
        current = newest


@settings(max_examples=25, deadline=None)
@given(
    epoch_length=st.floats(0.5, 50.0, allow_nan=False),
    grace_fraction=st.floats(0.05, 0.5),
    flight_fraction=st.floats(0.0, 1.0),
)
def test_grace_window_covers_in_flight_boundary_events(
    epoch_length, grace_fraction, flight_fraction
):
    """An old-epoch event delivered within the grace window after the
    boundary always opens, however late within the window it lands."""
    kdc = KDC(master_key=MASTER)
    kdc.register_topic(
        "t",
        CompositeKeySpace({"v": NumericKeySpace("v", 64)}),
        epoch_length=epoch_length,
    )
    publisher = Publisher("P", kdc)
    grace = grace_fraction * epoch_length
    subscriber = Subscriber("S", grace_period=grace)
    manager = RenewalManager(subscriber, kdc)
    grant = manager.add_subscription(
        Filter.numeric_range("t", "v", 0, 63), at_time=0.0
    )
    sealed = publisher.publish(
        Event({"topic": "t", "v": 2, "message": "old"}),
        at_time=grant.expires_at - 0.25 * epoch_length,
    )
    arrival = grant.expires_at + flight_fraction * grace * 0.999
    manager.tick(arrival)
    lookup = lambda name: kdc.config_for(name).schema  # noqa: E731
    assert subscriber.receive(sealed, lookup, at_time=arrival) is not None
