"""Key tree identifiers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ktid import KTID


def test_root():
    root = KTID.root()
    assert root.depth == 0
    assert str(root) == "Ø"


def test_from_index_matches_paper_figure():
    # Figure 1: leaf for blocks of value 22 with lc=4 has ktid 101.
    assert str(KTID.from_index(5, 3)) == "101"


def test_from_index_bounds():
    with pytest.raises(ValueError):
        KTID.from_index(8, 3)  # only 8 nodes at depth 3 (0..7)
    with pytest.raises(ValueError):
        KTID.from_index(-1, 3)
    with pytest.raises(ValueError):
        KTID.from_index(0, -1)


def test_parse_and_str_roundtrip():
    ktid = KTID.parse("0110")
    assert str(ktid) == "0110"
    assert ktid.digits == (0, 1, 1, 0)


def test_index_inverts_from_index():
    for index in range(16):
        assert KTID.from_index(index, 4).index == index


def test_digit_validation():
    with pytest.raises(ValueError):
        KTID((0, 2), arity=2)
    with pytest.raises(ValueError):
        KTID((0,), arity=1)


def test_child_and_parent():
    node = KTID.parse("10")
    assert node.child(1) == KTID.parse("101")
    assert node.child(1).parent() == node
    with pytest.raises(ValueError):
        KTID.root().parent()
    with pytest.raises(ValueError):
        node.child(2)


def test_ancestors_root_first():
    ancestors = list(KTID.parse("101").ancestors())
    assert [str(a) for a in ancestors] == ["Ø", "1", "10"]


def test_prefix_semantics():
    assert KTID.parse("1").is_prefix_of(KTID.parse("101"))
    assert KTID.parse("101").is_prefix_of(KTID.parse("101"))
    assert not KTID.parse("101").is_prefix_of(KTID.parse("1"))
    assert not KTID.parse("0").is_prefix_of(KTID.parse("101"))
    assert KTID.root().is_prefix_of(KTID.parse("101"))


def test_prefix_requires_matching_arity():
    assert not KTID((1,), arity=2).is_prefix_of(KTID((1, 0), arity=3))


def test_suffix_after():
    assert KTID.parse("101").suffix_after(KTID.parse("1")) == (0, 1)
    assert KTID.parse("101").suffix_after(KTID.parse("101")) == ()
    with pytest.raises(ValueError):
        KTID.parse("101").suffix_after(KTID.parse("0"))


def test_wire_roundtrip():
    ktid = KTID((2, 0, 1), arity=3)
    assert KTID.from_bytes(ktid.to_bytes()) == ktid


def test_wire_rejects_truncation():
    data = KTID.parse("1010").to_bytes()
    with pytest.raises(ValueError):
        KTID.from_bytes(data[:-1])
    with pytest.raises(ValueError):
        KTID.from_bytes(b"\x02")


def test_ordering_is_consistent():
    assert KTID.parse("0") < KTID.parse("1")


@given(
    depth=st.integers(0, 10),
    arity=st.integers(2, 5),
    data=st.data(),
)
def test_from_index_roundtrip_property(depth, arity, data):
    index = data.draw(st.integers(0, arity**depth - 1))
    ktid = KTID.from_index(index, depth, arity)
    assert ktid.depth == depth
    assert ktid.index == index
    assert KTID.from_bytes(ktid.to_bytes()) == ktid


@given(
    arity=st.integers(2, 4),
    prefix_digits=st.lists(st.integers(0, 1), max_size=5),
    extra_digits=st.lists(st.integers(0, 1), max_size=5),
)
def test_prefix_transitivity_property(arity, prefix_digits, extra_digits):
    prefix = KTID(tuple(prefix_digits), arity)
    full = KTID(tuple(prefix_digits + extra_digits), arity)
    assert prefix.is_prefix_of(full)
    assert full.suffix_after(prefix) == tuple(extra_digits)
