"""String prefix/suffix key space."""

import pytest
from hypothesis import given, strategies as st

from repro.core.strings import StringKeySpace

TOPIC_KEY = bytes(range(16))


class TestPrefixMode:
    def test_prefix_grant_derives_value_key(self):
        space = StringKeySpace("symbol")
        _, value_key = space.encryption_key(TOPIC_KEY, "GOOG")
        grant = space.authorization_key(TOPIC_KEY, "GO")
        derived, operations = space.derive_encryption_key(grant, "GOOG")
        assert derived == value_key
        assert operations == 3  # 'O', 'G', terminator

    def test_exact_value_grant(self):
        space = StringKeySpace("symbol")
        grant = space.authorization_key(TOPIC_KEY, "GOOG")
        derived, operations = space.derive_encryption_key(grant, "GOOG")
        assert derived == space.encryption_key(TOPIC_KEY, "GOOG")[1]
        assert operations == 1  # terminator only

    def test_non_prefix_refused(self):
        space = StringKeySpace("symbol")
        grant = space.authorization_key(TOPIC_KEY, "MS")
        with pytest.raises(ValueError):
            space.derive_encryption_key(grant, "GOOG")

    def test_empty_prefix_matches_everything(self):
        space = StringKeySpace("symbol")
        grant = space.authorization_key(TOPIC_KEY, "")
        derived, _ = space.derive_encryption_key(grant, "ANY")
        assert derived == space.encryption_key(TOPIC_KEY, "ANY")[1]

    def test_value_key_is_not_prefix_node_key(self):
        """Holding the exact-value key for "ab" must not cover "abc".

        The terminator branch separates the exact string's key from the
        prefix node's key.
        """
        space = StringKeySpace("s")
        _, ab_value_key = space.encryption_key(TOPIC_KEY, "ab")
        _, ab_prefix_key = space.authorization_key(TOPIC_KEY, "ab")
        assert ab_value_key != ab_prefix_key

    def test_distinct_values_distinct_keys(self):
        space = StringKeySpace("s")
        assert (
            space.encryption_key(TOPIC_KEY, "abc")[1]
            != space.encryption_key(TOPIC_KEY, "abd")[1]
        )


class TestSuffixMode:
    def test_suffix_grant_derives(self):
        space = StringKeySpace("s", suffix_mode=True)
        grant = space.authorization_key(TOPIC_KEY, "Trail")
        derived, _ = space.derive_encryption_key(grant, "cancerTrail")
        assert derived == space.encryption_key(TOPIC_KEY, "cancerTrail")[1]

    def test_suffix_mismatch_refused(self):
        space = StringKeySpace("s", suffix_mode=True)
        grant = space.authorization_key(TOPIC_KEY, "cancer")
        with pytest.raises(ValueError):
            space.derive_encryption_key(grant, "cancerTrail")

    def test_prefix_and_suffix_spaces_are_disjoint(self):
        prefix_space = StringKeySpace("s")
        suffix_space = StringKeySpace("s", suffix_mode=True)
        assert (
            prefix_space.encryption_key(TOPIC_KEY, "abc")[1]
            != suffix_space.encryption_key(TOPIC_KEY, "abc")[1]
        )


def test_max_length_enforced():
    space = StringKeySpace("s", max_length=4)
    with pytest.raises(ValueError):
        space.encryption_key(TOPIC_KEY, "toolong")


def test_matches_helper():
    prefix_space = StringKeySpace("s")
    suffix_space = StringKeySpace("s", suffix_mode=True)
    assert prefix_space.matches("ab", "abc")
    assert not prefix_space.matches("bc", "abc")
    assert suffix_space.matches("bc", "abc")
    assert not suffix_space.matches("ab", "abc")


@given(
    value=st.text(alphabet="abcd", max_size=8),
    prefix_length=st.integers(0, 8),
)
def test_derivation_iff_prefix_property(value, prefix_length):
    space = StringKeySpace("s")
    prefix = value[: min(prefix_length, len(value))]
    grant = space.authorization_key(TOPIC_KEY, prefix)
    derived, _ = space.derive_encryption_key(grant, value)
    assert derived == space.encryption_key(TOPIC_KEY, value)[1]


@given(
    value=st.text(alphabet="abcd", min_size=1, max_size=8),
    other=st.text(alphabet="abcd", min_size=1, max_size=8),
)
def test_non_matching_pattern_raises_property(value, other):
    space = StringKeySpace("s")
    if not value.startswith(other):
        grant = space.authorization_key(TOPIC_KEY, other)
        with pytest.raises(ValueError):
            space.derive_encryption_key(grant, value)
