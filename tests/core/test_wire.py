"""Wire serialization of grants and sealed events."""

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.strings import StringKeySpace
from repro.core.subscriber import Subscriber
from repro.core.wire import (
    decode_grant,
    decode_sealed_event,
    encode_grant,
    encode_sealed_event,
)
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op


@pytest.fixture
def kdc(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic(
        "trial",
        CompositeKeySpace(
            {
                "age": NumericKeySpace("age", 128),
                "site": StringKeySpace("site"),
            }
        ),
    )
    kdc.register_topic("plain", CompositeKeySpace({}))
    return kdc


def test_grant_roundtrip(kdc):
    grant = kdc.authorize(
        "S",
        Filter.of(
            Constraint("topic", Op.EQ, "trial"),
            Constraint("age", Op.GE, 20),
            Constraint("age", Op.LE, 90),
            Constraint("site", Op.PREFIX, "eu-"),
        ),
    )
    decoded = decode_grant(encode_grant(grant))
    assert decoded == grant


def test_disjunctive_grant_roundtrip(kdc):
    grant = kdc.authorize(
        "S",
        [
            Filter.numeric_range("trial", "age", 0, 20),
            Filter.numeric_range("trial", "age", 80, 127),
        ],
    )
    decoded = decode_grant(encode_grant(grant))
    assert decoded == grant
    assert len(decoded.clauses) == 2


def test_decoded_grant_decrypts(kdc):
    """The acid test: a grant survives the wire and still opens events."""
    grant = kdc.authorize(
        "S", Filter.numeric_range("trial", "age", 20, 90)
    )
    subscriber = Subscriber("S")
    subscriber.add_grant(decode_grant(encode_grant(grant)))
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(
        Event({"topic": "trial", "age": 44, "site": "eu-1",
               "message": "m"}),
    )
    wire = encode_sealed_event(sealed)
    received = decode_sealed_event(wire)
    result = subscriber.receive(
        received, lambda t: kdc.config_for(t).schema
    )
    assert result is not None
    assert result.event["message"] == "m"


def test_sealed_event_roundtrip(kdc):
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(
        Event({"topic": "trial", "age": 10, "site": "us-9",
               "message": "x" * 300}),
    )
    decoded = decode_sealed_event(encode_sealed_event(sealed))
    assert decoded.routable == sealed.routable
    assert decoded.elements == sealed.elements
    assert decoded.locks == sealed.locks
    assert decoded.ciphertext == sealed.ciphertext
    assert decoded.direct == sealed.direct


def test_plain_topic_event_roundtrip(kdc):
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(Event({"topic": "plain", "message": "m"}))
    decoded = decode_sealed_event(encode_sealed_event(sealed))
    assert decoded.elements == {"topic": "plain"}


def test_multi_lock_event_roundtrip(kdc):
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(
        Event({"topic": "trial", "age": 5, "site": "eu-2",
               "message": "m"}),
        extra_lock_subsets=[("age",), ("site",)],
    )
    decoded = decode_sealed_event(encode_sealed_event(sealed))
    assert len(decoded.locks) == 3
    assert not decoded.direct


def test_magic_checked():
    with pytest.raises(ValueError):
        decode_grant(b"XXXXgarbage")
    with pytest.raises(ValueError):
        decode_sealed_event(b"XXXXgarbage")


def test_truncation_detected(kdc):
    grant = kdc.authorize("S", Filter.topic("plain"))
    data = encode_grant(grant)
    with pytest.raises((ValueError, IndexError, Exception)):
        decode_grant(data[:-5])


def test_trailing_bytes_rejected(kdc):
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(Event({"topic": "plain", "message": "m"}))
    data = encode_sealed_event(sealed)
    with pytest.raises(ValueError, match="trailing"):
        decode_sealed_event(data + b"\x00")
