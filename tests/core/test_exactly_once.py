"""End-to-end exactly-once: envelope stamping and subscriber dedup.

The acceptance property: envelope metadata (origin + sequence) is pure
framing, stamped AFTER sealing -- ciphertexts and decrypted streams are
byte-identical with and without it -- while giving the subscriber edge
enough to suppress at-least-once duplicates.
"""

from dataclasses import replace

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.subscriber import Subscriber
from repro.core.wire import decode_sealed_event, encode_sealed_event
from repro.siena.events import Event
from repro.siena.filters import Filter


@pytest.fixture
def kdc():
    kdc = KDC(master_key=bytes(16))
    kdc.register_topic(
        "cancerTrail",
        CompositeKeySpace({"age": NumericKeySpace("age", 128)}),
    )
    return kdc


@pytest.fixture
def lookup(kdc):
    return lambda topic: kdc.config_for(topic).schema


def _reader(kdc):
    subscriber = Subscriber("S")
    subscriber.add_grant(
        kdc.authorize("S", Filter.numeric_range("cancerTrail", "age", 0, 127))
    )
    return subscriber


def _publish(kdc, k=0):
    publisher = Publisher("P", kdc)
    return publisher.publish(
        Event(
            {"topic": "cancerTrail", "age": 25, "message": f"m{k}"},
            publisher="P",
        ),
        secret_attributes={"message"},
    )


def test_publisher_stamps_monotonic_sequences(kdc):
    publisher = Publisher("P", kdc)
    event = Event(
        {"topic": "cancerTrail", "age": 25, "message": "m"}, publisher="P"
    )
    sealed = [
        publisher.publish(event, secret_attributes={"message"})
        for _ in range(3)
    ]
    assert [s.origin for s in sealed] == ["P", "P", "P"]
    assert [s.sequence for s in sealed] == [0, 1, 2]


def test_stamp_is_metadata_only_decrypted_stream_unchanged(kdc, lookup):
    stamped = _publish(kdc)
    stripped = replace(stamped, origin=None, sequence=None)
    assert stamped.ciphertext == stripped.ciphertext
    assert stamped.locks == stripped.locks
    assert stamped.elements == stripped.elements
    assert stamped.routable.attributes == stripped.routable.attributes
    opened_stamped = _reader(kdc).receive(stamped, lookup)
    opened_stripped = _reader(kdc).receive(stripped, lookup)
    assert opened_stamped.event.attributes == opened_stripped.event.attributes
    assert (
        opened_stamped.decrypt_operations
        == opened_stripped.decrypt_operations
    )


def test_wire_bytes_identical_past_the_envelope_block(kdc):
    stamped = _publish(kdc)
    stripped = replace(stamped, origin=None, sequence=None)
    stamped_wire = encode_sealed_event(stamped)
    stripped_wire = encode_sealed_event(stripped)
    # magic + flags, then (origin, sequence) only on the stamped frame;
    # everything after -- including the ciphertext -- is byte-identical.
    assert stripped_wire[:5] == b"PSE2\x00"
    assert stamped_wire[4] == 0x01
    assert stamped_wire.endswith(stripped_wire[5:])


def test_wire_roundtrip_preserves_the_stamp(kdc):
    stamped = _publish(kdc, k=3)
    decoded = decode_sealed_event(encode_sealed_event(stamped))
    assert decoded.origin == "P"
    assert decoded.sequence == stamped.sequence
    assert decoded.ciphertext == stamped.ciphertext
    stripped = replace(stamped, origin=None, sequence=None)
    decoded = decode_sealed_event(encode_sealed_event(stripped))
    assert decoded.origin is None and decoded.sequence is None


def test_legacy_pse1_frames_still_decode(kdc):
    stripped = replace(_publish(kdc), origin=None, sequence=None)
    modern = encode_sealed_event(stripped)
    legacy = b"PSE1" + modern[5:]  # v1: no flags byte, no envelope block
    decoded = decode_sealed_event(legacy)
    assert decoded.origin is None and decoded.sequence is None
    assert decoded.ciphertext == stripped.ciphertext


def test_unknown_flags_rejected(kdc):
    wire = bytearray(
        encode_sealed_event(replace(_publish(kdc), origin=None, sequence=None))
    )
    wire[4] = 0x80
    with pytest.raises(ValueError):
        decode_sealed_event(bytes(wire))


def test_subscriber_suppresses_redelivered_stamped_events(kdc, lookup):
    subscriber = _reader(kdc)
    sealed = _publish(kdc)
    assert subscriber.receive(sealed, lookup) is not None
    assert subscriber.receive(sealed, lookup) is None  # duplicate
    assert subscriber.stats.events_opened == 1
    assert subscriber.stats.duplicates_suppressed == 1
    # Suppression is not "unreadable": the crypto was never attempted.
    assert subscriber.stats.events_unreadable == 0


def test_unstamped_events_bypass_the_dedup_window(kdc, lookup):
    subscriber = _reader(kdc)
    stripped = replace(_publish(kdc), origin=None, sequence=None)
    assert subscriber.receive(stripped, lookup) is not None
    assert subscriber.receive(stripped, lookup) is not None
    assert subscriber.stats.events_opened == 2
    assert subscriber.stats.duplicates_suppressed == 0


def test_dedup_window_zero_disables_suppression(kdc, lookup):
    subscriber = Subscriber("S", dedup_window=0)
    subscriber.add_grant(
        kdc.authorize("S", Filter.numeric_range("cancerTrail", "age", 0, 127))
    )
    sealed = _publish(kdc)
    assert subscriber.receive(sealed, lookup) is not None
    assert subscriber.receive(sealed, lookup) is not None
    assert subscriber.stats.duplicates_suppressed == 0


def test_wire_size_accounts_for_the_stamp(kdc):
    stamped = _publish(kdc)
    stripped = replace(stamped, origin=None, sequence=None)
    assert stamped.wire_size() == stripped.wire_size() + len("P") + 8
