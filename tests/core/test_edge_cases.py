"""Edge cases across the core package."""

import pytest

from repro.core import (
    KDC,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    StringKeySpace,
    Subscriber,
)
from repro.core.nakt import NumericKeySpace as NKS
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op


class TestNumericFloats:
    def test_float_values_map_to_blocks(self):
        space = NKS("price", 100, least_count=5)
        assert space.ktid(22.9) == space.ktid(20)
        assert space.ktid(24.999) == space.ktid(20)
        assert space.ktid(25.0) != space.ktid(24.9)

    def test_float_bounds_rejected_outside_range(self):
        space = NKS("price", 100)
        with pytest.raises(ValueError):
            space.ktid(100.0)
        assert space.ktid(99.999) == space.ktid(99)

    def test_float_subscription_ranges(self):
        space = NKS("price", 100)
        cover = space.cover(10.5, 20.5)
        lows = min(space.node_range(k)[0] for k in cover)
        highs = max(space.node_range(k)[1] for k in cover)
        assert lows <= 10.5 and highs >= 20


class TestSuffixThroughKDC:
    @pytest.fixture
    def kdc(self, master_key):
        kdc = KDC(master_key=master_key)
        kdc.register_topic(
            "files",
            CompositeKeySpace(
                {"name": StringKeySpace("name", suffix_mode=True)}
            ),
        )
        return kdc

    def test_suffix_grant_opens_matching_event(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize(
                "S",
                Filter.of(
                    Constraint("topic", Op.EQ, "files"),
                    Constraint("name", Op.SUFFIX, ".pdf"),
                ),
            )
        )
        publisher = Publisher("P", kdc)
        sealed = publisher.publish(
            Event({"topic": "files", "name": "report.pdf", "message": "m"})
        )
        result = subscriber.receive(
            sealed, lambda t: kdc.config_for(t).schema
        )
        assert result.event["message"] == "m"

    def test_suffix_grant_rejects_other_extension(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize(
                "S",
                Filter.of(
                    Constraint("topic", Op.EQ, "files"),
                    Constraint("name", Op.SUFFIX, ".pdf"),
                ),
            )
        )
        publisher = Publisher("P", kdc)
        sealed = publisher.publish(
            Event({"topic": "files", "name": "report.docx", "message": "m"})
        )
        assert subscriber.receive(
            sealed, lambda t: kdc.config_for(t).schema
        ) is None

    def test_prefix_constraint_on_suffix_space_rejected(self, kdc):
        with pytest.raises(ValueError):
            kdc.authorize(
                "S",
                Filter.of(
                    Constraint("topic", Op.EQ, "files"),
                    Constraint("name", Op.PREFIX, "report"),
                ),
            )


class TestSubscriberGrantSets:
    @pytest.fixture
    def kdc(self, master_key):
        kdc = KDC(master_key=master_key)
        kdc.register_topic(
            "t", CompositeKeySpace({"v": NumericKeySpace("v", 64)})
        )
        return kdc

    def test_overlapping_grants_any_suffices(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize("S", Filter.numeric_range("t", "v", 0, 31))
        )
        subscriber.add_grant(
            kdc.authorize("S", Filter.numeric_range("t", "v", 16, 63))
        )
        publisher = Publisher("P", kdc)
        lookup = lambda n: kdc.config_for(n).schema  # noqa: E731
        for value in (5, 20, 50):
            sealed = publisher.publish(
                Event({"topic": "t", "v": value, "message": f"m{value}"})
            )
            assert subscriber.receive(sealed, lookup) is not None

    def test_stats_track_rejections_separately(self, kdc):
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize("S", Filter.numeric_range("t", "v", 0, 10))
        )
        publisher = Publisher("P", kdc)
        lookup = lambda n: kdc.config_for(n).schema  # noqa: E731
        subscriber.receive(
            publisher.publish(Event({"topic": "t", "v": 5, "message": "a"})),
            lookup,
        )
        subscriber.receive(
            publisher.publish(Event({"topic": "t", "v": 50, "message": "b"})),
            lookup,
        )
        assert subscriber.stats.events_received == 2
        assert subscriber.stats.events_opened == 1
        assert subscriber.stats.events_unreadable == 1

    def test_non_securable_constraint_checked_in_plaintext(self, kdc):
        """A constraint on a plain routable attribute gates decryption."""
        subscriber = Subscriber("S")
        subscriber.add_grant(
            kdc.authorize(
                "S",
                Filter.of(
                    Constraint("topic", Op.EQ, "t"),
                    Constraint("v", Op.GE, 0),
                    Constraint("v", Op.LE, 63),
                    Constraint("region", Op.EQ, "EU"),
                ),
            )
        )
        publisher = Publisher("P", kdc)
        lookup = lambda n: kdc.config_for(n).schema  # noqa: E731
        matching = publisher.publish(
            Event({"topic": "t", "v": 5, "region": "EU", "message": "in"})
        )
        wrong_region = publisher.publish(
            Event({"topic": "t", "v": 5, "region": "US", "message": "out"})
        )
        assert subscriber.receive(matching, lookup) is not None
        assert subscriber.receive(wrong_region, lookup) is None


class TestEnvelopeEdges:
    def test_everything_but_topic_secret(self, master_key):
        kdc = KDC(master_key=master_key)
        kdc.register_topic("t", CompositeKeySpace({}))
        publisher = Publisher("P", kdc)
        sealed = publisher.publish(
            Event({"topic": "t", "a": 1, "b": "x", "message": "m"}),
            secret_attributes={"a", "b", "message"},
        )
        assert set(sealed.routable.attributes) == {"topic"}
        subscriber = Subscriber("S")
        subscriber.add_grant(kdc.authorize("S", Filter.topic("t")))
        result = subscriber.receive(
            sealed, lambda n: kdc.config_for(n).schema
        )
        assert result.event["a"] == 1
        assert result.event["b"] == "x"

    def test_empty_message_payload(self, medical_kdc):
        publisher = Publisher("P", medical_kdc)
        sealed = publisher.publish(
            Event({"topic": "cancerTrail", "age": 5, "message": ""})
        )
        subscriber = Subscriber("S")
        subscriber.add_grant(
            medical_kdc.authorize(
                "S", Filter.numeric_range("cancerTrail", "age", 0, 127)
            )
        )
        result = subscriber.receive(
            sealed, lambda n: medical_kdc.config_for(n).schema
        )
        assert result.event["message"] == ""

    def test_large_payload(self, medical_kdc):
        payload = "x" * 50_000
        publisher = Publisher("P", medical_kdc)
        sealed = publisher.publish(
            Event({"topic": "cancerTrail", "age": 5, "message": payload})
        )
        subscriber = Subscriber("S")
        subscriber.add_grant(
            medical_kdc.authorize(
                "S", Filter.numeric_range("cancerTrail", "age", 0, 127)
            )
        )
        result = subscriber.receive(
            sealed, lambda n: medical_kdc.config_for(n).schema
        )
        assert result.event["message"] == payload
