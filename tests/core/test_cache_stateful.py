"""Model-based testing of the key cache against a reference model."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.cache import KeyCache

_PATHS = st.tuples(
    st.sampled_from(["ns-a", "ns-b"]),
    st.integers(0, 3),
    st.integers(0, 1),
)


class CacheMachine(RuleBasedStateMachine):
    """The cache must behave like an LRU dict under a byte budget."""

    def __init__(self):
        super().__init__()
        self.capacity = KeyCache.entry_cost(("ns-a", 0, 0)) * 4
        self.cache = KeyCache(self.capacity)
        #: reference model: insertion/recency-ordered dict
        self.model: dict[tuple, bytes] = {}

    def _model_evict(self):
        while (
            sum(KeyCache.entry_cost(path) for path in self.model)
            > self.capacity
        ):
            oldest = next(iter(self.model))
            del self.model[oldest]

    @rule(path=_PATHS, payload=st.binary(min_size=16, max_size=16))
    def put(self, path, payload):
        self.cache.put(path, payload)
        if path in self.model:
            del self.model[path]
        self.model[path] = payload
        self._model_evict()

    @rule(path=_PATHS)
    def get(self, path):
        expected = self.model.get(path)
        actual = self.cache.get(path)
        assert actual == expected
        if expected is not None:  # refresh recency in the model
            del self.model[path]
            self.model[path] = expected

    @rule(path=_PATHS)
    def deepest_ancestor(self, path):
        found = self.cache.deepest_ancestor(path)
        # The model's answer: longest prefix present.
        expected = None
        for length in range(len(path), -1, -1):
            candidate = path[:length]
            if candidate in self.model:
                expected = (candidate, self.model[candidate])
                break
        assert found == expected
        if expected is not None:
            del self.model[expected[0]]
            self.model[expected[0]] = expected[1]

    @rule()
    def clear(self):
        self.cache.clear()
        self.model.clear()

    @invariant()
    def sizes_agree(self):
        assert len(self.cache) == len(self.model)
        assert self.cache.size_bytes == sum(
            KeyCache.entry_cost(path) for path in self.model
        )
        assert self.cache.size_bytes <= self.capacity


TestCacheMachine = CacheMachine.TestCase
TestCacheMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
