"""The package exception hierarchy and its backward-compat guarantees."""

import pytest

from repro.errors import (
    FrameError,
    GrantDenied,
    GrantExpired,
    KDCUnavailable,
    RateLimited,
    ReproError,
)


def test_every_package_error_derives_from_repro_error():
    for error in (
        RateLimited,
        GrantDenied,
        GrantExpired,
        KDCUnavailable,
        FrameError,
    ):
        assert issubclass(error, ReproError)
        assert issubclass(error, Exception)


def test_stdlib_compat_bridges():
    """Errors that replaced stdlib types still catch as the original."""
    assert issubclass(GrantDenied, PermissionError)
    assert issubclass(KDCUnavailable, RuntimeError)
    assert issubclass(FrameError, ValueError)


def test_kdc_aliases_are_the_new_types():
    from repro.core.kdc import AuthorizationDenied, KDCUnavailableError

    assert AuthorizationDenied is GrantDenied
    assert KDCUnavailableError is KDCUnavailable


def test_flow_rate_limited_is_the_shared_type():
    from repro.flow import RateLimited as FlowRateLimited
    from repro.flow.admission import RateLimited as AdmissionRateLimited

    assert FlowRateLimited is RateLimited
    assert AdmissionRateLimited is RateLimited


def test_top_level_reexports():
    import repro

    assert repro.ReproError is ReproError
    assert repro.GrantDenied is GrantDenied
    assert repro.GrantExpired is GrantExpired
    assert repro.KDCUnavailable is KDCUnavailable
    assert repro.FrameError is FrameError
    assert repro.RateLimited is RateLimited


def test_kdc_denial_raises_the_typed_error():
    from repro.core import KDC, CompositeKeySpace, NumericKeySpace
    from repro.siena.filters import Filter

    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", 16)})
    )
    kdc.revoke("mallory", "t")
    wanted = Filter.numeric_range("t", "v", 0, 15)
    with pytest.raises(GrantDenied):
        kdc.authorize("mallory", wanted)
    with pytest.raises(PermissionError):  # legacy catch still works
        kdc.authorize("mallory", wanted)
    with pytest.raises(ReproError):  # blanket package catch too
        kdc.authorize("mallory", wanted)


def test_wire_corruption_raises_the_typed_error():
    from repro.core.wire import decode_sealed_event

    with pytest.raises(FrameError):
        decode_sealed_event(b"\x00garbage")
    with pytest.raises(ValueError):  # legacy catch still works
        decode_sealed_event(b"\x00garbage")


def test_frame_corruption_raises_the_typed_error():
    from repro.rtnet.frames import decode_payload

    with pytest.raises(FrameError):
        decode_payload(b"\xff\xff\xff")
