"""Batch lifecycle: size, timeout, and close flushes."""

import pytest

from repro.engine.batch import BatchAccumulator, EventBatch
from repro.siena.events import Event


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _event(n: int) -> Event:
    return Event({"topic": "t", "n": n})


def test_size_flush_includes_triggering_event():
    accumulator = BatchAccumulator(batch_size=3)
    assert accumulator.add(_event(0)) is None
    assert accumulator.add(_event(1)) is None
    batch = accumulator.add(_event(2))
    assert batch is not None
    assert batch.reason == "size"
    assert [event.get("n") for event in batch] == [0, 1, 2]
    assert len(accumulator) == 0


def test_batch_ids_are_sequential():
    accumulator = BatchAccumulator(batch_size=1)
    first = accumulator.add(_event(0))
    second = accumulator.add(_event(1))
    assert (first.batch_id, second.batch_id) == (0, 1)


def test_timeout_flush_excludes_late_event():
    clock = FakeClock()
    accumulator = BatchAccumulator(
        batch_size=10, flush_timeout=1.0, clock=clock
    )
    accumulator.add(_event(0))
    clock.advance(2.0)
    # The stale batch flushes before the new event enqueues: the late
    # event opens the next batch instead of absorbing into the old one.
    batch = accumulator.add(_event(1))
    assert batch.reason == "timeout"
    assert [event.get("n") for event in batch] == [0]
    assert len(accumulator) == 1


def test_poll_flushes_on_timeout_without_enqueue():
    clock = FakeClock()
    accumulator = BatchAccumulator(
        batch_size=10, flush_timeout=0.5, clock=clock
    )
    assert accumulator.poll() is None
    accumulator.add(_event(0))
    assert accumulator.poll() is None
    clock.advance(0.5)
    batch = accumulator.poll()
    assert batch is not None and batch.reason == "timeout"
    assert accumulator.poll() is None


def test_flush_drains_partial_batch():
    accumulator = BatchAccumulator(batch_size=10)
    accumulator.add(_event(0))
    accumulator.add(_event(1))
    batch = accumulator.flush()
    assert batch.reason == "close"
    assert len(batch) == 2
    assert accumulator.flush() is None


def test_timestamps_recorded():
    clock = FakeClock(100.0)
    accumulator = BatchAccumulator(batch_size=2, clock=clock)
    accumulator.add(_event(0))
    clock.advance(3.0)
    batch = accumulator.add(_event(1))
    assert batch.opened_at == 100.0
    assert batch.flushed_at == 103.0


def test_no_timeout_when_disabled():
    clock = FakeClock()
    accumulator = BatchAccumulator(batch_size=10, clock=clock)
    accumulator.add(_event(0))
    clock.advance(1e9)
    assert accumulator.poll() is None
    assert accumulator.add(_event(1)) is None


def test_wire_size_sums_events():
    batch = EventBatch((_event(0), _event(1)), batch_id=0)
    assert batch.wire_size() == _event(0).wire_size() + _event(1).wire_size()


@pytest.mark.parametrize("bad", [0, -1])
def test_rejects_bad_batch_size(bad):
    with pytest.raises(ValueError):
        BatchAccumulator(batch_size=bad)


def test_rejects_negative_timeout():
    with pytest.raises(ValueError):
        BatchAccumulator(flush_timeout=-0.1)
