"""DisseminationEngine: dispatch, metrics, lifecycle."""

import pytest

from repro.engine import DisseminationEngine, EngineCaches, EngineConfig
from repro.obs.metrics import MetricsRegistry
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class RecordingTransport:
    def __init__(self):
        self.batches: list[list[Event]] = []

    def publish(self, events):
        self.batches.append(list(events))


def _event(n: int) -> Event:
    return Event({"topic": "t", "n": n})


def test_size_flush_dispatches_to_transport():
    transport = RecordingTransport()
    engine = DisseminationEngine(transport, EngineConfig(batch_size=2))
    engine.publish(_event(0))
    assert transport.batches == []
    assert engine.pending == 1
    engine.publish(_event(1))
    assert [[e.get("n") for e in b] for b in transport.batches] == [[0, 1]]
    assert engine.pending == 0


def test_close_drains_partial_and_refuses_publish():
    transport = RecordingTransport()
    engine = DisseminationEngine(transport, EngineConfig(batch_size=10))
    engine.publish(_event(0))
    final = engine.close()
    assert final is not None and final.reason == "close"
    assert len(transport.batches) == 1
    with pytest.raises(RuntimeError):
        engine.publish(_event(1))
    assert engine.close() is None  # idempotent


def test_timeout_flush_via_poll():
    transport = RecordingTransport()
    clock = FakeClock()
    engine = DisseminationEngine(
        transport,
        EngineConfig(batch_size=10, flush_timeout=1.0),
        clock=clock,
    )
    engine.publish(_event(0))
    assert engine.poll() is None
    clock.now = 1.5
    batch = engine.poll()
    assert batch is not None and batch.reason == "timeout"
    assert len(transport.batches) == 1


def test_metrics_registered():
    registry = MetricsRegistry()
    engine = DisseminationEngine(
        RecordingTransport(), EngineConfig(batch_size=2), registry
    )
    for n in range(5):
        engine.publish(_event(n))
    engine.close()
    snapshot = registry.snapshot()
    assert snapshot["counters"]["engine_events_total"] == 5
    assert snapshot["counters"]['engine_batches_total{reason="size"}'] == 2
    assert snapshot["counters"]['engine_batches_total{reason="close"}'] == 1
    assert snapshot["histograms"]["engine_batch_events"]["count"] == 3


def test_engine_over_broker_tree_delivers_everything():
    tree = BrokerTree(num_brokers=7)
    received = []
    tree.attach_subscriber("s", tree.leaf_ids()[0], received.append)
    tree.subscribe("s", Filter.topic("news"))
    engine = DisseminationEngine(tree, EngineConfig(batch_size=3))
    for n in range(7):
        engine.publish(Event({"topic": "news", "n": n}))
    engine.close()
    assert [event.get("n") for event in received] == list(range(7))


def test_rejects_bad_config():
    with pytest.raises(ValueError):
        EngineConfig(batch_size=0)


def test_engine_caches_bundle():
    registry = MetricsRegistry()
    caches = EngineCaches(EngineConfig(), registry)
    authority = caches.token_authority(bytes(16))
    token = authority.topic_token("w")
    assert authority.topic_token("w") == token  # memoized, same value
    stats = caches.stats()
    assert set(stats) == {"token_prf", "match_results"}
    assert all("hit_rate" in section for section in stats.values())
