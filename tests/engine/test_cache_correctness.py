"""The engine's caches never change observable behaviour.

Every memoization layer must be bit-identical to uncached computation --
including across epoch rollover (envelope keys change; cached key
material must not resurrect expired access) and across unsubscription
(stale match verdicts must not route events for departed filters).
"""

from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.subscriber import Subscriber
from repro.engine import EngineCaches, EngineConfig
from repro.routing.tokens import (
    CachingTokenAuthority,
    TokenAuthority,
    TokenPRFCache,
    cached_tokenized_match,
    make_routable,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.index import MatchResultCache
from repro.siena.network import BrokerTree

MASTER = bytes(range(16))


# -- token caches are exact memoizations --------------------------------------


def test_caching_authority_matches_plain_authority():
    plain = TokenAuthority(MASTER)
    caching = CachingTokenAuthority(MASTER)
    for topic in ("alpha", "beta"):
        assert caching.topic_token(topic) == plain.topic_token(topic)
        for element in (KTID(), KTID((0,)), KTID((1, 0)), "prefix-x"):
            assert caching.element_token(
                topic, "v", element
            ) == plain.element_token(topic, "v", element)
    # Second pass hits the cache; values must not change.
    assert caching.topic_token("alpha") == plain.topic_token("alpha")


def test_caching_authority_correct_under_eviction():
    plain = TokenAuthority(MASTER)
    tiny = CachingTokenAuthority(MASTER, capacity=2)
    topics = [f"t{i}" for i in range(8)]
    for _ in range(2):  # second pass mostly misses after eviction
        for topic in topics:
            assert tiny.topic_token(topic) == plain.topic_token(topic)
    assert tiny.cache.stats()["evictions"] > 0


def test_prf_cache_and_cached_match_equal_uncached():
    authority = TokenAuthority(MASTER)
    prf_cache = TokenPRFCache()
    cached = cached_tokenized_match(prf_cache)
    subscription = tokenized_subscription(authority, "alpha", {"v": KTID((0,))})
    other = tokenized_subscription(authority, "beta")
    for value_element in (KTID((0, 0)), KTID((1,)), KTID()):
        event = tokenize_event(
            authority,
            Event({"x": 1}),
            {"v": value_element},
            "alpha",
        )
        for filter_ in (subscription, other):
            assert cached(filter_, event) == tokenized_match(filter_, event)
            # repeat: served from cache, same verdict
            assert cached(filter_, event) == tokenized_match(filter_, event)


def test_prf_cache_proof_is_exact():
    from repro.crypto.prf import F

    cache = TokenPRFCache()
    token, nonce = b"t" * 32, b"n" * 16
    assert cache.proof(token, nonce) == F(token, nonce)
    assert cache.proof(token, nonce) == F(token, nonce)
    routable = make_routable(token)
    assert cache.matches(token, routable)
    assert not cache.matches(b"u" * 32, routable)


# -- match cache across unsubscription ----------------------------------------


def _tokenized_tree(caches: EngineCaches, num_brokers=7):
    return BrokerTree(
        num_brokers=num_brokers,
        match=caches.tokenized_match(),
        match_cache=caches.match_results,
    )


def _tokenized_event(authority, topic, seq):
    return tokenize_event(
        authority, Event({"_seq": seq}), {}, topic
    )


def test_unsubscribed_filter_stops_matching_despite_warm_cache():
    caches = EngineCaches(EngineConfig())
    authority = caches.token_authority(MASTER)
    tree = _tokenized_tree(caches)
    received = []
    leaf = tree.leaf_ids()[0]
    tree.attach_subscriber("s", leaf, received.append)
    news = tokenized_subscription(authority, "news")
    tree.subscribe("s", news)

    tree.publish(_tokenized_event(authority, "news", 0))
    assert len(received) == 1  # cache now holds positive verdicts

    tree.unsubscribe("s", news)
    tree.publish(_tokenized_event(authority, "news", 1))
    assert len(received) == 1  # stale verdicts must not route


def test_partial_unsubscribe_keeps_other_interface_served():
    caches = EngineCaches(EngineConfig())
    authority = caches.token_authority(MASTER)
    tree = _tokenized_tree(caches)
    leaves = tree.leaf_ids()
    got_a, got_b = [], []
    tree.attach_subscriber("a", leaves[0], got_a.append)
    tree.attach_subscriber("b", leaves[1], got_b.append)
    news = tokenized_subscription(authority, "news")
    tree.subscribe("a", news)
    tree.subscribe("b", news)

    tree.publish(_tokenized_event(authority, "news", 0))
    tree.unsubscribe("a", news)
    tree.publish(_tokenized_event(authority, "news", 1))
    assert len(got_a) == 1
    assert len(got_b) == 2  # the shared filter stays live for b


def test_invalidate_filter_drops_entries():
    cache = MatchResultCache()
    filter_ = Filter.topic("news")
    event = Event({"topic": "news"})
    cache.store(filter_, event, True)
    assert cache.lookup(filter_, event) is True
    removed = cache.invalidate_filter(filter_)
    assert removed == 1
    assert cache.lookup(filter_, event) is None
    assert cache.invalidate_filter(filter_) == 0  # idempotent


def test_match_cache_value_vector_ignores_seq():
    """Verdicts key on the filter's constrained values only, so the
    per-event ``_seq`` tag must not defeat the memo."""
    cache = MatchResultCache()
    filter_ = Filter.topic("news")
    cache.store(filter_, Event({"topic": "news", "_seq": 1}), True)
    assert cache.lookup(filter_, Event({"topic": "news", "_seq": 2})) is True
    assert cache.lookup(filter_, Event({"topic": "other", "_seq": 1})) is None


# -- key caches across epoch rollover -----------------------------------------


def _epoch_fixture(epoch_length=10.0):
    kdc = KDC(master_key=MASTER)
    kdc.register_topic(
        "ward",
        CompositeKeySpace({"v": NumericKeySpace("v", 8)}),
        epoch_length,
    )
    return kdc


def test_epoch_rollover_with_warm_caches_matches_cold():
    kdc = _epoch_fixture()
    publisher = Publisher("P", kdc)  # persistent KeyCache across epochs
    schema = lambda topic: kdc.config_for(topic).schema  # noqa: E731

    warm = Subscriber("warm")
    for at_time in (0.0, 15.0):  # grants for epoch 0 and epoch 1
        warm.add_grant(kdc.authorize("warm", Filter.topic("ward"),
                                     at_time=at_time))

    outcomes_warm, outcomes_cold = [], []
    for seq, at_time in enumerate((0.0, 15.0)):
        sealed = publisher.publish(
            Event({"topic": "ward", "v": 3, "payload": f"m{seq}"},
                  publisher="P"),
            at_time=at_time,
        )
        opened = warm.receive(sealed, schema, at_time=at_time)
        outcomes_warm.append(opened.event if opened else None)

        cold = Subscriber(f"cold{seq}")  # fresh cache per event
        cold.add_grant(kdc.authorize(f"cold{seq}", Filter.topic("ward"),
                                     at_time=at_time))
        opened_cold = cold.receive(sealed, schema, at_time=at_time)
        outcomes_cold.append(opened_cold.event if opened_cold else None)

    assert outcomes_warm == outcomes_cold
    assert all(outcome is not None for outcome in outcomes_warm)


def test_expired_grant_stays_expired_with_warm_cache():
    """A warm key cache must not extend access past the grant's epoch."""
    kdc = _epoch_fixture()
    publisher = Publisher("P", kdc)
    schema = lambda topic: kdc.config_for(topic).schema  # noqa: E731

    subscriber = Subscriber("s")
    subscriber.add_grant(
        kdc.authorize("s", Filter.topic("ward"), at_time=0.0)
    )

    early = publisher.publish(
        Event({"topic": "ward", "v": 1, "payload": "early"}, publisher="P"),
        at_time=0.0,
    )
    assert subscriber.receive(early, schema, at_time=0.0) is not None

    late = publisher.publish(
        Event({"topic": "ward", "v": 1, "payload": "late"}, publisher="P"),
        at_time=15.0,
    )
    assert subscriber.receive(late, schema, at_time=15.0) is None
