"""Property: the batched engine is observationally identical to the
per-event path.

The same pre-built events (for the secure pipeline: the same *sealed*
ciphertexts, tokenized once) are disseminated through two identical
broker trees -- one via ``publish`` per event, one via the
``DisseminationEngine`` with its caches enabled -- and every subscriber
must receive exactly the same events in exactly the same order,
including under timeout flushes and partial final batches.
"""

from hypothesis import given, settings, strategies as st

from repro.core.kdc import KDC
from repro.core.composite import CompositeKeySpace
from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.core.publisher import Publisher
from repro.core.subscriber import Subscriber
from repro.engine import DisseminationEngine, EngineCaches, EngineConfig
from repro.routing.tokens import (
    TokenAuthority,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree

MASTER = bytes(range(16))
TOPICS = ("alpha", "beta", "gamma")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _attach_all(tree, subscriptions, streams):
    """Attach recording subscribers; dedup (subscriber, filter) pairs."""
    leaves = tree.leaf_ids()
    attached = {}
    for subscriber, leaf_index, subscription_filter in subscriptions:
        if subscriber not in attached:
            streams[subscriber] = []
            stream = streams[subscriber]
            tree.attach_subscriber(
                subscriber, leaves[leaf_index % len(leaves)], stream.append
            )
            attached[subscriber] = set()
        if subscription_filter not in attached[subscriber]:
            attached[subscriber].add(subscription_filter)
            tree.subscribe(subscriber, subscription_filter)


def _run_both_paths(
    num_brokers, arity, subscriptions, events, batch_size,
    match=None, flush_points=(),
):
    """Per-subscriber streams from the per-event and batched paths."""
    results = []
    for batched in (False, True):
        caches = EngineCaches(EngineConfig(batch_size=batch_size))
        if match is None:
            tree_match, match_cache = None, caches.match_results
            tree = BrokerTree(
                num_brokers=num_brokers, arity=arity,
                match_cache=match_cache if batched else None,
            )
        else:
            tree = BrokerTree(
                num_brokers=num_brokers, arity=arity,
                match=caches.tokenized_match() if batched else match,
                match_cache=caches.match_results if batched else None,
            )
        streams = {}
        _attach_all(tree, subscriptions, streams)
        if not batched:
            for event in events:
                tree.publish(event)
        else:
            clock = FakeClock()
            engine = DisseminationEngine(
                tree,
                EngineConfig(batch_size=batch_size, flush_timeout=5.0),
                clock=clock,
            )
            for index, event in enumerate(events):
                engine.publish(event)
                if index in flush_points:
                    # Simulate the flush timer firing mid-stream: the
                    # pending (partial) batch goes out as a timeout flush.
                    clock.now += 10.0
                    engine.poll()
            engine.close()
        results.append(streams)
    return results


@st.composite
def plain_scenario(draw):
    num_brokers = draw(st.integers(min_value=1, max_value=15))
    arity = draw(st.integers(min_value=1, max_value=3))
    subscriptions = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["s0", "s1", "s2", "s3"]),
                st.integers(min_value=0, max_value=7),
                st.one_of(
                    st.sampled_from(TOPICS).map(Filter.topic),
                    st.tuples(
                        st.sampled_from(TOPICS),
                        st.integers(min_value=0, max_value=40),
                        st.integers(min_value=0, max_value=40),
                    ).map(
                        lambda t: Filter.numeric_range(
                            t[0], "v", min(t[1], t[2]), max(t[1], t[2])
                        )
                    ),
                ),
            ),
            min_size=1,
            max_size=8,
        )
    )
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(TOPICS),
                st.integers(min_value=0, max_value=40),
            ).map(lambda t: Event({"topic": t[0], "v": t[1]})),
            min_size=1,
            max_size=24,
        )
    )
    batch_size = draw(st.integers(min_value=1, max_value=10))
    flush_points = draw(
        st.sets(
            st.integers(min_value=0, max_value=len(events) - 1), max_size=3
        )
    )
    return num_brokers, arity, subscriptions, events, batch_size, flush_points


@settings(max_examples=40, deadline=None)
@given(plain_scenario())
def test_plain_equivalence(scenario):
    num_brokers, arity, subscriptions, events, batch_size, flush = scenario
    per_event, batched = _run_both_paths(
        num_brokers, arity, subscriptions, events, batch_size,
        flush_points=flush,
    )
    assert per_event == batched


@st.composite
def tokenized_scenario(draw):
    num_brokers = draw(st.integers(min_value=1, max_value=15))
    arity = draw(st.integers(min_value=2, max_value=3))
    subscriptions = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["s0", "s1", "s2"]),
                st.integers(min_value=0, max_value=7),
                st.sampled_from(TOPICS),
                st.one_of(
                    st.none(),
                    st.integers(min_value=0, max_value=6),  # KTID index
                ),
            ),
            min_size=1,
            max_size=6,
        )
    )
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(TOPICS),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=1,
            max_size=16,
        )
    )
    batch_size = draw(st.integers(min_value=1, max_value=7))
    flush_points = draw(
        st.sets(
            st.integers(min_value=0, max_value=len(events) - 1), max_size=2
        )
    )
    return num_brokers, arity, subscriptions, events, batch_size, flush_points


def _ktid_elements(space: NumericKeySpace):
    """A deterministic list of elements at mixed depths to subscribe on."""
    elements = [KTID()]
    frontier = [KTID()]
    while frontier and len(elements) < 7:
        node = frontier.pop(0)
        for digit in range(node.arity):
            child = KTID(node.digits + (digit,), node.arity)
            if child.depth <= space.depth:
                elements.append(child)
                frontier.append(child)
    return elements[:7]


@settings(max_examples=25, deadline=None)
@given(tokenized_scenario())
def test_tokenized_equivalence_same_ciphertexts(scenario):
    """Same sealed events through both paths: identical routables AND
    identical decryptions at every subscriber."""
    num_brokers, arity, raw_subs, raw_events, batch_size, flush = scenario
    authority = TokenAuthority(MASTER)
    kdc = KDC(master_key=MASTER)
    space = NumericKeySpace("v", 8)
    for topic in TOPICS:
        kdc.register_topic(topic, CompositeKeySpace({"v": space}))
    elements = _ktid_elements(space)

    subscriptions = []
    for subscriber, leaf_index, topic, element_index in raw_subs:
        if element_index is None:
            token_filter = tokenized_subscription(authority, topic)
        else:
            token_filter = tokenized_subscription(
                authority, topic, {"v": elements[element_index]}
            )
        subscriptions.append((subscriber, leaf_index, token_filter))

    # Seal and tokenize ONCE: both paths move the same ciphertext bits.
    publisher = Publisher("P", kdc)
    sealed_by_seq = {}
    events = []
    for seq, (topic, value) in enumerate(raw_events):
        sealed = publisher.publish(
            Event({"topic": topic, "v": value, "payload": f"m{seq}"},
                  publisher="P")
        )
        sealed_by_seq[seq] = sealed
        ktid_elements = {
            attr: el for attr, el in sealed.elements.items()
            if isinstance(el, KTID)
        }
        routable = sealed.routable.with_attributes(_seq=seq)
        events.append(tokenize_event(authority, routable, ktid_elements, topic))

    per_event, batched = _run_both_paths(
        num_brokers, arity, subscriptions, events, batch_size,
        match=tokenized_match, flush_points=flush,
    )
    assert per_event == batched  # bit-identical delivered events, in order

    # Decrypt what each subscriber saw on the batched path: same sealed
    # event objects, so ciphertexts and plaintexts equal the per-event
    # path's by construction -- verify decryption outcomes match too.
    # Odd-numbered subscribers get grants; even ones stay unauthorized,
    # exercising both the "opens" and the "unreadable" outcome.
    grants = {}
    for subscriber, _leaf, topic, _element in raw_subs:
        if subscriber in ("s1",) or subscriber == "s3":
            grants.setdefault(subscriber, {})[topic] = kdc.authorize(
                subscriber, Filter.topic(topic)
            )
    schema = lambda topic: kdc.config_for(topic).schema  # noqa: E731
    for subscriber_id, stream in batched.items():
        endpoint_batched = Subscriber(subscriber_id)
        endpoint_plain = Subscriber(subscriber_id)
        for grant in grants.get(subscriber_id, {}).values():
            endpoint_batched.add_grant(grant)
            endpoint_plain.add_grant(grant)
        for delivered, original in zip(stream, per_event[subscriber_id]):
            seq = delivered.get("_seq")
            assert seq == original.get("_seq")
            opened_batched = endpoint_batched.receive(
                sealed_by_seq[seq], schema
            )
            opened_plain = endpoint_plain.receive(sealed_by_seq[seq], schema)
            assert (opened_batched is None) == (opened_plain is None)
            if opened_batched is not None:
                assert opened_batched.event == opened_plain.event
