"""Frequency observation: per-node views and coalitions."""

import pytest

from repro.routing.observer import CoalitionObserver, NodeObserver


def _observe(observer, path, token, event_id, flow="f"):
    observer.observe_path(path, token, event_id, flow=flow)


def test_endpoints_excluded():
    observer = NodeObserver()
    _observe(observer, ["P", "n1", "n2", "S"], "t", 0)
    assert set(observer.observing_nodes()) == {"n1", "n2"}


def test_flow_counts_accumulate():
    observer = NodeObserver()
    for event_id in range(3):
        _observe(observer, ["P", "n", "S"], "t", event_id)
    assert observer.node_token_frequencies("n") == {"t": 3}


def test_best_flow_not_sum_across_flows():
    """Flows are unlinkable: a node cannot add up two subscribers' flows."""
    observer = NodeObserver()
    _observe(observer, ["P", "n", "S1"], "t", 0, flow="S1")
    _observe(observer, ["P", "n", "S1"], "t", 1, flow="S1")
    _observe(observer, ["P", "n", "S2"], "t", 2, flow="S2")
    assert observer.node_token_frequencies("n") == {"t": 2}
    assert observer.node_token_frequencies("n", aggregate_flows=True) == {
        "t": 3
    }


def test_node_entropy_uniform_flows():
    observer = NodeObserver()
    for index, token in enumerate(["a", "b", "c", "d"]):
        _observe(observer, ["P", "n", "S"], token, index)
    assert observer.node_entropy("n") == pytest.approx(2.0)


def test_mean_node_entropy_requires_observations():
    with pytest.raises(ValueError):
        NodeObserver().mean_node_entropy()


def test_system_apparent_frequencies_average_over_nodes():
    observer = NodeObserver()
    # Token t splits over two paths: each node sees half the events.
    for event_id in range(4):
        node = "n1" if event_id % 2 else "n2"
        _observe(observer, ["P", node, "S"], "t", event_id)
    _observe(observer, ["P", "n1", "S"], "u", 99, flow="g")
    frequencies = observer.system_apparent_frequencies()
    assert frequencies["t"] == pytest.approx(2.0)
    assert frequencies["u"] == pytest.approx(1.0)


def test_system_apparent_entropy_requires_observations():
    with pytest.raises(ValueError):
        NodeObserver().system_apparent_entropy()


def test_coalition_merges_distinct_events_per_flow():
    observer = NodeObserver()
    # Flow S: events 0,1 via n1; events 2,3 via n2 (two independent paths).
    _observe(observer, ["P", "n1", "S"], "t", 0, flow="S")
    _observe(observer, ["P", "n1", "S"], "t", 1, flow="S")
    _observe(observer, ["P", "n2", "S"], "t", 2, flow="S")
    _observe(observer, ["P", "n2", "S"], "t", 3, flow="S")
    single = CoalitionObserver(observer, ["n1"])
    assert single.merged_counts() == {"t": 2}
    both = CoalitionObserver(observer, ["n1", "n2"])
    assert both.merged_counts() == {"t": 4}


def test_coalition_does_not_double_count_shared_events():
    observer = NodeObserver()
    _observe(observer, ["P", "n1", "n2", "S"], "t", 0, flow="S")
    coalition = CoalitionObserver(observer, ["n1", "n2"])
    assert coalition.merged_counts() == {"t": 1}


def test_coalition_takes_best_flow_per_token():
    observer = NodeObserver()
    _observe(observer, ["P", "n1", "S1"], "t", 0, flow="S1")
    _observe(observer, ["P", "n1", "S2"], "t", 0, flow="S2")
    _observe(observer, ["P", "n1", "S2"], "t", 1, flow="S2")
    coalition = CoalitionObserver(observer, ["n1"])
    assert coalition.merged_counts() == {"t": 2}


def test_empty_coalition_has_no_view():
    observer = NodeObserver()
    _observe(observer, ["P", "n", "S"], "t", 0)
    with pytest.raises(ValueError):
        CoalitionObserver(observer, []).entropy()


def test_full_collusion_recovers_actual_distribution():
    observer = NodeObserver()
    # Token "hot": 8 events over 2 paths; token "cold": 2 events, 1 path.
    for event_id in range(8):
        node = "n1" if event_id % 2 else "n2"
        _observe(observer, ["P", node, "S"], "hot", event_id, flow="S")
    for event_id in range(8, 10):
        _observe(observer, ["P", "n3", "S"], "cold", event_id, flow="S")
    coalition = CoalitionObserver(observer, ["n1", "n2", "n3"])
    assert coalition.merged_counts() == {"hot": 8, "cold": 2}


def test_note_event_counts():
    observer = NodeObserver()
    observer.note_event()
    observer.note_event()
    assert observer.total_events == 2
