"""Multi-path routing latency accounting."""

import pytest

from repro.routing.latency import (
    EmbeddedMultipathNetwork,
    compare_latency_across_ind,
)
from repro.routing.multipath import ProbabilisticRouter
from repro.topology.multipath import MultipathNetwork
from repro.workloads.zipf import zipf_weights


def _frequencies(count=32):
    return dict(zip((f"t{i}" for i in range(count)), zipf_weights(count)))


def test_path_latency_sums_hops():
    network = MultipathNetwork(depth=2, arity=2, ind=2)
    embedded = EmbeddedMultipathNetwork(
        network, per_hop_processing=0.001
    )
    subscriber = network.subscribers()[0]
    path = network.tree_path(subscriber)
    latency = embedded.path_latency(path)
    hop_sum = sum(
        embedded.topology.one_way_delay(
            embedded.placement[a], embedded.placement[b]
        )
        for a, b in zip(path, path[1:])
    )
    assert latency == pytest.approx(hop_sum + 0.001 * (len(path) - 1))


def test_measure_collects_samples():
    network = MultipathNetwork(depth=2, arity=3, ind=3)
    embedded = EmbeddedMultipathNetwork(network)
    router = ProbabilisticRouter(network, _frequencies(), ind_max=3)
    stats = embedded.measure(router, events=200)
    assert stats.samples == 200
    assert 0 < stats.minimum <= stats.mean <= stats.maximum


def test_multipath_adds_no_latency():
    """The Section 7 claim: shifted paths cost the same as tree paths."""
    results = compare_latency_across_ind(
        _frequencies(), ind_values=(1, 5), events=1500
    )
    baseline = results[1].mean
    smoothed = results[5].mean
    assert smoothed == pytest.approx(baseline, rel=0.15)


def test_all_paths_have_equal_hop_count():
    network = MultipathNetwork(depth=3, arity=4, ind=4)
    subscriber = network.subscribers()[0]
    lengths = {
        len(path) for path in network.independent_paths(subscriber)
    }
    assert lengths == {5}  # P, n1..n3, S for every shift
