"""Shape assertions for the Fig 6-8 routing experiments (small scale)."""

import pytest

from repro.routing.experiment import (
    RoutingExperimentConfig,
    construction_cost_curve,
    run_dissemination,
    sweep_collusion,
    sweep_ind_max,
)


@pytest.fixture(scope="module")
def small_config() -> RoutingExperimentConfig:
    return RoutingExperimentConfig(
        num_tokens=32, tokens_per_subscriber=8, events=1500, depth=2,
        arity=5,
    )


@pytest.fixture(scope="module")
def ind_sweep(small_config):
    return sweep_ind_max(small_config, ind_values=[1, 3, 5])


def test_entropy_ordering(ind_sweep):
    """S_act <= S_app <= S_max for every ind (with sampling slack)."""
    for result in ind_sweep:
        assert result.s_app <= result.s_max + 1e-9
        assert result.s_app >= result.s_act - 0.15


def test_entropy_rises_with_ind(ind_sweep):
    entropies = [result.s_app for result in ind_sweep]
    assert entropies[0] < entropies[-1]


def test_smoothing_closes_most_of_the_gap(ind_sweep):
    """At ind=5 the apparent entropy recovers most of S_max - S_act."""
    last = ind_sweep[-1]
    recovered = (last.s_app - last.s_act) / (last.s_max - last.s_act)
    assert recovered > 0.4


def test_collusion_degrades_toward_actual(small_config):
    rows = sweep_collusion(
        small_config, fractions=[0.0, 0.3, 1.0], ind_max=5, samples=3
    )
    baseline = rows[0][1]
    full = rows[-1][1]
    actual = rows[-1][2].s_act
    assert full < baseline
    assert full == pytest.approx(actual, abs=0.2)


def test_construction_cost_normalized_and_saturating(small_config):
    curve = construction_cost_curve(
        small_config, ind_values=[1, 2, 4, 6, 8, 10]
    )
    values = [cost for _, cost in curve]
    assert values[0] == pytest.approx(1.0)
    assert values == sorted(values)
    # Saturation: later increments smaller than earlier ones.
    first_step = values[1] - values[0]
    last_step = values[-1] - values[-2]
    assert last_step < first_step


def test_invalid_ind_rejected(small_config):
    with pytest.raises(ValueError):
        run_dissemination(small_config, ind_max=small_config.arity + 1)
