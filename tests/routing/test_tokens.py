"""Tokenization: correctness of encrypted matching, secrecy of labels."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ktid import KTID
from repro.core.nakt import NumericKeySpace
from repro.routing.tokens import (
    RoutableToken,
    TokenAuthority,
    make_routable,
    routable_matches,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.siena.events import Event

MASTER = bytes(range(16))


@pytest.fixture
def authority() -> TokenAuthority:
    return TokenAuthority(MASTER)


class TestPrimitives:
    def test_match_correctness(self, authority):
        token = authority.topic_token("cancerTrail")
        routable = make_routable(token)
        assert routable_matches(token, routable)

    def test_wrong_token_rejects(self, authority):
        routable = make_routable(authority.topic_token("cancerTrail"))
        assert not routable_matches(
            authority.topic_token("other"), routable
        )

    def test_fresh_nonce_each_time(self, authority):
        token = authority.topic_token("w")
        assert make_routable(token) != make_routable(token)

    def test_fixed_nonce_is_deterministic(self, authority):
        token = authority.topic_token("w")
        nonce = bytes(16)
        assert make_routable(token, nonce) == make_routable(token, nonce)

    def test_encode_decode_roundtrip(self, authority):
        routable = make_routable(authority.topic_token("w"))
        assert RoutableToken.decode(routable.encode()) == routable

    def test_decode_rejects_short(self):
        with pytest.raises(ValueError):
            RoutableToken.decode("0011")

    def test_element_tokens_scoped(self, authority):
        ktid = KTID.parse("101")
        assert authority.element_token(
            "t", "age", ktid
        ) != authority.element_token("t2", "age", ktid)
        assert authority.element_token(
            "t", "age", ktid
        ) != authority.element_token("t", "salary", ktid)

    def test_ktid_prefix_tokens_one_per_level(self, authority):
        leaf = KTID.parse("1010")
        tokens = authority.ktid_prefix_tokens("t", "age", leaf)
        assert len(tokens) == 5  # root + 4 levels
        assert len(set(tokens)) == 5


class TestEventTokenization:
    def test_plaintext_attributes_removed(self, authority):
        space = NumericKeySpace("age", 128)
        event = Event({"topic": "trial", "age": 25, "region": "EU"})
        tokenized = tokenize_event(
            authority, event, {"age": space.ktid(25)}, "trial"
        )
        for name in ("topic", "age", "region"):
            assert name not in tokenized

    def test_matching_at_every_cover_level(self, authority):
        space = NumericKeySpace("age", 128)
        event = Event({"topic": "trial", "age": 25})
        tokenized = tokenize_event(
            authority, event, {"age": space.ktid(25)}, "trial"
        )
        for low, high, expected in [(0, 127, True), (16, 31, True),
                                    (24, 25, True), (60, 90, False)]:
            filters = [
                tokenized_subscription(authority, "trial", {"age": element})
                for element in space.cover(low, high)
            ]
            assert any(
                tokenized_match(f, tokenized) for f in filters
            ) is expected

    def test_string_element_tokenization(self, authority):
        event = Event({"topic": "t", "name": "GOOG"})
        tokenized = tokenize_event(authority, event, {"name": "GOOG"}, "t")
        matching = tokenized_subscription(authority, "t", {"name": "GOOG"})
        non_matching = tokenized_subscription(authority, "t", {"name": "MSFT"})
        assert tokenized_match(matching, tokenized)
        assert not tokenized_match(non_matching, tokenized)

    def test_topic_only_subscription(self, authority):
        event = Event({"topic": "w"})
        tokenized = tokenize_event(authority, event, {}, "w")
        assert tokenized_match(
            tokenized_subscription(authority, "w"), tokenized
        )
        assert not tokenized_match(
            tokenized_subscription(authority, "other"), tokenized
        )

    def test_same_topic_events_unlinkable_without_token(self, authority):
        """Two events under one topic share no common attribute values."""
        first = tokenize_event(
            authority, Event({"topic": "w"}), {}, "w"
        )
        second = tokenize_event(
            authority, Event({"topic": "w"}), {}, "w"
        )
        shared = {
            name
            for name in first.attributes
            if first.get(name) == second.get(name) and name != "_seq"
        }
        assert not shared

    def test_malformed_event_value_rejected_by_match(self, authority):
        subscription = tokenized_subscription(authority, "w")
        garbage = Event({"_ttok": "zz-not-hex"})
        assert not tokenized_match(subscription, garbage)

    def test_missing_token_attribute_rejects(self, authority):
        subscription = tokenized_subscription(authority, "w")
        assert not tokenized_match(subscription, Event({"other": 1}))

    def test_mixed_plain_constraints_still_checked(self, authority):
        from repro.siena.filters import Constraint, Filter
        from repro.siena.operators import Op

        event = tokenize_event(
            authority, Event({"topic": "w"}), {}, "w"
        ).with_attributes(region="EU")
        base = tokenized_subscription(authority, "w")
        with_region = Filter(
            list(base.constraints) + [Constraint("region", Op.EQ, "EU")]
        )
        wrong_region = Filter(
            list(base.constraints) + [Constraint("region", Op.EQ, "US")]
        )
        assert tokenized_match(with_region, event)
        assert not tokenized_match(wrong_region, event)

    def test_seq_attribute_preserved_for_simulator(self, authority):
        event = Event({"topic": "w", "_seq": 42})
        tokenized = tokenize_event(authority, event, {}, "w")
        assert tokenized["_seq"] == 42


@given(topic=st.text(min_size=1, max_size=12))
def test_authority_topic_token_deterministic(topic):
    first = TokenAuthority(MASTER).topic_token(topic)
    second = TokenAuthority(MASTER).topic_token(topic)
    assert first == second


@given(
    first=st.text(min_size=1, max_size=8),
    second=st.text(min_size=1, max_size=8),
)
def test_distinct_topics_distinct_tokens(first, second):
    authority = TokenAuthority(MASTER)
    if first != second:
        assert authority.topic_token(first) != authority.topic_token(second)
