"""Fault-tolerant parallel multi-path dissemination."""

import pytest

from repro.routing.faulttolerance import (
    DroppingNetwork,
    RedundantRouter,
    analytic_delivery_rate,
)
from repro.topology.multipath import MultipathNetwork
from repro.workloads.zipf import zipf_weights


def _router(redundancy=2, ind=4, depth=3, tokens=16):
    network = MultipathNetwork(depth=depth, arity=max(ind, 2), ind=ind)
    frequencies = dict(zip(
        (f"t{i}" for i in range(tokens)), zipf_weights(tokens)
    ))
    return network, RedundantRouter(
        network, frequencies, redundancy=redundancy, ind_max=ind
    )


def test_redundant_paths_are_disjoint():
    network, router = _router(redundancy=3)
    subscriber = network.subscribers()[0]
    paths = router.route_redundant("t0", subscriber)
    assert len(paths) == 3
    assert network.paths_independent(paths)
    assert all(network.path_edges_exist(path) for path in paths)


def test_redundancy_validation():
    network, _ = _router()
    frequencies = {"t": 1.0}
    with pytest.raises(ValueError):
        RedundantRouter(network, frequencies, redundancy=0)
    with pytest.raises(ValueError):
        RedundantRouter(network, frequencies, redundancy=99)


def test_redundancy_raises_apparent_frequency():
    """The privacy cost of fault tolerance is explicit."""
    _, single = _router(redundancy=1)
    _, double = _router(redundancy=2)
    assert double.expected_apparent_frequency(
        "t0"
    ) == pytest.approx(2 * single.expected_apparent_frequency("t0"))


def test_no_droppers_is_lossless():
    network, router = _router()
    clean = DroppingNetwork(network, dropper_fraction=0.0)
    stats = clean.run(router, events=200)
    assert stats.delivery_rate == 1.0
    assert stats.overhead == pytest.approx(2.0, abs=0.2)


def test_all_droppers_blocks_everything():
    network, router = _router()
    hostile = DroppingNetwork(network, dropper_fraction=1.0)
    stats = hostile.run(router, events=100)
    assert stats.delivery_rate == 0.0


def test_redundancy_improves_delivery_under_droppers():
    """The paper's extension claim: parallel paths defeat droppers."""
    network, single = _router(redundancy=1, ind=4)
    _, triple = _router(redundancy=3, ind=4)
    adversary = DroppingNetwork(network, dropper_fraction=0.25, seed=5)
    single_stats = adversary.run(single, events=600)
    triple_stats = adversary.run(triple, events=600)
    assert triple_stats.delivery_rate > single_stats.delivery_rate
    assert triple_stats.overhead > single_stats.overhead


def test_measured_rate_tracks_analytic():
    network, router = _router(redundancy=2, ind=4, depth=3)
    adversary = DroppingNetwork(network, dropper_fraction=0.2, seed=9)
    stats = adversary.run(router, events=1500)
    predicted = analytic_delivery_rate(0.2, path_interior_length=3,
                                       redundancy=2)
    assert stats.delivery_rate == pytest.approx(predicted, abs=0.12)


def test_analytic_rate_properties():
    assert analytic_delivery_rate(0.0, 5, 1) == 1.0
    assert analytic_delivery_rate(1.0, 5, 3) == 0.0
    assert analytic_delivery_rate(0.3, 4, 3) > analytic_delivery_rate(
        0.3, 4, 1
    )
    with pytest.raises(ValueError):
        analytic_delivery_rate(1.5, 4, 2)


class _IntIdNetwork:
    """A tiny duck-typed overlay whose broker ids are plain ints.

    Regression guard: dropper selection used to probe ``len(node)`` on
    every broker id, which raises TypeError for unsized ids like these.
    """

    def brokers(self):
        return [0, 1, 2, 3, 4]

    def subscribers(self):
        return ["s"]

    def independent_paths(self, subscriber, count=None):
        return [["pub", 1, 2, subscriber], ["pub", 3, 4, subscriber]]


def test_droppers_selected_for_unsized_node_ids():
    network = _IntIdNetwork()
    dropping = DroppingNetwork(network, dropper_fraction=1.0, seed=1)
    # Every interior path position is a candidate; the publisher (path
    # head), the subscriber (path tail) and off-path broker 0 are not.
    assert dropping.droppers == {1, 2, 3, 4}
    assert not dropping.copy_survives(["pub", 1, 2, "s"])
    assert dropping.copy_survives(["pub", "s"])

    none = DroppingNetwork(network, dropper_fraction=0.0, seed=1)
    assert none.droppers == set()


def test_dropper_fraction_validated():
    network, _ = _router()
    with pytest.raises(ValueError):
        DroppingNetwork(network, dropper_fraction=-0.1)
