"""Embedding invariants for the multipath latency measurement."""

import pytest

from repro.routing.latency import EmbeddedMultipathNetwork
from repro.topology.multipath import MultipathNetwork


def test_every_overlay_node_gets_a_distinct_placement():
    network = MultipathNetwork(depth=2, arity=4, ind=4)
    embedded = EmbeddedMultipathNetwork(network)
    expected = len(list(network.brokers())) + len(network.subscribers())
    assert len(embedded.placement) == expected
    assert len(set(embedded.placement.values())) == expected


def test_latency_positive_and_symmetric_inputs():
    network = MultipathNetwork(depth=2, arity=2, ind=2)
    embedded = EmbeddedMultipathNetwork(network, per_hop_processing=0.0)
    subscriber = network.subscribers()[0]
    forward = embedded.path_latency(network.tree_path(subscriber))
    assert forward > 0
    reverse = embedded.path_latency(
        list(reversed(network.tree_path(subscriber)))
    )
    assert reverse == pytest.approx(forward)


def test_shifted_paths_have_comparable_latency():
    """Different but equal-hop paths should differ only by link draws."""
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    embedded = EmbeddedMultipathNetwork(network)
    subscriber = network.subscribers()[0]
    latencies = [
        embedded.path_latency(path)
        for path in network.independent_paths(subscriber)
    ]
    assert len(latencies) == 5
    # All latencies are in the same WAN ballpark: no path is free, none
    # is an order of magnitude dearer.
    assert max(latencies) < 10 * min(latencies)


def test_processing_cost_scales_with_hops():
    network = MultipathNetwork(depth=3, arity=2, ind=2)
    base = EmbeddedMultipathNetwork(network, per_hop_processing=0.0, seed=3)
    costly = EmbeddedMultipathNetwork(
        network, per_hop_processing=0.010, seed=3
    )
    subscriber = network.subscribers()[0]
    path = network.tree_path(subscriber)
    hops = len(path) - 1
    assert costly.path_latency(path) == pytest.approx(
        base.path_latency(path) + 0.010 * hops
    )
