"""The frequency-inference attack and its mitigation."""

import random

import pytest

from repro.routing.attacks import (
    rank_matching_attack,
    random_guess_accuracy,
)
from repro.workloads.zipf import zipf_weights


def _setup(num_tokens=16, seed=5):
    rng = random.Random(seed)
    topics = [f"topic{i}" for i in range(num_tokens)]
    tokens = [f"token{i}" for i in range(num_tokens)]
    rng.shuffle(tokens)
    truth = dict(zip(tokens, topics))
    prior = dict(zip(topics, zipf_weights(num_tokens)))
    return tokens, topics, truth, prior


def test_attack_succeeds_on_unprotected_frequencies():
    """Observing true lambda_t, rank matching de-anonymizes every token."""
    tokens, topics, truth, prior = _setup()
    observed = {token: prior[truth[token]] for token in tokens}
    result = rank_matching_attack(observed, prior, truth)
    assert result.accuracy == 1.0


def test_attack_collapses_on_flattened_frequencies():
    """After multi-path smoothing the ranking carries no signal."""
    tokens, topics, truth, prior = _setup()
    rng = random.Random(9)
    observed = {token: 1.0 + rng.random() * 1e-6 for token in tokens}
    result = rank_matching_attack(observed, prior, truth)
    assert result.accuracy < 0.3


def test_partial_smoothing_partially_protects():
    tokens, topics, truth, prior = _setup(num_tokens=32)
    # Head tokens flattened (ind_t ~ tau lambda_t), tail unprotected;
    # tiny noise models sampling jitter and breaks rank ties randomly.
    rng = random.Random(11)
    cap = sorted(
        (prior[truth[token]] for token in tokens), reverse=True
    )[8]
    observed = {
        token: min(prior[truth[token]], cap) * (1 + rng.random() * 1e-9)
        for token in tokens
    }
    result = rank_matching_attack(observed, prior, truth)
    full = rank_matching_attack(
        {token: prior[truth[token]] for token in tokens}, prior, truth
    )
    assert result.correct < full.correct


def test_unobserved_tokens_excluded():
    tokens, topics, truth, prior = _setup()
    observed = {tokens[0]: 1.0}
    result = rank_matching_attack(observed, prior, truth)
    assert result.total == 1


def test_empty_observation_scores_zero():
    _, _, truth, prior = _setup()
    result = rank_matching_attack({}, prior, truth)
    assert result.total == 0
    assert result.accuracy == 0.0


def test_random_guess_accuracy():
    assert random_guess_accuracy(128) == pytest.approx(1 / 128)
    with pytest.raises(ValueError):
        random_guess_accuracy(0)
