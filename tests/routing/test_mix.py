"""Batching mixes and the timing-linkage attack."""

import pytest

from repro.routing.mix import (
    BatchingMix,
    interleaved_trace,
    timing_linkage_attack,
)


def _two_publisher_trace(count=40):
    schedules = {
        "P1": [i * 1.0 for i in range(count)],           # every second
        "P2": [0.5 + i * 1.0 for i in range(count)],     # offset by 500ms
    }
    tokens = {"P1": ["a1", "a2"], "P2": ["b1", "b2"]}
    return interleaved_trace(schedules, tokens), schedules


def test_zero_window_is_passthrough():
    (arrivals, _truth), _ = _two_publisher_trace(5)
    released = BatchingMix(0.0).process(arrivals)
    assert [event.release_time for event in released] == sorted(
        time for time, _ in arrivals
    )


def test_window_quantizes_release_times():
    mix = BatchingMix(2.0)
    released = mix.process([(0.1, "x"), (0.9, "y"), (2.5, "z")])
    assert [event.release_time for event in released] == [2.0, 2.0, 4.0]


def test_batch_order_is_shuffled():
    mix = BatchingMix(100.0, seed=1)
    arrivals = [(float(i) / 10, f"t{i}") for i in range(32)]
    released = mix.process(arrivals)
    assert {event.token for event in released} == {f"t{i}" for i in range(32)}
    assert [event.token for event in released] != [f"t{i}" for i in range(32)]


def test_negative_arrival_rejected():
    with pytest.raises(ValueError):
        BatchingMix(1.0).process([(-1.0, "x")])
    with pytest.raises(ValueError):
        BatchingMix(-1.0)


def test_added_latency():
    assert BatchingMix(4.0).added_latency() == 2.0


def test_attack_wins_without_mixing():
    (arrivals, truth), schedules = _two_publisher_trace()
    released = BatchingMix(0.0).process(arrivals)
    result = timing_linkage_attack(released, schedules, truth)
    assert result.accuracy == 1.0


def test_attack_collapses_with_wide_windows():
    (arrivals, truth), schedules = _two_publisher_trace()
    released = BatchingMix(8.0, seed=3).process(arrivals)
    result = timing_linkage_attack(released, schedules, truth)
    assert result.accuracy <= 0.75  # toward the 0.5 chance level


def test_narrow_window_barely_helps():
    """A window smaller than the schedule offset leaks everything."""
    (arrivals, truth), schedules = _two_publisher_trace()
    released = BatchingMix(0.25, seed=3).process(arrivals)
    result = timing_linkage_attack(released, schedules, truth)
    assert result.accuracy == 1.0


def test_attack_accuracy_monotone_in_window():
    (arrivals, truth), schedules = _two_publisher_trace()
    accuracies = []
    for window in (0.0, 1.0, 4.0, 16.0):
        released = BatchingMix(window, seed=5).process(arrivals)
        accuracies.append(
            timing_linkage_attack(released, schedules, truth).accuracy
        )
    assert accuracies[0] >= accuracies[-1]
    assert accuracies[-1] < 1.0


def test_trace_requires_tokens():
    with pytest.raises(ValueError):
        interleaved_trace({"P": [0.0]}, {"P": []})


def test_attack_counts_tokens_once():
    (arrivals, truth), schedules = _two_publisher_trace()
    released = BatchingMix(0.0).process(arrivals)
    result = timing_linkage_attack(released, schedules, truth)
    assert result.total == 4
