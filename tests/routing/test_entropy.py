"""Entropy metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.routing.entropy import (
    apparent_frequencies,
    entropy_bits,
    entropy_gap,
    max_entropy_bits,
    mean,
    normalize,
)


def test_uniform_distribution_attains_maximum():
    uniform = {f"t{i}": 1.0 for i in range(8)}
    assert entropy_bits(uniform) == pytest.approx(3.0)
    assert max_entropy_bits(8) == pytest.approx(3.0)


def test_point_mass_has_zero_entropy():
    assert entropy_bits({"t": 5.0}) == pytest.approx(0.0)


def test_skew_reduces_entropy():
    skewed = {"a": 0.9, "b": 0.05, "c": 0.05}
    assert entropy_bits(skewed) < entropy_bits({"a": 1, "b": 1, "c": 1})


def test_normalize_sums_to_one():
    normalized = normalize({"a": 2.0, "b": 6.0})
    assert sum(normalized.values()) == pytest.approx(1.0)
    assert normalized["b"] == pytest.approx(0.75)


def test_normalize_drops_zeros():
    assert "b" not in normalize({"a": 1.0, "b": 0.0})


def test_normalize_rejects_empty():
    with pytest.raises(ValueError):
        normalize({})
    with pytest.raises(ValueError):
        normalize({"a": 0.0})


def test_zipf_entropy_matches_formula():
    weights = {f"t{k}": 1.0 / k for k in range(1, 129)}
    total = sum(weights.values())
    expected = -sum(
        (w / total) * math.log2(w / total) for w in weights.values()
    )
    assert entropy_bits(weights) == pytest.approx(expected)


def test_apparent_frequencies_flatten_head():
    actual = {"hot": 8.0, "cold": 1.0}
    apparent = apparent_frequencies(actual, {"hot": 8, "cold": 1})
    assert apparent["hot"] == pytest.approx(1.0)
    assert apparent["cold"] == pytest.approx(1.0)
    assert entropy_bits(apparent) > entropy_bits(actual)


def test_apparent_frequencies_defaults_to_one_path():
    apparent = apparent_frequencies({"t": 4.0}, {})
    assert apparent["t"] == 4.0


def test_entropy_gap():
    uniform = {f"t{i}": 1.0 for i in range(4)}
    assert entropy_gap(uniform, 4) == pytest.approx(0.0)
    assert entropy_gap({"a": 1.0}, 4) == pytest.approx(2.0)


def test_max_entropy_requires_tokens():
    with pytest.raises(ValueError):
        max_entropy_bits(0)


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])


@given(
    counts=st.dictionaries(
        st.integers(0, 30),
        st.floats(min_value=0.001, max_value=100, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_entropy_bounded_by_log_support(counts):
    entropy = entropy_bits(counts)
    assert -1e-9 <= entropy <= math.log2(len(counts)) + 1e-9
