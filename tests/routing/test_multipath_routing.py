"""Probabilistic multi-path routing."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.routing.multipath import (
    ProbabilisticRouter,
    ideal_ind_max,
    paths_for_frequency,
    tau_for,
)
from repro.topology.multipath import MultipathNetwork
from repro.workloads.zipf import zipf_weights


def _frequencies(count=16, exponent=1.0):
    return dict(zip(
        (f"t{i}" for i in range(count)), zipf_weights(count, exponent)
    ))


def test_paths_for_frequency_clamps():
    assert paths_for_frequency(0.0, 100.0, 5) == 1
    assert paths_for_frequency(1.0, 100.0, 5) == 5
    assert paths_for_frequency(0.025, 100.0, 5) == 2  # round(2.5) banker's
    assert paths_for_frequency(0.026, 100.0, 5) == 3


def test_paths_for_frequency_validation():
    with pytest.raises(ValueError):
        paths_for_frequency(-1.0, 1.0, 5)
    with pytest.raises(ValueError):
        paths_for_frequency(1.0, 1.0, 0)


def test_tau_is_independent_of_cap():
    frequencies = _frequencies()
    assert tau_for(frequencies) == tau_for(frequencies)
    # tau targets the design point, not ind_max.
    assert tau_for(frequencies, design_paths=20) == pytest.approx(
        2 * tau_for(frequencies, design_paths=10)
    )


def test_tau_validation():
    with pytest.raises(ValueError):
        tau_for({}, 10)
    with pytest.raises(ValueError):
        tau_for({"t": 1.0}, 10, saturate_quantile=0.0)
    with pytest.raises(ValueError):
        tau_for({"t": 1.0}, design_paths=0)


def test_popular_tokens_get_more_paths():
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    router = ProbabilisticRouter(network, _frequencies(), ind_max=5)
    paths = router.paths_per_token
    assert paths["t0"] == 5
    assert paths["t15"] <= paths["t0"]
    assert min(paths.values()) >= 1


def test_route_returns_valid_independent_path():
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    router = ProbabilisticRouter(network, _frequencies(), ind_max=5)
    subscriber = network.subscribers()[0]
    for _ in range(20):
        path = router.route("t0", subscriber)
        assert path[0] == ()
        assert path[-1] == subscriber
        assert network.path_edges_exist(path)


def test_route_uses_all_available_paths():
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    router = ProbabilisticRouter(network, _frequencies(), ind_max=5, seed=3)
    subscriber = network.subscribers()[0]
    chosen = {tuple(router.route("t0", subscriber)) for _ in range(200)}
    assert len(chosen) == 5


def test_unpopular_token_uses_single_path():
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    router = ProbabilisticRouter(
        network, _frequencies(64), ind_max=5, seed=3
    )
    subscriber = network.subscribers()[0]
    chosen = {tuple(router.route("t63", subscriber)) for _ in range(50)}
    assert len(chosen) == 1


def test_apparent_frequency_flattened_for_head():
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    frequencies = _frequencies(64)
    router = ProbabilisticRouter(network, frequencies, ind_max=5)
    head = router.expected_apparent_frequency("t0")
    tail = router.expected_apparent_frequency("t63")
    actual_ratio = frequencies["t0"] / frequencies["t63"]
    apparent_ratio = head / tail
    assert apparent_ratio < actual_ratio


def test_ind_max_cannot_exceed_network():
    network = MultipathNetwork(depth=2, arity=3, ind=3)
    with pytest.raises(ValueError):
        ProbabilisticRouter(network, _frequencies(), ind_max=4)


def test_construction_cost_and_histogram():
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    router = ProbabilisticRouter(network, _frequencies(64), ind_max=5)
    histogram = router.path_usage_histogram()
    assert sum(histogram.values()) == 64
    assert router.construction_cost() > 0


def test_route_batch_draws_one_path_for_the_whole_batch():
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    registry = MetricsRegistry()
    router = ProbabilisticRouter(
        network, _frequencies(), ind_max=5, seed=3, registry=registry
    )
    subscriber = network.subscribers()[0]
    path = router.route_batch("t0", subscriber, count=8)
    assert path[0] == ()
    assert path[-1] == subscriber
    assert network.path_edges_exist(path)
    counters = registry.snapshot()["counters"]
    # Eight events routed, but only one batch draw (one route setup).
    assert counters["multipath_routes_total"] == 8
    assert counters["multipath_batch_routes_total"] == 1


def test_route_batch_of_one_equals_route_statistics():
    """A batch of one is the per-event path: same RNG consumption, so
    identical path sequences for identical seeds."""
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    subscriber = network.subscribers()[0]
    single = ProbabilisticRouter(network, _frequencies(), ind_max=5, seed=9)
    batched = ProbabilisticRouter(network, _frequencies(), ind_max=5, seed=9)
    for _ in range(20):
        assert single.route("t0", subscriber) == batched.route_batch(
            "t0", subscriber, count=1
        )


def test_route_batch_rejects_empty_batch():
    network = MultipathNetwork(depth=2, arity=5, ind=5)
    router = ProbabilisticRouter(network, _frequencies(), ind_max=5)
    with pytest.raises(ValueError):
        router.route_batch("t0", network.subscribers()[0], count=0)


def test_ideal_ind_max():
    assert ideal_ind_max({"a": 128.0, "b": 1.0}) == 128
    with pytest.raises(ValueError):
        ideal_ind_max({"a": 0.0})
