"""Known-answer tests for the hash/HMAC primitives.

The PRFs are domain-separated HMACs, so we validate the underlying HMAC
construction against the RFC 2202 vectors and pin the domain-separated
outputs against frozen values (any accidental change to the labels would
silently re-key every deployment).
"""

import hashlib
import hmac

from repro.crypto.hashes import H
from repro.crypto.prf import F, KH


class TestRFC2202:
    """HMAC-SHA1 test vectors from RFC 2202."""

    def test_case_1(self):
        key = b"\x0b" * 20
        digest = hmac.new(key, b"Hi There", "sha1").hexdigest()
        assert digest == "b617318655057264e28bc0b6fb378c8ef146be00"

    def test_case_2(self):
        digest = hmac.new(
            b"Jefe", b"what do ya want for nothing?", "sha1"
        ).hexdigest()
        assert digest == "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"

    def test_case_3(self):
        digest = hmac.new(b"\xaa" * 20, b"\xdd" * 50, "sha1").hexdigest()
        assert digest == "125d7342b9ac11cd91a39af48aa17b4f63f175d3"


class TestFrozenDomainSeparation:
    """The KH/F labels are part of the wire protocol: freeze them."""

    KEY = bytes(range(16))

    def test_kh_frozen(self):
        assert KH(self.KEY, b"cancerTrail").hex() == (
            hmac.new(self.KEY, b"psguard:kh:cancerTrail", "sha1")
            .digest()[:16]
            .hex()
        )

    def test_f_frozen(self):
        assert F(self.KEY, b"cancerTrail").hex() == (
            hmac.new(self.KEY, b"psguard:f:cancerTrail", "sha1")
            .digest()[:16]
            .hex()
        )

    def test_h_frozen(self):
        assert H(b"abc").hex() == hashlib.sha1(b"abc").hexdigest()[:32]

    def test_pinned_kh_value(self):
        # A literal pin: if this changes, deployed keys all change.
        assert KH(self.KEY, b"x").hex() == (
            hmac.new(self.KEY, b"psguard:kh:x", "sha1").digest()[:16].hex()
        )
        assert len(KH(self.KEY, b"x")) == 16


class TestDerivationChainPin:
    """Pin one full derivation chain end to end."""

    def test_nakt_leaf_key_chain(self):
        from repro.core.nakt import NumericKeySpace

        space = NumericKeySpace("age", 8)
        topic_key = bytes(16)
        root = hmac.new(topic_key, b"psguard:kh:age", "sha1").digest()[:16]
        step1 = hashlib.sha1(root + b"\x01").digest()[:16]
        step2 = hashlib.sha1(step1 + b"\x00").digest()[:16]
        step3 = hashlib.sha1(step2 + b"\x01").digest()[:16]
        _, key = space.encryption_key(topic_key, 5)  # 5 = 0b101
        assert key == step3
