"""High-level encrypt/decrypt and backend interoperability."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.cipher import backend_name, decrypt, encrypt
from repro.crypto.modes import cbc_decrypt, cbc_encrypt

KEY = bytes(range(16))


def test_roundtrip():
    assert decrypt(KEY, encrypt(KEY, b"hello")) == b"hello"


def test_backend_name_is_known():
    assert backend_name() in ("cryptography", "pure")


def test_wire_format_interoperates_with_pure_python():
    """Both backends speak ``iv || ciphertext`` with PKCS#7."""
    message = b"cross-backend message" * 3
    assert decrypt(KEY, cbc_encrypt(KEY, message)) == message
    assert cbc_decrypt(KEY, encrypt(KEY, message)) == message


def test_fixed_iv_matches_pure_python():
    iv = bytes(range(200, 216))
    assert encrypt(KEY, b"abc", iv) == cbc_encrypt(KEY, b"abc", iv)


def test_decrypt_rejects_truncated():
    with pytest.raises(ValueError):
        decrypt(KEY, b"short")


def test_decrypt_wrong_key_does_not_return_plaintext():
    ciphertext = encrypt(KEY, b"the secret")
    try:
        recovered = decrypt(bytes(16), ciphertext)
    except ValueError:
        return
    assert recovered != b"the secret"


def test_empty_plaintext():
    assert decrypt(KEY, encrypt(KEY, b"")) == b""


@given(data=st.binary(max_size=1024), key=st.binary(min_size=16, max_size=16))
def test_roundtrip_property(data, key):
    assert decrypt(key, encrypt(key, data)) == data
