"""Keyed PRFs ``KH`` and ``F``: determinism, separation, key derivation."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashes import KEY_BYTES
from repro.crypto.prf import F, KH, constant_time_equal, derive_key

KEY = bytes(range(16))


def test_kh_deterministic():
    assert KH(KEY, b"age") == KH(KEY, b"age")


def test_kh_key_sensitivity():
    assert KH(KEY, b"age") != KH(bytes(16), b"age")


def test_kh_message_sensitivity():
    assert KH(KEY, b"age") != KH(KEY, b"salary")


def test_kh_output_width():
    assert len(KH(KEY, b"m")) == KEY_BYTES
    assert len(F(KEY, b"m")) == KEY_BYTES


def test_kh_and_f_are_domain_separated():
    """A token must never equal a key for the same input (Section 4.1)."""
    assert KH(KEY, b"cancerTrail") != F(KEY, b"cancerTrail")


def test_f_deterministic_and_sensitive():
    assert F(KEY, b"w") == F(KEY, b"w")
    assert F(KEY, b"w") != F(KEY, b"w2")


def test_prf_rejects_non_bytes_key():
    with pytest.raises(TypeError):
        KH("not-bytes", b"m")


def test_prf_rejects_unknown_algorithm():
    with pytest.raises(ValueError):
        KH(KEY, b"m", algorithm="whirlpool")


def test_derive_key_is_one_way_chain():
    parent = KH(KEY, b"root")
    child0 = derive_key(parent, b"\x00")
    child1 = derive_key(parent, b"\x01")
    assert child0 != child1
    assert child0 != parent
    # Deriving the same branch twice is deterministic.
    assert derive_key(parent, b"\x00") == child0


def test_derive_key_depends_on_parent():
    assert derive_key(KH(KEY, b"a"), b"\x00") != derive_key(
        KH(KEY, b"b"), b"\x00"
    )


def test_constant_time_equal():
    assert constant_time_equal(b"abc", b"abc")
    assert not constant_time_equal(b"abc", b"abd")
    assert not constant_time_equal(b"abc", b"abcd")


@given(message=st.binary(max_size=64))
def test_kh_stable_under_bytearray_keys(message):
    assert KH(bytearray(KEY), message) == KH(KEY, message)


@given(
    first=st.binary(max_size=32),
    second=st.binary(max_size=32),
)
def test_no_trivial_collisions(first, second):
    if first != second:
        assert KH(KEY, first) != KH(KEY, second)
