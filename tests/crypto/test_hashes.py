"""One-way hash functions and key-space truncation."""

import hashlib

import pytest

from repro.crypto.hashes import H, KEY_BYTES, SUPPORTED_ALGORITHMS, hash_function


def test_key_width_is_aes128():
    assert KEY_BYTES == 16


def test_h_truncates_to_key_width():
    assert len(H(b"anything")) == KEY_BYTES


def test_h_matches_sha1_prefix():
    assert H(b"x") == hashlib.sha1(b"x").digest()[:KEY_BYTES]


def test_h_md5_variant():
    assert H(b"x", "md5") == hashlib.md5(b"x").digest()[:KEY_BYTES]


def test_h_sha256_variant():
    assert H(b"x", "sha256") == hashlib.sha256(b"x").digest()[:KEY_BYTES]


def test_h_deterministic():
    assert H(b"same") == H(b"same")


def test_h_sensitive_to_input():
    assert H(b"a") != H(b"b")


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError, match="unsupported"):
        hash_function("rot13")


@pytest.mark.parametrize("algorithm", SUPPORTED_ALGORITHMS)
def test_supported_algorithms_work(algorithm):
    assert len(hash_function(algorithm)(b"data")) >= KEY_BYTES


def test_hash_function_returns_full_digest():
    assert len(hash_function("sha1")(b"x")) == 20
