"""AES block cipher: FIPS-197 vectors, roundtrips, input validation."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, INV_SBOX, SBOX, _gf_mul, _xtime

# FIPS-197 test vectors: (key hex, plaintext hex, ciphertext hex).
FIPS_VECTORS = [
    (  # Appendix B
        "2b7e151628aed2a6abf7158809cf4f3c",
        "3243f6a8885a308d313198a2e0370734",
        "3925841d02dc09fbdc118597196a0b32",
    ),
    (  # Appendix C.1 (AES-128)
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (  # Appendix C.2 (AES-192)
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (  # Appendix C.3 (AES-256)
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", FIPS_VECTORS)
def test_fips_197_encrypt(key_hex, plain_hex, cipher_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(plain_hex)).hex() == cipher_hex


@pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", FIPS_VECTORS)
def test_fips_197_decrypt(key_hex, plain_hex, cipher_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(cipher_hex)).hex() == plain_hex


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))


def test_inv_sbox_inverts_sbox():
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


def test_sbox_known_entries():
    # S-box corners from FIPS-197 Figure 7.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_xtime_reduces_modulo_rijndael_polynomial():
    assert _xtime(0x80) == 0x1B
    assert _xtime(0x01) == 0x02


def test_gf_mul_known_products():
    # {57} * {83} = {c1} from the FIPS-197 spec discussion.
    assert _gf_mul(0x57, 0x83) == 0xC1
    assert _gf_mul(0x57, 0x13) == 0xFE


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_roundtrip_all_key_sizes(key_len):
    cipher = AES(bytes(range(key_len)))
    block = bytes(range(16))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@pytest.mark.parametrize("bad_len", [0, 8, 15, 17, 33, 64])
def test_invalid_key_length_rejected(bad_len):
    with pytest.raises(ValueError, match="AES key"):
        AES(bytes(bad_len))


@pytest.mark.parametrize("bad_len", [0, 15, 17, 32])
def test_invalid_block_length_rejected(bad_len):
    cipher = AES(bytes(16))
    with pytest.raises(ValueError, match="block"):
        cipher.encrypt_block(bytes(bad_len))
    with pytest.raises(ValueError, match="block"):
        cipher.decrypt_block(bytes(bad_len))


def test_rounds_by_key_size():
    assert AES(bytes(16)).rounds == 10
    assert AES(bytes(24)).rounds == 12
    assert AES(bytes(32)).rounds == 14


def test_distinct_keys_give_distinct_ciphertexts():
    block = bytes(16)
    first = AES(bytes(16)).encrypt_block(block)
    second = AES(bytes([1] * 16)).encrypt_block(block)
    assert first != second


@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
)
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16))
def test_encryption_is_not_identity(key):
    block = bytes(16)
    # A cipher mapping a block to itself for random keys would be broken;
    # for AES this never happens on the all-zero block in practice.
    assert AES(key).encrypt_block(block) != block or key is None


def test_matches_cryptography_backend_if_available():
    cryptography = pytest.importorskip("cryptography")
    from cryptography.hazmat.primitives.ciphers import (
        Cipher, algorithms, modes,
    )

    key = bytes(range(16))
    block = bytes(range(100, 116))
    reference = Cipher(algorithms.AES(key), modes.ECB()).encryptor()
    expected = reference.update(block) + reference.finalize()
    assert AES(key).encrypt_block(block) == expected
