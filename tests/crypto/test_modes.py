"""CBC mode and PKCS#7 padding."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import BLOCK_SIZE
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)

KEY = bytes(range(16))


def test_pad_appends_at_least_one_byte():
    assert pkcs7_pad(b"") == bytes([16] * 16)


def test_pad_exact_block_adds_full_block():
    padded = pkcs7_pad(bytes(16))
    assert len(padded) == 32
    assert padded[-1] == 16


@pytest.mark.parametrize("length", range(0, 33))
def test_pad_unpad_roundtrip(length):
    data = bytes(range(length % 256))[:length]
    assert pkcs7_unpad(pkcs7_pad(data)) == data


def test_unpad_rejects_empty():
    with pytest.raises(ValueError):
        pkcs7_unpad(b"")


def test_unpad_rejects_unaligned():
    with pytest.raises(ValueError):
        pkcs7_unpad(b"\x01" * 15)


def test_unpad_rejects_zero_pad_byte():
    with pytest.raises(ValueError, match="padding length"):
        pkcs7_unpad(b"\x00" * 16)


def test_unpad_rejects_oversized_pad_byte():
    with pytest.raises(ValueError, match="padding length"):
        pkcs7_unpad(b"\x11" * 16)


def test_unpad_rejects_inconsistent_padding():
    data = b"\x00" * 14 + b"\x01\x02"
    with pytest.raises(ValueError, match="padding bytes"):
        pkcs7_unpad(data)


def test_pad_validates_block_size():
    with pytest.raises(ValueError):
        pkcs7_pad(b"x", block_size=0)
    with pytest.raises(ValueError):
        pkcs7_pad(b"x", block_size=256)


def test_cbc_roundtrip():
    plaintext = b"attack at dawn" * 7
    assert cbc_decrypt(KEY, cbc_encrypt(KEY, plaintext)) == plaintext


def test_cbc_output_includes_iv():
    ciphertext = cbc_encrypt(KEY, b"x")
    assert len(ciphertext) == 2 * BLOCK_SIZE  # IV + one padded block


def test_cbc_fixed_iv_is_deterministic():
    iv = bytes(16)
    assert cbc_encrypt(KEY, b"msg", iv) == cbc_encrypt(KEY, b"msg", iv)


def test_cbc_random_iv_randomizes_ciphertext():
    assert cbc_encrypt(KEY, b"msg") != cbc_encrypt(KEY, b"msg")


def test_cbc_rejects_bad_iv_length():
    with pytest.raises(ValueError, match="IV"):
        cbc_encrypt(KEY, b"msg", iv=bytes(8))


def test_cbc_decrypt_rejects_short_input():
    with pytest.raises(ValueError):
        cbc_decrypt(KEY, bytes(BLOCK_SIZE))


def test_cbc_decrypt_rejects_unaligned_input():
    with pytest.raises(ValueError):
        cbc_decrypt(KEY, bytes(BLOCK_SIZE * 2 + 1))


def test_cbc_wrong_key_fails_or_garbles():
    ciphertext = cbc_encrypt(KEY, b"secret payload")
    other_key = bytes([0xFF] * 16)
    try:
        plaintext = cbc_decrypt(other_key, ciphertext)
    except ValueError:
        return  # padding check caught it -- the common case
    assert plaintext != b"secret payload"


def test_cbc_identical_blocks_encrypt_differently():
    # The whole point of CBC over ECB.
    plaintext = bytes(16) * 2
    ciphertext = cbc_encrypt(KEY, plaintext, iv=bytes(16))
    body = ciphertext[BLOCK_SIZE:]
    assert body[:BLOCK_SIZE] != body[BLOCK_SIZE: 2 * BLOCK_SIZE]


@given(data=st.binary(max_size=300))
def test_cbc_roundtrip_property(data):
    assert cbc_decrypt(KEY, cbc_encrypt(KEY, data)) == data


@given(data=st.binary(max_size=120), flip=st.integers(min_value=0))
def test_cbc_tampering_never_silently_succeeds(data, flip):
    """Flipping a ciphertext bit must not yield the original plaintext."""
    ciphertext = bytearray(cbc_encrypt(KEY, data))
    position = BLOCK_SIZE + flip % (len(ciphertext) - BLOCK_SIZE)
    ciphertext[position] ^= 0x01
    try:
        recovered = cbc_decrypt(KEY, bytes(ciphertext))
    except ValueError:
        return
    assert recovered != data or position >= len(ciphertext) - BLOCK_SIZE
