"""AES backend selection: env override, self-check fallback, reset."""

import pytest

from repro.crypto import cipher
from repro.crypto.modes import cbc_encrypt

KEY = bytes(range(16))
IV = bytes(range(16, 32))


@pytest.fixture(autouse=True)
def _fresh_backend(monkeypatch):
    """Each test resolves the backend from its own environment."""
    monkeypatch.delenv(cipher.BACKEND_ENV, raising=False)
    cipher.reset_backend()
    yield
    cipher.reset_backend()


def test_auto_resolves_to_a_valid_backend():
    assert cipher.backend_name() in ("cryptography", "pure")


def test_pure_override_forces_reference_implementation(monkeypatch):
    monkeypatch.setenv(cipher.BACKEND_ENV, "pure")
    assert cipher.backend_name() == "pure"
    assert cipher.fallback_reason() is None
    assert cipher.encrypt(KEY, b"hello", IV) == cbc_encrypt(KEY, b"hello", IV)


def test_backends_produce_interoperable_wire_format(monkeypatch):
    monkeypatch.setenv(cipher.BACKEND_ENV, "pure")
    sealed_pure = cipher.encrypt(KEY, b"cross-backend payload", IV)

    cipher.reset_backend()
    monkeypatch.setenv(cipher.BACKEND_ENV, "auto")
    assert cipher.decrypt(KEY, sealed_pure) == b"cross-backend payload"
    sealed_auto = cipher.encrypt(KEY, b"cross-backend payload", IV)

    cipher.reset_backend()
    monkeypatch.setenv(cipher.BACKEND_ENV, "pure")
    assert cipher.decrypt(KEY, sealed_auto) == b"cross-backend payload"


def test_invalid_choice_rejected(monkeypatch):
    monkeypatch.setenv(cipher.BACKEND_ENV, "openssl")
    with pytest.raises(ValueError):
        cipher.backend_name()


def test_choice_is_case_insensitive_and_stripped(monkeypatch):
    monkeypatch.setenv(cipher.BACKEND_ENV, "  PURE ")
    assert cipher.backend_name() == "pure"


def test_empty_choice_means_auto(monkeypatch):
    monkeypatch.setenv(cipher.BACKEND_ENV, "")
    assert cipher.backend_name() in ("cryptography", "pure")


def test_reset_backend_rereads_environment(monkeypatch):
    first = cipher.backend_name()
    monkeypatch.setenv(cipher.BACKEND_ENV, "pure")
    # Resolution is sticky until reset: the env change alone is ignored.
    assert cipher.backend_name() == first
    cipher.reset_backend()
    assert cipher.backend_name() == "pure"


def test_explicit_cryptography_raises_when_unavailable(monkeypatch):
    monkeypatch.setenv(cipher.BACKEND_ENV, "cryptography")
    if cipher._HAVE_CRYPTOGRAPHY:
        assert cipher.backend_name() == "cryptography"
        assert cipher.fallback_reason() is None
    else:
        with pytest.raises(RuntimeError):
            cipher.backend_name()


def test_failing_self_check_falls_back_under_auto(monkeypatch):
    if not cipher._HAVE_CRYPTOGRAPHY:
        pytest.skip("fast backend not importable; fallback is trivial")

    def corrupted(key, plaintext, iv):
        good = cipher._Cipher(
            cipher._algorithms.AES(bytes(key)), cipher._modes.CBC(iv)
        ).encryptor()
        data = good.update(cipher.pkcs7_pad(plaintext)) + good.finalize()
        return iv + bytes(byte ^ 0xFF for byte in data)

    monkeypatch.setattr(cipher, "_fast_encrypt", corrupted)
    assert cipher.backend_name() == "pure"
    assert "mismatch" in cipher.fallback_reason()
    # The override that *requires* the fast backend refuses instead.
    cipher.reset_backend()
    monkeypatch.setenv(cipher.BACKEND_ENV, "cryptography")
    with pytest.raises(RuntimeError):
        cipher.backend_name()
