"""Adversarial security properties, checked over randomized workloads.

These tests play the attacker: every way a principal could hold the
*wrong* key material must fail to decrypt.  They encode the paper's
threat model (Section 2.2) as executable properties.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    KDC,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    Subscriber,
)
from repro.core.envelope import open_event
from repro.crypto.cipher import decrypt
from repro.siena.events import Event
from repro.siena.filters import Filter

RANGE = 256


def _system(master_key=bytes(range(16))):
    kdc = KDC(master_key=master_key)
    kdc.register_topic(
        "t", CompositeKeySpace({"v": NumericKeySpace("v", RANGE)})
    )
    return kdc


@settings(max_examples=40, deadline=None)
@given(
    low=st.integers(0, RANGE - 1),
    span=st.integers(0, RANGE - 1),
    value=st.integers(0, RANGE - 1),
)
def test_decryption_iff_match(low, span, value):
    """The paper's core guarantee, for arbitrary ranges and values."""
    high = min(low + span, RANGE - 1)
    kdc = _system()
    subscriber = Subscriber("S")
    subscriber.add_grant(
        kdc.authorize("S", Filter.numeric_range("t", "v", low, high))
    )
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(
        Event({"topic": "t", "v": value, "message": "secret"})
    )
    result = subscriber.receive(sealed, lambda n: kdc.config_for(n).schema)
    if low <= value <= high:
        assert result is not None and result.event["message"] == "secret"
    else:
        assert result is None


@settings(max_examples=20, deadline=None)
@given(value=st.integers(0, RANGE - 1), offset=st.integers(1, RANGE - 1))
def test_sibling_keys_never_decrypt(value, offset):
    """Holding the key for a *different* leaf never opens an event."""
    kdc = _system()
    schema = kdc.config_for("t").schema
    topic_key = kdc.topic_key("t")
    space = schema.space_for("v")
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(
        Event({"topic": "t", "v": value, "message": "secret"})
    )
    other = (value + offset) % RANGE
    _, wrong_key = space.encryption_key(topic_key, other)
    with pytest.raises(ValueError):
        open_event(sealed, schema, {"v": wrong_key})


def test_kdc_master_key_isolation():
    """Two KDCs with different master keys share no key material."""
    first = _system(master_key=bytes(16))
    second = _system(master_key=bytes([1] * 16))
    publisher = Publisher("P", first)
    sealed = publisher.publish(
        Event({"topic": "t", "v": 7, "message": "secret"})
    )
    subscriber = Subscriber("S")
    subscriber.add_grant(
        second.authorize("S", Filter.numeric_range("t", "v", 0, RANGE - 1))
    )
    assert subscriber.receive(
        sealed, lambda n: first.config_for(n).schema
    ) is None


def test_broker_view_reveals_no_payload_bytes():
    """What a curious broker sees contains no plaintext payload bytes."""
    kdc = _system()
    publisher = Publisher("P", kdc)
    payload = "extremely-identifiable-plaintext-marker"
    sealed = publisher.publish(
        Event({"topic": "t", "v": 99, "message": payload})
    )
    broker_view = sealed.routable.to_bytes() + sealed.ciphertext
    for lock in sealed.locks:
        broker_view += lock.wrapped
    assert payload.encode() not in broker_view


def test_ciphertexts_of_identical_events_differ():
    """Random IVs: equal plaintexts produce unequal ciphertexts."""
    kdc = _system()
    publisher = Publisher("P", kdc)
    event = Event({"topic": "t", "v": 5, "message": "same"})
    first = publisher.publish(event)
    second = publisher.publish(event)
    assert first.ciphertext != second.ciphertext


def test_epoch_forward_security():
    """Old-epoch grants cannot open next-epoch events and vice versa."""
    kdc = _system()
    publisher = Publisher("P", kdc)
    lookup = lambda n: kdc.config_for(n).schema  # noqa: E731
    epoch_length = kdc.config_for("t").epoch_length
    old_grant = kdc.authorize(
        "S", Filter.numeric_range("t", "v", 0, RANGE - 1), at_time=0.0
    )
    late = old_grant.expires_at + epoch_length / 2

    new_publisher = Publisher("P2", kdc)
    future_sealed = new_publisher.publish(
        Event({"topic": "t", "v": 5, "message": "future"}), at_time=late
    )
    subscriber = Subscriber("S")
    subscriber.add_grant(old_grant)
    # Even ignoring expiry bookkeeping, the keys simply do not match.
    assert subscriber.receive(future_sealed, lookup, at_time=0.0) is None

    # And the converse: a fresh grant cannot open old-epoch events.
    old_sealed = publisher.publish(
        Event({"topic": "t", "v": 5, "message": "past"}), at_time=0.0
    )
    fresh = Subscriber("S2")
    fresh.add_grant(
        kdc.authorize(
            "S2", Filter.numeric_range("t", "v", 0, RANGE - 1), at_time=late
        )
    )
    assert fresh.receive(old_sealed, lookup, at_time=late) is None


def test_grant_keys_do_not_reveal_siblings():
    """A grant's keys derive only the granted subtrees.

    One-wayness means the subscriber cannot walk up or sideways; here we
    verify that the keys it holds genuinely differ from the sibling keys
    it would need for out-of-range events.
    """
    kdc = _system()
    topic_key = kdc.topic_key("t")
    space = kdc.config_for("t").schema.space_for("v")
    grant = kdc.authorize("S", Filter.numeric_range("t", "v", 64, 127))
    granted_keys = {
        component.key
        for clause in grant.clauses
        for component in clause.components
        if component.attribute == "v"
    }
    for value in (0, 32, 63, 128, 200, 255):
        _, leaf_key = space.encryption_key(topic_key, value)
        assert leaf_key not in granted_keys


def test_tampered_ciphertext_never_yields_plaintext():
    kdc = _system()
    publisher = Publisher("P", kdc)
    sealed = publisher.publish(
        Event({"topic": "t", "v": 40, "message": "intact"})
    )
    subscriber = Subscriber("S")
    subscriber.add_grant(
        kdc.authorize("S", Filter.numeric_range("t", "v", 0, RANGE - 1))
    )
    from dataclasses import replace

    corrupted = bytearray(sealed.ciphertext)
    corrupted[len(corrupted) // 2] ^= 0x01
    tampered = replace(sealed, ciphertext=bytes(corrupted))
    result = subscriber.receive(
        tampered, lambda n: kdc.config_for(n).schema
    )
    assert result is None or result.event.get("message") != "intact"


def test_nonce_reuse_does_not_link_tokens():
    """Routable tokens with fresh nonces are pairwise distinct."""
    from repro.routing.tokens import TokenAuthority, make_routable

    authority = TokenAuthority(bytes(range(16)))
    token = authority.topic_token("w")
    seen = {make_routable(token).encode() for _ in range(64)}
    assert len(seen) == 64
