"""PSGuard over the discrete-event network: timed, sealed, decrypted.

The throughput harness charges *measured* costs; this test instead runs
the actual crypto inside the simulation -- sealed events ride as carriers
through the broker tree, and each delivery decrypts for real -- verifying
the full stack composes under simulated time.
"""

import pytest

from repro.core import (
    KDC,
    CompositeKeySpace,
    NumericKeySpace,
    Publisher,
    Subscriber,
)
from repro.net.sim import Simulator
from repro.net.simnet import SimulatedPubSub
from repro.siena.events import Event
from repro.siena.filters import Filter


@pytest.fixture
def stack(master_key):
    kdc = KDC(master_key=master_key)
    kdc.register_topic(
        "trial", CompositeKeySpace({"age": NumericKeySpace("age", 128)})
    )
    sim = Simulator()
    network = SimulatedPubSub(
        sim, num_brokers=7, link_latency=0.020, client_latency=0.002
    )
    return kdc, sim, network


def test_sealed_events_decrypt_at_delivery_time(stack):
    kdc, sim, network = stack
    publisher = Publisher("P", kdc)
    lookup = lambda name: kdc.config_for(name).schema  # noqa: E731

    subscribers = {}
    plaintexts = {}
    delivery_times = {}
    filters = {
        "young": Filter.numeric_range("trial", "age", 0, 40),
        "old": Filter.numeric_range("trial", "age", 60, 127),
    }
    for index, (name, subscription) in enumerate(filters.items()):
        subscriber = Subscriber(name)
        subscriber.add_grant(kdc.authorize(name, subscription))
        subscribers[name] = subscriber
        plaintexts[name] = []
        delivery_times[name] = []
        leaf = network.leaf_ids()[index]
        network.attach_subscriber(name, leaf)
        network.subscribe(name, subscription)

    # Patch delivery recording to decrypt with the real subscriber.
    original_record = network._record_delivery

    def record_and_decrypt(seq, subscriber_id, handed_off_at=None):
        sealed = network.carrier_of(seq)
        result = subscribers[subscriber_id].receive(sealed, lookup)
        assert result is not None, "routing must imply decryptability here"
        plaintexts[subscriber_id].append(result.event["message"])
        delivery_times[subscriber_id].append(sim.now)
        original_record(seq, subscriber_id, handed_off_at)

    network._record_delivery = record_and_decrypt

    for index, age in enumerate([20, 30, 70, 90, 50]):
        event = Event(
            {"topic": "trial", "age": age, "message": f"rec-{age}"},
            publisher="P",
        )
        sealed = publisher.publish(event)
        network.publish(sealed.routable, carrier=sealed,
                        size=sealed.wire_size(), delay=index * 0.01)

    sim.run(until=2.0)

    assert plaintexts["young"] == ["rec-20", "rec-30"]
    assert plaintexts["old"] == ["rec-70", "rec-90"]
    # age 50 matched nobody.
    assert len(network.deliveries) == 4
    # Timing: two broker hops + client link.
    for times in delivery_times.values():
        for delivered_at in times:
            assert delivered_at >= 0.042 - 1e-9


def test_saturation_and_decryption_coexist(stack):
    """Under load the network still delivers decryptable events."""
    kdc, sim, network = stack
    publisher = Publisher("P", kdc)
    lookup = lambda name: kdc.config_for(name).schema  # noqa: E731
    subscriber = Subscriber("S")
    subscription = Filter.numeric_range("trial", "age", 0, 127)
    subscriber.add_grant(kdc.authorize("S", subscription))
    network.attach_subscriber("S", network.leaf_ids()[0])
    network.subscribe("S", subscription)

    sealed_events = {}
    for index in range(100):
        event = Event(
            {"topic": "trial", "age": index % 128, "message": f"m{index}"},
            publisher="P",
        )
        sealed = publisher.publish(event)
        seq = network.publish(
            sealed.routable, carrier=sealed, delay=index * 0.001
        )
        sealed_events[seq] = sealed

    sim.run(until=3.0)
    assert len(network.deliveries) == 100
    for record in network.deliveries[:10]:
        sealed = sealed_events[record.seq]
        result = subscriber.receive(sealed, lookup)
        assert result is not None
