"""Whole-system integration: the paper's architecture end to end.

Publisher -> sealed events -> tokenized content-based routing over a
broker tree -> subscriber-side key derivation and decryption, with the
KDC issuing all key material.
"""

import pytest

from repro.core import KDC, Publisher, Subscriber
from repro.core.composite import CompositeKeySpace
from repro.core.nakt import NumericKeySpace
from repro.routing.tokens import (
    TokenAuthority,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree
from repro.workloads.generator import PaperWorkload, WorkloadConfig


@pytest.fixture(scope="module")
def system():
    kdc = KDC(master_key=bytes(range(16)))
    kdc.register_topic(
        "cancerTrail",
        CompositeKeySpace({"age": NumericKeySpace("age", 128)}),
    )
    return kdc


def test_secure_dissemination_over_broker_tree(system):
    """Sealed events route through plain Siena brokers untouched.

    "A unique feature of our design is that the nodes in the pub-sub
    network can route messages as if they were original Siena messages"
    (Section 5.1).
    """
    kdc = system
    tree = BrokerTree(num_brokers=7)
    publisher = Publisher("P", kdc)
    lookup = lambda t: kdc.config_for(t).schema  # noqa: E731

    inboxes = {"in-range": [], "out-of-range": []}
    subscribers = {
        "in-range": Subscriber("in-range"),
        "out-of-range": Subscriber("out-of-range"),
    }
    filters = {
        "in-range": Filter.numeric_range("cancerTrail", "age", 20, 60),
        "out-of-range": Filter.numeric_range("cancerTrail", "age", 90, 120),
    }
    sealed_by_seq = {}

    for index, name in enumerate(inboxes):
        subscribers[name].add_grant(kdc.authorize(name, filters[name]))
        leaf = tree.leaf_ids()[index]

        def deliver(routable, name=name):
            sealed = sealed_by_seq[routable["_seq"]]
            result = subscribers[name].receive(sealed, lookup)
            inboxes[name].append(result)

        tree.attach_subscriber(name, leaf, deliver)
        tree.subscribe(name, filters[name])

    for seq, age in enumerate([25, 45, 95]):
        event = Event(
            {"topic": "cancerTrail", "age": age,
             "message": f"record-{age}"},
            publisher="P",
        )
        sealed = publisher.publish(event)
        sealed_by_seq[seq] = sealed
        tree.publish(sealed.routable.with_attributes(_seq=seq))

    # Routing delivered exactly the matching events...
    assert len(inboxes["in-range"]) == 2
    assert len(inboxes["out-of-range"]) == 1
    # ... and every delivered event decrypted successfully.
    assert [r.event["message"] for r in inboxes["in-range"]] == [
        "record-25", "record-45",
    ]
    assert inboxes["out-of-range"][0].event["message"] == "record-95"


def test_defense_in_depth_routing_overdelivery(system):
    """Even if routing over-delivers, crypto denies unauthorized reads.

    Routing is an optimization; confidentiality rests on key derivation
    alone (the semi-honest network may misroute without harm).
    """
    kdc = system
    publisher = Publisher("P", kdc)
    lookup = lambda t: kdc.config_for(t).schema  # noqa: E731
    narrow = Subscriber("narrow")
    narrow.add_grant(
        kdc.authorize("narrow", Filter.numeric_range("cancerTrail", "age", 30, 40))
    )
    sealed = publisher.publish(
        Event(
            {"topic": "cancerTrail", "age": 25, "message": "m"},
            publisher="P",
        )
    )
    # Deliver it anyway (as a misbehaving broker might).
    assert narrow.receive(sealed, lookup) is None


def test_tokenized_routing_matches_plaintext_routing(system):
    """Tokenized matching must agree exactly with plaintext matching."""
    kdc = system
    authority = TokenAuthority(kdc.master_key)
    space = kdc.config_for("cancerTrail").schema.space_for("age")
    subscription_range = (32, 63)
    cover = space.cover(*subscription_range)
    token_filters = [
        tokenized_subscription(authority, "cancerTrail", {"age": element})
        for element in cover
    ]
    plain_filter = Filter.numeric_range(
        "cancerTrail", "age", *subscription_range
    )
    for age in range(0, 128, 5):
        event = Event({"topic": "cancerTrail", "age": age})
        tokenized = tokenize_event(
            authority, event, {"age": space.ktid(age)}, "cancerTrail"
        )
        token_result = any(
            tokenized_match(f, tokenized) for f in token_filters
        )
        assert token_result == plain_filter.matches(event)


def test_full_workload_authorization_round(system):
    """Every subscription of a workload subscriber yields a working grant."""
    workload = PaperWorkload(WorkloadConfig(seed=77))
    kdc = workload.build_kdc(master_key=bytes(range(16)))
    lookup = lambda t: kdc.config_for(t).schema  # noqa: E731
    publisher = Publisher("P", kdc)
    subscriber = Subscriber("S")
    subscriptions = workload.subscriptions_for("S")
    for subscription in subscriptions:
        subscriber.add_grant(kdc.authorize("S", subscription.filter))

    opened = 0
    attempts = 0
    for subscription in subscriptions[:12]:
        # Publish an event guaranteed to match this subscription.
        topic = subscription.topic
        event = workload.random_event(topic=topic)
        if topic.kind == "numeric":
            low, high = subscription.numeric_range
            event = event.with_attributes(value=(low + high) // 2)
        elif topic.kind == "category":
            tree = topic.category_tree
            granted = tree.label_of(
                str(next(
                    c.value
                    for c in subscription.filter
                    if c.name == "category"
                ))
            )
            leaf = next(
                label for label in tree.leaves()
                if tree.subsumes(granted, label)
            )
            event = event.with_attributes(category=tree.path_string(leaf))
        elif topic.kind == "string":
            prefix = next(
                c.value for c in subscription.filter if c.name == "text"
            )
            event = event.with_attributes(text=str(prefix) + "a")
        sealed = publisher.publish(event)
        attempts += 1
        result = subscriber.receive(sealed, lookup)
        assert result is not None, subscription
        assert result.event["message"] == event["message"]
        opened += 1
    assert opened == attempts


def test_stateless_kdc_replica_serves_existing_subscribers(system):
    """A replica spun up later serves decryption-compatible grants."""
    kdc = system
    replica = kdc.replicate()
    publisher = Publisher("P", kdc)
    lookup = lambda t: kdc.config_for(t).schema  # noqa: E731
    subscriber = Subscriber("S")
    subscriber.add_grant(
        replica.authorize("S", Filter.numeric_range("cancerTrail", "age", 0, 127))
    )
    sealed = publisher.publish(
        Event(
            {"topic": "cancerTrail", "age": 55, "message": "via-replica"},
            publisher="P",
        )
    )
    assert subscriber.receive(sealed, lookup).event["message"] == "via-replica"
