"""The multi-path dissemination network G_ind and Theorem 4.2."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.multipath import MultipathNetwork, required_ind


def test_parameter_validation():
    with pytest.raises(ValueError):
        MultipathNetwork(depth=0)
    with pytest.raises(ValueError):
        MultipathNetwork(depth=2, arity=1)
    with pytest.raises(ValueError):
        MultipathNetwork(depth=2, arity=2, ind=3)  # ind <= arity
    with pytest.raises(ValueError):
        MultipathNetwork(depth=2, arity=2, ind=0)


def test_broker_enumeration():
    net = MultipathNetwork(depth=2, arity=2)
    brokers = list(net.brokers())
    assert brokers[0] == ()
    assert len(brokers) == 7
    assert net.broker_count() == 7
    assert len(net.leaves()) == 4
    assert len(net.subscribers()) == 4


def test_tree_edges_connect_parents_to_children():
    net = MultipathNetwork(depth=2, arity=2)
    edges = net.tree_edges()
    # 6 broker edges + 4 subscriber edges.
    assert len(edges) == 10
    assert all(edge.is_tree_edge for edge in edges)


def test_extra_edge_counts_binary_ind2():
    """G_2 over a binary tree adds one edge per depth>=2 node and leaf."""
    net = MultipathNetwork(depth=3, arity=2, ind=2)
    extra = net.extra_edges()
    depth2_plus = 4 + 8  # nodes at depth 2 and 3
    subscribers = 8
    assert len(extra) == depth2_plus + subscribers
    assert not any(edge.is_tree_edge for edge in extra)


def test_ind1_adds_no_edges():
    net = MultipathNetwork(depth=3, arity=2, ind=1)
    assert net.extra_edges() == []


def test_theorem_42_paths_exist_and_are_independent():
    """Explicit check of Theorem 4.2 for the binary G_2."""
    net = MultipathNetwork(depth=4, arity=2, ind=2)
    for subscriber in net.subscribers():
        paths = net.independent_paths(subscriber)
        assert len(paths) == 2
        assert net.paths_independent(paths)
        for path in paths:
            assert path[0] == ()
            assert path[-1] == subscriber
            assert net.path_edges_exist(path)


@settings(max_examples=20, deadline=None)
@given(
    depth=st.integers(1, 4),
    arity=st.integers(2, 5),
    data=st.data(),
)
def test_claim_43_generalized_property(depth, arity, data):
    """Claim 4.3: G_ind has ind independent paths for any ind <= a."""
    ind = data.draw(st.integers(1, arity))
    net = MultipathNetwork(depth=depth, arity=arity, ind=ind)
    subscribers = net.subscribers()
    subscriber = subscribers[data.draw(st.integers(0, len(subscribers) - 1))]
    paths = net.independent_paths(subscriber)
    assert len(paths) == ind
    assert net.paths_independent(paths)
    assert all(net.path_edges_exist(path) for path in paths)


def test_path_lengths_equal_tree_depth():
    net = MultipathNetwork(depth=3, arity=3, ind=3)
    subscriber = net.subscribers()[0]
    for path in net.independent_paths(subscriber):
        assert len(path) == 3 + 2  # P, n1..n3, S


def test_partial_path_count():
    net = MultipathNetwork(depth=2, arity=4, ind=4)
    subscriber = net.subscribers()[0]
    assert len(net.independent_paths(subscriber, 2)) == 2
    with pytest.raises(ValueError):
        net.independent_paths(subscriber, 5)


def test_first_path_is_the_tree_path():
    net = MultipathNetwork(depth=2, arity=2, ind=2)
    subscriber = net.subscribers()[0]
    assert net.independent_paths(subscriber)[0] == net.tree_path(subscriber)


def test_construction_cost_monotone_in_ind():
    costs = [
        MultipathNetwork(depth=3, arity=5, ind=ind).construction_cost()
        for ind in range(1, 6)
    ]
    assert costs == sorted(costs)


def test_construction_cost_with_token_map():
    net = MultipathNetwork(depth=2, arity=5, ind=5)
    uniform = net.construction_cost({f"t{i}": 1 for i in range(10)})
    skewed = net.construction_cost(
        {f"t{i}": (5 if i == 0 else 1) for i in range(10)}
    )
    assert skewed > uniform
    # Paths are clamped to the network's ind.
    assert net.construction_cost({"t": 99}) == net.construction_cost({"t": 5})


def test_edge_count_includes_both_kinds():
    net = MultipathNetwork(depth=2, arity=2, ind=2)
    assert net.edge_count() == len(net.tree_edges()) + len(net.extra_edges())


def test_required_ind():
    assert required_ind(128.0, 1.0) == 128
    assert required_ind(1.0, 1.0) == 1
    with pytest.raises(ValueError):
        required_ind(1.0, 0.0)
