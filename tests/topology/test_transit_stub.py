"""Transit-stub topology generation."""

import pytest

from repro.topology.transit_stub import TransitStubTopology


@pytest.fixture(scope="module")
def topology() -> TransitStubTopology:
    return TransitStubTopology(seed=7)


def test_graph_is_connected(topology):
    import networkx as nx

    assert nx.is_connected(topology.graph)


def test_node_counts(topology):
    # 4 transit domains x 4 nodes, each with 4 stub domains x 4 nodes.
    assert len(topology.transit_nodes) == 16
    assert len(topology.stub_nodes) == 256
    assert len(topology.stub_domains) == 64


def test_all_edges_have_positive_delay(topology):
    for _, _, data in topology.graph.edges(data=True):
        assert data["delay"] > 0


def test_delay_symmetry(topology):
    nodes = topology.stub_nodes[:5]
    for first in nodes:
        for second in nodes:
            assert topology.one_way_delay(first, second) == pytest.approx(
                topology.one_way_delay(second, first)
            )


def test_rtt_is_twice_one_way(topology):
    a, b = topology.stub_nodes[0], topology.stub_nodes[-1]
    assert topology.rtt(a, b) == pytest.approx(
        2 * topology.one_way_delay(a, b)
    )


def test_overlay_sampling_spreads_across_domains(topology):
    overlay = topology.sample_overlay(63)
    assert len(overlay) == 63
    assert len(set(overlay)) == 63
    domain_of = {}
    for index, domain in enumerate(topology.stub_domains):
        for node in domain:
            domain_of[node] = index
    # 63 nodes over 64 domains: at most one per domain.
    domains = [domain_of[node] for node in overlay]
    assert len(set(domains)) == 63


def test_oversized_sample_rejected(topology):
    with pytest.raises(ValueError):
        topology.sample_overlay(10_000)


def test_overlay_stats_match_paper_envelope(topology):
    """Section 5.2: RTTs 24-184 ms, mean ~74 ms.

    Our generator is calibrated to land in that envelope (within the
    tolerance a different random topology instance allows).
    """
    stats = topology.overlay_stats(topology.sample_overlay(63))
    assert 0.015 <= stats.min_rtt <= 0.040
    assert 0.120 <= stats.max_rtt <= 0.250
    assert 0.055 <= stats.mean_rtt <= 0.110
    assert 0.020 <= stats.std_rtt <= 0.060


def test_stats_need_two_nodes(topology):
    with pytest.raises(ValueError):
        topology.overlay_stats([topology.stub_nodes[0]])


def test_deterministic_for_seed():
    first = TransitStubTopology(seed=11)
    second = TransitStubTopology(seed=11)
    assert first.sample_overlay(10) == second.sample_overlay(10)


def test_different_seeds_differ():
    assert TransitStubTopology(seed=1).sample_overlay(
        20
    ) != TransitStubTopology(seed=2).sample_overlay(20)


def test_dimension_validation():
    with pytest.raises(ValueError):
        TransitStubTopology(transit_domains=0)
