"""Dissemination-tree embedding."""

import pytest

from repro.topology.transit_stub import TransitStubTopology
from repro.topology.tree import DisseminationTree


@pytest.fixture(scope="module")
def topology():
    return TransitStubTopology(seed=7)


def test_heap_parenting(topology):
    tree = DisseminationTree(7, topology)
    assert tree.parent_of(0) is None
    assert tree.parent_of(1) == 0
    assert tree.parent_of(2) == 0
    assert tree.parent_of(5) == 2
    assert tree.parent_of(6) == 2


def test_links_count_and_latency(topology):
    tree = DisseminationTree(7, topology)
    links = tree.links()
    assert len(links) == 6
    for link in links:
        assert link.latency > 0
        assert tree.link_latency(link.parent, link.child) == link.latency


def test_depth(topology):
    assert DisseminationTree(1, topology).depth() == 0
    assert DisseminationTree(3, topology).depth() == 1
    assert DisseminationTree(31, topology).depth() == 4
    assert DisseminationTree(4, topology).depth() == 2


def test_ternary_tree(topology):
    tree = DisseminationTree(13, topology, arity=3)
    assert tree.parent_of(1) == 0
    assert tree.parent_of(3) == 0
    assert tree.parent_of(4) == 1
    assert tree.depth() == 2


def test_placement_distinct(topology):
    tree = DisseminationTree(31, topology)
    assert len(set(tree.placement.values())) == 31


def test_requires_at_least_root(topology):
    with pytest.raises(ValueError):
        DisseminationTree(0, topology)
