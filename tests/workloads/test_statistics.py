"""Statistical sanity of the Section 5.2 workload generator."""

import statistics

import pytest

from repro.workloads.generator import PaperWorkload, WorkloadConfig


@pytest.fixture(scope="module")
def workload():
    return PaperWorkload(WorkloadConfig(seed=23))


def test_numeric_subscription_width_distribution(workload):
    """Endpoint-pair draws from N(128, 32): mean width ~ 2*sigma/sqrt(pi)."""
    topic = next(t for t in workload.topics if t.kind == "numeric")
    widths = []
    for _ in range(600):
        low, high = workload.subscription_for("S", topic).numeric_range
        widths.append(high - low)
    mean_width = statistics.mean(widths)
    expected = 2 * 32 / (3.14159**0.5)  # E|X-Y| for iid normals
    assert mean_width == pytest.approx(expected, rel=0.25)


def test_string_length_is_zipf_biased(workload):
    topic = next(t for t in workload.topics if t.kind == "string")
    lengths = [
        len(str(workload.random_event(topic=topic)["text"]))
        for _ in range(600)
    ]
    ones = sum(1 for length in lengths if length == 1)
    eights = sum(1 for length in lengths if length == 8)
    assert ones > eights
    assert min(lengths) >= 1 and max(lengths) <= 8


def test_subscription_sets_skew_to_popular_topics(workload):
    """Zipf interest: the head topic appears in almost every set."""
    head = workload.topics[0].name
    tail = workload.topics[-1].name
    head_hits = tail_hits = 0
    for index in range(60):
        names = {t.name for t in workload.subscriber_topics(f"S{index}")}
        head_hits += head in names
        tail_hits += tail in names
    assert head_hits > tail_hits
    assert head_hits >= 50  # the rank-1 topic is nearly universal


def test_publication_frequencies_realized(workload):
    """Realized topic counts track the declared Zipf frequencies."""
    frequencies = workload.frequencies()
    counts = {}
    samples = 4000
    for _ in range(samples):
        topic = workload.random_event()["topic"]
        counts[topic] = counts.get(topic, 0) + 1
    head = workload.topics[0].name
    assert counts.get(head, 0) / samples == pytest.approx(
        frequencies[head], rel=0.35
    )


def test_category_leaf_publication_only(workload):
    topic = next(t for t in workload.topics if t.kind == "category")
    leaves = set(topic.category_tree.leaves())
    for _ in range(50):
        event = workload.random_event(topic=topic)
        label = topic.category_tree.label_of(str(event["category"]))
        assert label in leaves
