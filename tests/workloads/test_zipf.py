"""Zipf sampling."""

import random

import pytest

from repro.workloads.zipf import ZipfSampler, zipf_weights


def test_weights_normalized():
    assert sum(zipf_weights(100)) == pytest.approx(1.0)


def test_weights_decreasing():
    weights = zipf_weights(50)
    assert weights == sorted(weights, reverse=True)


def test_classic_ratios():
    weights = zipf_weights(10, exponent=1.0)
    assert weights[0] / weights[1] == pytest.approx(2.0)
    assert weights[0] / weights[9] == pytest.approx(10.0)


def test_exponent_zero_is_uniform():
    weights = zipf_weights(4, exponent=0.0)
    assert all(w == pytest.approx(0.25) for w in weights)


def test_validation():
    with pytest.raises(ValueError):
        zipf_weights(0)
    with pytest.raises(ValueError):
        zipf_weights(5, exponent=-1)
    with pytest.raises(ValueError):
        ZipfSampler([])


def test_sampler_respects_popularity():
    sampler = ZipfSampler(list(range(20)), rng=random.Random(7))
    counts = [0] * 20
    for _ in range(4000):
        counts[sampler.sample()] += 1
    assert counts[0] > counts[10] > 0


def test_sample_distinct_returns_distinct():
    sampler = ZipfSampler(list(range(50)), rng=random.Random(7))
    chosen = sampler.sample_distinct(30)
    assert len(chosen) == 30
    assert len(set(chosen)) == 30


def test_sample_distinct_biased_to_head():
    sampler = ZipfSampler(list(range(100)), rng=random.Random(7))
    head_hits = sum(
        0 in sampler.sample_distinct(10) for _ in range(100)
    )
    tail_hits = sum(
        99 in sampler.sample_distinct(10) for _ in range(100)
    )
    assert head_hits > tail_hits


def test_sample_distinct_bounds():
    sampler = ZipfSampler([1, 2, 3])
    with pytest.raises(ValueError):
        sampler.sample_distinct(4)
    assert sorted(sampler.sample_distinct(3)) == [1, 2, 3]


def test_frequency_of():
    sampler = ZipfSampler(["a", "b"])
    assert sampler.frequency_of("a") == pytest.approx(2 / 3)
    assert sampler.frequency_of("b") == pytest.approx(1 / 3)


def test_deterministic_by_default():
    """Two samplers built with the same arguments draw the same stream
    (the unseeded-RNG fallback is gone)."""
    draws = lambda s: [s.sample() for _ in range(50)]  # noqa: E731
    assert draws(ZipfSampler(list(range(30)))) == draws(
        ZipfSampler(list(range(30)))
    )
    assert draws(ZipfSampler(list(range(30)), seed=1)) == draws(
        ZipfSampler(list(range(30)), seed=1)
    )
    # Distinct seeds diverge, and an explicit rng still wins.
    assert draws(ZipfSampler(list(range(30)), seed=1)) != draws(
        ZipfSampler(list(range(30)), seed=2)
    )
    assert draws(
        ZipfSampler(list(range(30)), rng=random.Random(7), seed=1)
    ) == draws(ZipfSampler(list(range(30)), rng=random.Random(7), seed=2))
