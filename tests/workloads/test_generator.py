"""The Section 5.2 synthetic workload."""

import pytest

from repro.core.nakt import NumericKeySpace
from repro.workloads.generator import PaperWorkload, WorkloadConfig


@pytest.fixture(scope="module")
def workload() -> PaperWorkload:
    return PaperWorkload()


def test_topic_population(workload):
    """128 topics, 32 per attribute kind (Section 5.2)."""
    assert len(workload.topics) == 128
    kinds = {}
    for topic in workload.topics:
        kinds[topic.kind] = kinds.get(topic.kind, 0) + 1
    assert kinds == {
        "numeric": 32, "category": 32, "string": 32, "plain": 32,
    }


def test_kinds_interleaved_across_popularity(workload):
    head = {topic.kind for topic in workload.topics[:4]}
    assert head == {"numeric", "category", "string", "plain"}


def test_numeric_topics_match_paper_parameters(workload):
    topic = next(t for t in workload.topics if t.kind == "numeric")
    space = topic.schema.space_for("value")
    assert isinstance(space, NumericKeySpace)
    assert space.range_size == 256
    assert space.least_count == 4
    assert space.depth == 6  # "height of the numeric attribute tree was 6"


def test_category_trees_match_paper_shape(workload):
    sizes = []
    for topic in workload.topics:
        if topic.kind != "category":
            continue
        tree = topic.category_tree
        assert tree.height() == 4
        for label in tree.labels():
            children = tree.children(label)
            if children:
                assert 2 <= len(children) <= 4
        sizes.append(len(tree))
    average = sum(sizes) / len(sizes)
    # Paper: "the average number of elements in a category tree was 82".
    assert 50 <= average <= 130


def test_subscriber_interest_set(workload):
    topics = workload.subscriber_topics("S0")
    assert len(topics) == 32
    assert len({t.name for t in topics}) == 32


def test_subscriptions_match_their_topics(workload):
    for subscription in workload.subscriptions_for("S1"):
        names = subscription.filter.attribute_names()
        assert "topic" in names
        if subscription.topic.kind == "numeric":
            assert subscription.numeric_range is not None
            low, high = subscription.numeric_range
            assert 0 <= low <= high <= 255


def test_numeric_subscription_gaussian_center(workload):
    lows, highs = [], []
    for _ in range(200):
        topic = next(t for t in workload.topics if t.kind == "numeric")
        subscription = workload.subscription_for("S", topic)
        low, high = subscription.numeric_range
        lows.append(low)
        highs.append(high)
    center = (sum(lows) + sum(highs)) / (2 * len(lows))
    assert 100 <= center <= 156  # mean 128 per the paper


def test_events_carry_kind_attributes(workload):
    for topic in workload.topics[:8]:
        event = workload.random_event(topic=topic)
        assert event["topic"] == topic.name
        assert len(str(event["message"])) == 256
        if topic.kind == "numeric":
            assert 0 <= event["value"] <= 255
        elif topic.kind == "category":
            label = topic.category_tree.label_of(str(event["category"]))
            assert label in topic.category_tree.leaves()
            assert str(event["category"]).endswith("/")
        elif topic.kind == "string":
            assert 1 <= len(str(event["text"])) <= 8


def test_category_subscription_matches_subtree_events(workload):
    """Routing-level prefix matching IS ontology subsumption."""
    topic = next(t for t in workload.topics if t.kind == "category")
    tree = topic.category_tree
    subscription = workload.subscription_for("S", topic)
    granted = tree.label_of(
        str(next(
            c.value for c in subscription.filter if c.name == "category"
        ))
    )
    for leaf in tree.leaves():
        event = workload.random_event(topic=topic).with_attributes(
            category=tree.path_string(leaf)
        )
        assert subscription.filter.matches(event) == tree.subsumes(
            granted, leaf
        )


def test_zipf_event_topics(workload):
    counts = {}
    for _ in range(3000):
        event = workload.random_event()
        counts[event["topic"]] = counts.get(event["topic"], 0) + 1
    most_popular = workload.topics[0].name
    unpopular = workload.topics[-1].name
    assert counts.get(most_popular, 0) > counts.get(unpopular, 0)


def test_frequencies_sum_to_one(workload):
    frequencies = workload.frequencies()
    assert len(frequencies) == 128
    assert sum(frequencies.values()) == pytest.approx(1.0)


def test_build_kdc_registers_every_topic(workload):
    kdc = workload.build_kdc()
    for topic in workload.topics:
        assert kdc.config_for(topic.name).schema is topic.schema


def test_topic_lookup(workload):
    topic = workload.topics[5]
    assert workload.topic_by_name(topic.name) is topic
    with pytest.raises(KeyError):
        workload.topic_by_name("nope")


def test_num_topics_must_divide_by_kinds():
    with pytest.raises(ValueError):
        PaperWorkload(WorkloadConfig(num_topics=30))


def test_deterministic_under_seed():
    first = PaperWorkload(WorkloadConfig(seed=9))
    second = PaperWorkload(WorkloadConfig(seed=9))
    assert [t.name for t in first.subscriber_topics("S")] == [
        t.name for t in second.subscriber_topics("S")
    ]
