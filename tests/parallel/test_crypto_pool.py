"""CryptoPool: batch seal/open/PRF offload equals the serial path."""

from repro.core.composite import CompositeKeySpace
from repro.core.nakt import NumericKeySpace
from repro.core.envelope import open_event, seal_event
from repro.crypto.prf import F
from repro.parallel import CryptoPool, ParallelPolicy
from repro.siena.events import Event

TOPIC_KEY = bytes(range(16))


def _schema():
    return CompositeKeySpace({"age": NumericKeySpace("age", 128)})


def _leaf_key(schema, value):
    return schema.space_for("age").encryption_key(TOPIC_KEY, value)[1]


class TestPRFBatch:
    def test_offloaded_proofs_equal_serial(self):
        pairs = [
            (bytes([i]) * 20, bytes([255 - i]) * 16) for i in range(10)
        ]
        with CryptoPool(ParallelPolicy(workers=2, chunk_size=3)) as pool:
            proofs = pool.prf_batch(pairs)
            assert proofs == [F(token, nonce) for token, nonce in pairs]
            assert pool.offloaded == len(pairs)
            assert pool.tasks == 4  # ceil(10 / 3) chunks

    def test_serial_policy_computes_in_process(self):
        pairs = [(b"t" * 20, b"n" * 16)]
        pool = CryptoPool(ParallelPolicy(workers=1))
        assert pool.prf_batch(pairs) == [F(b"t" * 20, b"n" * 16)]
        assert pool.offloaded == 0
        assert pool.serial_fallbacks == 1
        assert not pool.stats()["pool_live"]

    def test_empty_batch(self):
        with CryptoPool(ParallelPolicy(workers=2)) as pool:
            assert pool.prf_batch([]) == []
            assert pool.tasks == 0


class TestSealBatch:
    def test_sealed_batch_opens_like_serial_seals(self):
        schema = _schema()
        events = [
            Event({"topic": "trial", "age": 20 + n, "record": f"r{n}"},
                  publisher="P")
            for n in range(4)
        ]
        jobs = [(event, schema, TOPIC_KEY, {"record"}) for event in events]
        with CryptoPool(ParallelPolicy(workers=2, chunk_size=2)) as pool:
            sealed_batch = pool.seal_batch(jobs)
        assert len(sealed_batch) == len(events)
        for n, sealed in enumerate(sealed_batch):
            assert "record" not in sealed.routable
            result = open_event(
                sealed, schema, {"age": _leaf_key(schema, 20 + n)}
            )
            assert result.event["record"] == f"r{n}"

    def test_serial_fallback_seals_identically(self):
        schema = _schema()
        event = Event({"topic": "trial", "age": 25, "record": "r"},
                      publisher="P")
        pool = CryptoPool(ParallelPolicy(workers=0))
        [sealed] = pool.seal_batch([(event, schema, TOPIC_KEY, {"record"})])
        result = open_event(sealed, schema, {"age": _leaf_key(schema, 25)})
        assert result.event["record"] == "r"


class TestOpenBatch:
    def test_open_batch_matches_per_item_open(self):
        schema = _schema()
        sealed = [
            seal_event(
                Event({"topic": "trial", "age": 20 + n, "record": f"r{n}"}),
                schema, TOPIC_KEY, {"record"},
            )
            for n in range(3)
        ]
        jobs = [
            (s, schema, {"age": _leaf_key(schema, 20 + n)})
            for n, s in enumerate(sealed)
        ]
        with CryptoPool(ParallelPolicy(workers=2, chunk_size=2)) as pool:
            opened = pool.open_batch(jobs)
        for n, result in enumerate(opened):
            assert result is not None
            assert result.event["record"] == f"r{n}"

    def test_unsatisfiable_slot_is_none_not_an_exception(self):
        schema = _schema()
        sealed = seal_event(
            Event({"topic": "trial", "age": 25, "record": "r"}),
            schema, TOPIC_KEY, {"record"},
        )
        wrong_key = _leaf_key(schema, 26)
        good_key = _leaf_key(schema, 25)
        jobs = [
            (sealed, schema, {"age": wrong_key}),
            (sealed, schema, {"age": good_key}),
            (sealed, schema, {}),
        ]
        with CryptoPool(ParallelPolicy(workers=2, chunk_size=2)) as pool:
            opened = pool.open_batch(jobs)
        assert opened[0] is None
        assert opened[1] is not None and opened[1].event["record"] == "r"
        assert opened[2] is None

    def test_serial_fallback_open(self):
        schema = _schema()
        sealed = seal_event(
            Event({"topic": "trial", "age": 25, "record": "r"}),
            schema, TOPIC_KEY, {"record"},
        )
        pool = CryptoPool(ParallelPolicy(workers=1))
        opened = pool.open_batch([
            (sealed, schema, {"age": _leaf_key(schema, 25)}),
            (sealed, schema, {}),
        ])
        assert opened[0] is not None
        assert opened[1] is None
