"""Facade integration: builder.parallel(), parallel_stats(), and the
explicit shed verdict from System._disseminate."""

from repro.api import System
from repro.flow import AdmissionController
from repro.siena.events import Event
from repro.siena.filters import Filter


def _system(**extra):
    builder = System.builder().topic("news", numeric={"price": 128})
    for name, kwargs in extra.items():
        getattr(builder, name)(**kwargs)
    return builder.build()


class TestBuilderParallel:
    def test_parallel_wires_matcher_and_cache(self):
        system = _system(parallel={"workers": 2, "chunk_size": 8})
        try:
            assert system.parallel is not None
            assert system.tree.match_cache is not None
            assert system.parallel.policy.workers == 2
            assert system.parallel.policy.chunk_size == 8
        finally:
            system.parallel.close()

    def test_subscriptions_register_with_the_matcher(self):
        system = _system(parallel={"workers": 2})
        try:
            system.subscribe(
                "w", Filter.numeric_range("news", "price", 0, 63)
            )
            assert system.parallel.filter_count == 1
        finally:
            system.parallel.close()

    def test_parallel_stats_shape(self):
        system = _system(parallel={"workers": 2})
        try:
            stats = system.parallel_stats()
            assert stats["workers"] == 2
            assert stats["tasks"] == 0
            assert "primed_verdicts" in stats
        finally:
            system.parallel.close()

    def test_without_parallel_stats_is_empty(self):
        system = _system()
        assert system.parallel is None
        assert system.parallel_stats() == {}

    def test_publishing_still_works_with_parallel_armed(self):
        system = _system(parallel={"workers": 2})
        try:
            watcher = system.subscribe(
                "w", Filter.numeric_range("news", "price", 0, 63)
            )
            feed = system.publisher("feed")
            feed.publish(
                Event({"topic": "news", "price": 10, "body": "hi"},
                      publisher="feed")
            )
            assert len(watcher.opened) == 1
            assert watcher.opened[0].event["body"] == "hi"
        finally:
            system.parallel.close()


class TestExplicitShedVerdict:
    def test_disseminate_returns_fanout_and_shed(self):
        system = _system(admission={"rate": 10.0, "burst": 1.0,
                                    "reserve": 0.0})
        system.subscribe("w", Filter.numeric_range("news", "price", 0, 127))
        feed = system.publisher("feed")
        sealed = feed.engine.publish(
            Event({"topic": "news", "price": 1, "b": "x"}, publisher="feed")
        )
        fanout, shed = system._disseminate(sealed, 0.0)
        assert fanout >= 1 and shed is False
        fanout, shed = system._disseminate(sealed, 0.0)  # bucket drained
        assert fanout == 0 and shed is True
        assert system.shed_events == 1

    def test_session_shed_count_needs_no_counter_diff(self):
        system = _system(admission={"rate": 10.0, "burst": 2.0,
                                    "reserve": 0.0})
        system.subscribe("w", Filter.numeric_range("news", "price", 0, 127))
        feed = system.publisher("feed")
        for k in range(6):
            feed.publish(
                Event({"topic": "news", "price": k, "b": "x"},
                      publisher="feed"),
                at_time=0.0,
            )
        assert feed.shed == 4
        assert system.shed_events == 4
        assert system.admission.rejected == 4

    def test_prebuilt_controller_still_counts_metric(self):
        controller = AdmissionController(rate=5.0, burst=1.0, reserve=0.0)
        system = (
            System.builder()
            .topic("news", numeric={})
            .admission(controller)
            .build()
        )
        feed = system.publisher("feed")
        for _ in range(3):
            feed.publish(
                Event({"topic": "news", "b": "x"}, publisher="feed"),
                at_time=0.0,
            )
        assert system.shed_events == 2
        assert controller.rejected == 2
