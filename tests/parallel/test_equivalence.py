"""Property: parallel priming never changes what subscribers receive.

The sharded matcher only *seeds a cache of pure match verdicts*; the
serial broker walk stays the semantics-bearing code path.  These tests
pin the consequence: per-subscriber delivery streams through a
parallel-primed tree are bit-identical to a serial tree -- under random
topologies and subscription tables (hypothesis), under tokenized
matching with shared ciphertexts, under flow-control shedding, and
across broker crash/recovery.
"""

from hypothesis import given, settings, strategies as st

from repro.parallel import ParallelPolicy, ShardedMatcher
from repro.routing.tokens import (
    TokenAuthority,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.index import MatchResultCache
from repro.siena.network import BrokerTree

MASTER = bytes(range(16))
TOPICS = ("alpha", "beta", "gamma")
POLICY = ParallelPolicy(workers=2, chunk_size=3)


def _attach_all(tree, subscriptions, streams):
    leaves = tree.leaf_ids()
    attached = {}
    for subscriber, leaf_index, subscription_filter in subscriptions:
        if subscriber not in attached:
            streams[subscriber] = []
            stream = streams[subscriber]
            tree.attach_subscriber(
                subscriber, leaves[leaf_index % len(leaves)], stream.append
            )
            attached[subscriber] = set()
        if subscription_filter not in attached[subscriber]:
            attached[subscriber].add(subscription_filter)
            tree.subscribe(subscriber, subscription_filter)


def _serial_streams(num_brokers, arity, subscriptions, events, match=None):
    tree = BrokerTree(
        num_brokers=num_brokers, arity=arity,
        **({"match": match} if match is not None else {}),
    )
    streams = {}
    _attach_all(tree, subscriptions, streams)
    for event in events:
        tree.publish(event)
    return streams


def _parallel_streams(
    num_brokers, arity, subscriptions, events, batch_size,
    match=None, match_mode="plain",
):
    cache = MatchResultCache()
    tree = BrokerTree(
        num_brokers=num_brokers, arity=arity, match_cache=cache,
        **({"match": match} if match is not None else {}),
    )
    streams = {}
    with ShardedMatcher(POLICY, match=match_mode) as matcher:
        tree.bind_parallel(matcher)
        _attach_all(tree, subscriptions, streams)
        for start in range(0, len(events), batch_size):
            tree.publish(events[start: start + batch_size])
        assert matcher.serial_fallbacks == 0
    return streams


@st.composite
def scenario(draw):
    num_brokers = draw(st.integers(min_value=1, max_value=15))
    arity = draw(st.integers(min_value=1, max_value=3))
    subscriptions = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["s0", "s1", "s2", "s3"]),
                st.integers(min_value=0, max_value=7),
                st.one_of(
                    st.sampled_from(TOPICS).map(Filter.topic),
                    st.tuples(
                        st.sampled_from(TOPICS),
                        st.integers(min_value=0, max_value=40),
                        st.integers(min_value=0, max_value=40),
                    ).map(
                        lambda t: Filter.numeric_range(
                            t[0], "v", min(t[1], t[2]), max(t[1], t[2])
                        )
                    ),
                ),
            ),
            min_size=1,
            max_size=6,
        )
    )
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(TOPICS),
                st.integers(min_value=0, max_value=40),
            ).map(lambda t: Event({"topic": t[0], "v": t[1]})),
            min_size=1,
            max_size=16,
        )
    )
    batch_size = draw(st.integers(min_value=1, max_value=8))
    return num_brokers, arity, subscriptions, events, batch_size


@settings(max_examples=15, deadline=None)
@given(scenario())
def test_parallel_priming_equivalence(drawn):
    num_brokers, arity, subscriptions, events, batch_size = drawn
    serial = _serial_streams(num_brokers, arity, subscriptions, events)
    parallel = _parallel_streams(
        num_brokers, arity, subscriptions, events, batch_size
    )
    assert serial == parallel


def test_tokenized_equivalence_same_ciphertext_bits():
    """Pre-tokenized events through both paths: bit-identical streams."""
    authority = TokenAuthority(MASTER)
    subscriptions = []
    for index, topic in enumerate(TOPICS + TOPICS[:1]):
        subscriptions.append(
            (f"s{index % 3}", index,
             tokenized_subscription(authority, topic))
        )
    events = [
        tokenize_event(
            authority,
            Event({"_seq": seq}),
            {},
            TOPICS[seq % len(TOPICS)],
        )
        for seq in range(12)
    ]
    serial = _serial_streams(7, 2, subscriptions, events,
                             match=tokenized_match)
    parallel = _parallel_streams(
        7, 2, subscriptions, events, batch_size=5,
        match=tokenized_match, match_mode="tokenized",
    )
    assert serial == parallel
    assert sum(len(s) for s in serial.values()) > 0


def test_equivalence_under_flow_shedding():
    """Admission shedding filters the batch BEFORE priming: same sheds,
    same deliveries, on both paths."""

    def shed_odd(event):
        return event.get("n", 0) % 2 == 0

    events = [Event({"topic": "news", "n": n}) for n in range(10)]
    streams = []
    for parallel in (False, True):
        cache = MatchResultCache() if parallel else None
        tree = BrokerTree(num_brokers=3, match_cache=cache)
        tree.root.bind_flow(shed_odd)
        got = []
        tree.attach_subscriber("s", tree.leaf_ids()[0], got.append)
        tree.subscribe("s", Filter.topic("news"))
        if parallel:
            with ShardedMatcher(POLICY, match="plain") as matcher:
                tree.bind_parallel(matcher)
                tree.publish(events)
        else:
            for event in events:
                tree.publish(event)
        streams.append([e.get("n") for e in got])
        assert tree.root.stats.events_shed == 5
    assert streams[0] == streams[1] == [0, 2, 4, 6, 8]


def test_equivalence_across_crash_and_recovery():
    """Crash a mid-tree broker, restart with replay, then batch publish
    through the parallel path: deliveries equal the serial path's."""
    subscriptions = [
        ("s0", 0, Filter.topic("alpha")),
        ("s1", 1, Filter.topic("beta")),
        ("s2", 2, Filter.topic("alpha")),
    ]
    events = [Event({"topic": TOPICS[n % 2], "n": n}) for n in range(8)]

    def run(parallel):
        cache = MatchResultCache() if parallel else None
        tree = BrokerTree(num_brokers=7, match_cache=cache)
        streams = {}
        matcher = None
        if parallel:
            matcher = ShardedMatcher(POLICY, match="plain")
            tree.bind_parallel(matcher)
        try:
            _attach_all(tree, subscriptions, streams)
            tree.crash_broker(1)
            tree.restart_broker(1, replay=True)
            if parallel:
                tree.publish(events)
                assert matcher.serial_fallbacks == 0
            else:
                for event in events:
                    tree.publish(event)
        finally:
            if matcher is not None:
                matcher.close()
        return streams

    assert run(parallel=False) == run(parallel=True)


def test_unsubscribe_keeps_equivalence():
    """The matcher's table shrinks with unsubscription; verdicts for the
    departed filter stop being primed and deliveries still match."""
    events = [Event({"topic": t, "n": n})
              for n, t in enumerate(("alpha", "beta") * 4)]

    def run(parallel):
        cache = MatchResultCache() if parallel else None
        tree = BrokerTree(num_brokers=3, match_cache=cache)
        got = []
        tree.attach_subscriber("s", tree.leaf_ids()[0], got.append)
        tree.subscribe("s", Filter.topic("alpha"))
        tree.subscribe("s", Filter.topic("beta"))
        matcher = None
        if parallel:
            matcher = ShardedMatcher(POLICY, match="plain")
            tree.bind_parallel(matcher)
        try:
            publish = (
                (lambda batch: tree.publish(batch))
                if parallel
                else (lambda batch: [tree.publish(e) for e in batch])
            )
            publish(events[:4])
            tree.unsubscribe("s", Filter.topic("beta"))
            publish(events[4:])
            if parallel:
                assert matcher.filter_count == 1
        finally:
            if matcher is not None:
                matcher.close()
        return [e.get("n") for e in got]

    assert run(parallel=False) == run(parallel=True)
