"""Compact wire forms crossing the worker-process boundary.

The parallel layer ships events, filters, and sealed envelopes between
processes as canonical bytes rather than pickled object graphs; these
tests pin down round-trip fidelity, canonicality (equal objects encode
to equal bytes regardless of construction order), picklability of the
wire forms, and cross-process-stable shard assignment.
"""

import pickle
import zlib

import pytest

from repro.core.composite import CompositeKeySpace
from repro.core.envelope import SealedEvent, open_event, seal_event
from repro.core.nakt import NumericKeySpace
from repro.parallel import (
    decode_events,
    decode_filters,
    encode_events,
    encode_filters,
    shard_of,
)
from repro.siena.events import Event
from repro.siena.filters import Constraint, Filter
from repro.siena.operators import Op

TOPIC_KEY = bytes(range(16))


class TestEventWire:
    def test_round_trip_all_value_types(self):
        event = Event(
            {"topic": "news", "price": 42, "weight": 2.5, "blob": b"\x00\xff"},
            publisher="P",
        )
        assert Event.from_bytes(event.to_bytes()) == event

    def test_round_trip_without_publisher(self):
        event = Event({"topic": "t", "v": 1})
        decoded = Event.from_bytes(event.to_bytes())
        assert decoded == event
        assert decoded.publisher is None

    def test_bool_values_rejected(self):
        with pytest.raises(TypeError):
            Event({"topic": "t", "flag": True}).to_bytes()

    def test_batch_round_trip(self):
        events = [Event({"topic": "t", "n": n}) for n in range(5)]
        assert decode_events(encode_events(events)) == events

    def test_empty_batch(self):
        assert decode_events(encode_events([])) == []

    def test_wire_form_pickles(self):
        events = [Event({"topic": "t", "n": n}, publisher="P")
                  for n in range(3)]
        wire = encode_events(events)
        assert decode_events(pickle.loads(pickle.dumps(wire))) == events


class TestFilterWire:
    def test_round_trip(self):
        subscription = Filter.of(
            Constraint("topic", Op.EQ, "news"),
            Constraint("price", Op.LT, 100),
            Constraint("tag", Op.PREFIX, "a"),
        )
        assert Filter.from_bytes(subscription.to_bytes()) == subscription

    def test_presence_constraint_round_trips(self):
        subscription = Filter.of(Constraint("price", Op.ANY, None))
        assert Filter.from_bytes(subscription.to_bytes()) == subscription

    def test_encoding_is_canonical(self):
        # Equal filters built with constraints in different order must
        # encode identically -- shard assignment hashes these bytes.
        a = Filter.of(
            Constraint("x", Op.EQ, 1), Constraint("y", Op.EQ, 2)
        )
        b = Filter.of(
            Constraint("y", Op.EQ, 2), Constraint("x", Op.EQ, 1)
        )
        assert a == b
        assert a.to_bytes() == b.to_bytes()

    def test_table_round_trip(self):
        filters = [Filter.topic(f"t{i}") for i in range(4)]
        assert decode_filters(encode_filters(filters)) == filters

    def test_wire_form_pickles(self):
        filters = [Filter.topic("a"), Filter.topic("b")]
        wire = encode_filters(filters)
        assert decode_filters(pickle.loads(pickle.dumps(wire))) == filters


class TestSealedEventWire:
    def _sealed(self):
        schema = CompositeKeySpace({"age": NumericKeySpace("age", 128)})
        event = Event(
            {"topic": "trial", "age": 25, "record": "r-17"}, publisher="P"
        )
        return schema, seal_event(event, schema, TOPIC_KEY, {"record"})

    def test_round_trip_preserves_everything(self):
        _schema, sealed = self._sealed()
        decoded = SealedEvent.from_bytes(sealed.to_bytes())
        assert decoded == sealed

    def test_decoded_envelope_still_opens(self):
        schema, sealed = self._sealed()
        decoded = SealedEvent.from_bytes(sealed.to_bytes())
        leaf_key = schema.space_for("age").encryption_key(TOPIC_KEY, 25)[1]
        result = open_event(decoded, schema, {"age": leaf_key})
        assert result.event["record"] == "r-17"

    def test_origin_and_sequence_round_trip(self):
        schema = CompositeKeySpace({})
        sealed = seal_event(
            Event({"topic": "t", "m": "x"}), schema, TOPIC_KEY, {"m"}
        )
        stamped = SealedEvent(
            routable=sealed.routable,
            elements=sealed.elements,
            locks=sealed.locks,
            ciphertext=sealed.ciphertext,
            direct=sealed.direct,
            origin="pub-1",
            sequence=42,
        )
        decoded = SealedEvent.from_bytes(stamped.to_bytes())
        assert decoded.origin == "pub-1"
        assert decoded.sequence == 42

    def test_wire_form_pickles(self):
        _schema, sealed = self._sealed()
        wire = pickle.loads(pickle.dumps(sealed.to_bytes()))
        assert SealedEvent.from_bytes(wire) == sealed


class TestShardAssignment:
    def test_crc32_based_not_hash_based(self):
        # hash() is salted per process; crc32 over canonical bytes isn't.
        assert shard_of("group", 4) == zlib.crc32(b"group") % 4
        assert shard_of(b"group", 4) == zlib.crc32(b"group") % 4

    def test_every_shard_in_range(self):
        for i in range(64):
            assert 0 <= shard_of(f"key-{i}", 5) < 5

    def test_single_shard_degenerates(self):
        assert shard_of("anything", 1) == 0
