"""The unified ``publish`` surface across every dissemination layer.

One method, one shape -- ``publish(events, *, at_time=..., parallel=...)``
accepting a single event or a batch -- on ``Broker``, ``BrokerTree``,
``SimulatedPubSub`` (= ``TimedBrokerTree``), and the multipath router,
with ``publish_batch`` demoted to a warning deprecated alias everywhere.
"""

import pytest

from repro.net import SimulatedPubSub, TimedBrokerTree
from repro.net.sim import Simulator
from repro.routing.multipath import ProbabilisticRouter
from repro.siena.broker import Broker
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.network import BrokerTree
from repro.topology.multipath import MultipathNetwork


class TestBrokerUnifiedPublish:
    def test_single_event(self):
        broker = Broker("b")
        got = []
        broker.attach_client("s", got.append)
        broker.subscribe("s", Filter.topic("news"))
        assert broker.publish(Event({"topic": "news"})) == 1
        assert len(got) == 1

    def test_batch(self):
        broker = Broker("b")
        got = []
        broker.attach_client("s", got.append)
        broker.subscribe("s", Filter.topic("news"))
        events = [Event({"topic": "news", "n": n}) for n in range(3)]
        # Batch return counts outgoing interfaces, not deliveries.
        assert broker.publish(events) == 1
        assert broker.stats.deliveries == 3
        assert [e.get("n") for e in got] == [0, 1, 2]

    def test_publish_batch_is_deprecated_alias(self):
        broker = Broker("b")
        got = []
        broker.attach_client("s", got.append)
        broker.subscribe("s", Filter.topic("news"))
        with pytest.deprecated_call():
            broker.publish_batch([Event({"topic": "news"})])
        assert len(got) == 1


class TestBrokerTreeUnifiedPublish:
    def _tree(self):
        tree = BrokerTree(num_brokers=3)
        got = []
        tree.attach_subscriber("s", tree.leaf_ids()[0], got.append)
        tree.subscribe("s", Filter.topic("news"))
        return tree, got

    def test_single_and_batch_same_surface(self):
        tree, got = self._tree()
        tree.publish(Event({"topic": "news", "n": 0}))
        tree.publish([Event({"topic": "news", "n": n}) for n in (1, 2)])
        assert [e.get("n") for e in got] == [0, 1, 2]

    def test_at_time_accepted(self):
        tree, got = self._tree()
        tree.publish(Event({"topic": "news"}), at_time=5.0)
        assert len(got) == 1

    def test_publish_batch_is_deprecated_alias(self):
        tree, got = self._tree()
        with pytest.deprecated_call():
            tree.publish_batch([Event({"topic": "news"})])
        assert len(got) == 1


class TestTimedOverlayUnifiedPublish:
    def test_timed_broker_tree_is_the_simulated_pubsub(self):
        assert TimedBrokerTree is SimulatedPubSub

    def _net(self):
        sim = Simulator()
        net = SimulatedPubSub(sim, num_brokers=3)
        net.attach_subscriber("s", net.leaf_ids()[0])
        net.subscribe("s", Filter.topic("news"))
        return sim, net

    def test_single_event_returns_seq(self):
        sim, net = self._net()
        seq = net.publish(Event({"topic": "news"}))
        assert isinstance(seq, int)
        sim.run(until=1.0)
        assert len(net.deliveries) == 1

    def test_batch_returns_seq_list(self):
        sim, net = self._net()
        seqs = net.publish([Event({"topic": "news", "n": n})
                            for n in range(3)])
        assert isinstance(seqs, list) and len(seqs) == 3
        sim.run(until=1.0)
        assert len(net.deliveries) == 3

    def test_at_time_schedules_absolute(self):
        sim, net = self._net()
        net.publish(Event({"topic": "news"}), at_time=1.5)
        sim.run(until=3.0)
        assert len(net.deliveries) == 1
        assert net.deliveries[0].published_at >= 1.5

    def test_delay_and_at_time_conflict(self):
        _sim, net = self._net()
        with pytest.raises(ValueError):
            net.publish(Event({"topic": "news"}), delay=1.0, at_time=2.0)

    def test_parallel_accepted_and_ignored(self):
        sim, net = self._net()
        net.publish([Event({"topic": "news"})], parallel=object())
        sim.run(until=1.0)
        assert len(net.deliveries) == 1

    def test_publish_batch_is_deprecated_alias(self):
        sim, net = self._net()
        with pytest.deprecated_call():
            net.publish_batch([Event({"topic": "news"})])
        sim.run(until=1.0)
        assert len(net.deliveries) == 1


class TestMultipathUnifiedPublish:
    def _router(self):
        network = MultipathNetwork(depth=3, arity=2, ind=2)
        return network, ProbabilisticRouter(network, {"t": 2.0}, seed=3)

    def test_single_event_routes_one_path(self):
        network, router = self._router()
        path = router.publish(
            Event({"topic": "t"}), "t", network.subscribers()[0]
        )
        assert path
        assert router.registry.get("multipath_routes_total").value == 1

    def test_batch_routes_once_counts_all(self):
        network, router = self._router()
        events = [Event({"topic": "t", "n": n}) for n in range(4)]
        path = router.publish(events, "t", network.subscribers()[0])
        assert path
        assert router.registry.get("multipath_routes_total").value == 4
        assert router.registry.get("multipath_batch_routes_total").value == 1

    def test_at_time_and_parallel_ignored(self):
        network, router = self._router()
        path = router.publish(
            Event({"topic": "t"}), "t", network.subscribers()[0],
            at_time=9.0, parallel=object(),
        )
        assert path


class TestEngineTransportDispatch:
    def test_engine_prefers_unified_publish(self):
        calls = []

        class ModernTransport:
            def publish(self, events, parallel=None):
                calls.append(("publish", list(events), parallel))

            def publish_batch(self, events):  # pragma: no cover
                calls.append(("publish_batch", list(events), None))

        from repro.engine import DisseminationEngine, EngineConfig

        sentinel = object()
        engine = DisseminationEngine(
            ModernTransport(), EngineConfig(batch_size=2), parallel=sentinel
        )
        engine.publish(Event({"topic": "t", "n": 1}))
        engine.publish(Event({"topic": "t", "n": 2}))
        assert len(calls) == 1
        kind, events, parallel = calls[0]
        assert kind == "publish" and len(events) == 2
        assert parallel is sentinel

    def test_engine_falls_back_to_legacy_publish_batch(self):
        calls = []

        class LegacyTransport:
            def publish_batch(self, events):
                calls.append(list(events))

        from repro.engine import DisseminationEngine, EngineConfig

        engine = DisseminationEngine(LegacyTransport(),
                                     EngineConfig(batch_size=2))
        engine.publish(Event({"topic": "t", "n": 1}))
        engine.publish(Event({"topic": "t", "n": 2}))
        assert len(calls) == 1 and len(calls[0]) == 2
