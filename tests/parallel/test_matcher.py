"""ShardedMatcher: priming, fallbacks, and pool lifecycle."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.parallel import ParallelPolicy, ShardedMatcher
from repro.routing.tokens import (
    TokenAuthority,
    tokenize_event,
    tokenized_match,
    tokenized_subscription,
)
from repro.siena.events import Event
from repro.siena.filters import Filter
from repro.siena.index import MatchResultCache
from repro.siena.network import BrokerTree

MASTER = bytes(range(16))


def _plain_matcher(workers=2, **kwargs):
    return ShardedMatcher(
        ParallelPolicy(workers=workers, chunk_size=4), match="plain", **kwargs
    )


def _fallback_count(matcher, reason):
    counter = matcher.registry.get(
        "parallel_serial_fallbacks_total", reason=reason
    )
    return counter.value if counter is not None else 0


class TestFallbacks:
    def test_serial_policy_never_spawns_a_pool(self):
        matcher = _plain_matcher(workers=1)
        matcher.register_filter(Filter.topic("a"))
        cache = MatchResultCache()
        assert matcher.prime([Event({"topic": "a"})], cache) == 0
        assert matcher.serial_fallbacks == 1
        assert _fallback_count(matcher, "serial_policy") == 1
        assert not matcher.stats()["pool_live"]

    def test_no_cache_falls_back(self):
        with _plain_matcher() as matcher:
            matcher.register_filter(Filter.topic("a"))
            assert matcher.prime([Event({"topic": "a"})]) == 0
            assert _fallback_count(matcher, "no_cache") == 1

    def test_unwireable_events_fall_back(self):
        with _plain_matcher() as matcher:
            matcher.register_filter(Filter.topic("a"))
            cache = MatchResultCache()
            bad = [Event({"topic": "a", "flag": True})]  # bool: no wire tag
            assert matcher.prime(bad, cache) == 0
            assert _fallback_count(matcher, "unwireable_events") == 1

    def test_closed_matcher_falls_back(self):
        matcher = _plain_matcher()
        matcher.register_filter(Filter.topic("a"))
        matcher.close()
        cache = MatchResultCache()
        assert matcher.prime([Event({"topic": "a"})], cache) == 0
        assert _fallback_count(matcher, "closed") == 1

    def test_empty_batch_and_empty_table_are_silent_noops(self):
        with _plain_matcher() as matcher:
            cache = MatchResultCache()
            assert matcher.prime([], cache) == 0
            assert matcher.prime([Event({"topic": "a"})], cache) == 0
            assert matcher.serial_fallbacks == 0


class TestPriming:
    def test_primed_verdicts_match_direct_evaluation(self):
        with _plain_matcher() as matcher:
            filters = [Filter.topic(t) for t in ("a", "b", "c")]
            for subscription_filter in filters:
                matcher.register_filter(subscription_filter)
            cache = MatchResultCache()
            events = [Event({"topic": t, "n": n})
                      for n, t in enumerate(("a", "b", "a", "d"))]
            primed = matcher.prime(events, cache)
            assert primed == len(filters) * len(events)
            for event in events:
                for subscription_filter in filters:
                    assert cache.lookup(subscription_filter, event) == (
                        subscription_filter.matches(event)
                    )

    def test_attached_cache_is_default_sink(self):
        with _plain_matcher() as matcher:
            matcher.register_filter(Filter.topic("a"))
            cache = MatchResultCache()
            matcher.attach_cache(cache)
            assert matcher.prime([Event({"topic": "a"})]) > 0
            assert cache.lookup(Filter.topic("a"), Event({"topic": "a"}))

    def test_tokenized_priming_seeds_topic_group_memo(self):
        authority = TokenAuthority(MASTER)
        subscription = tokenized_subscription(authority, "news")
        [token_constraint] = subscription.constraints
        group = token_constraint.value
        with ShardedMatcher(
            ParallelPolicy(workers=2, chunk_size=4), match="tokenized"
        ) as matcher:
            matcher.register_filter(subscription)
            cache = MatchResultCache()
            event = tokenize_event(authority, Event({}), {}, "news")
            assert matcher.prime([event], cache) > 0
            from repro.routing.tokens import TOPIC_TOKEN_ATTRIBUTE

            assert cache.topic_group(event.get(TOPIC_TOKEN_ATTRIBUTE)) == group
            assert cache.lookup(subscription, event) is True

    def test_task_and_busy_accounting(self):
        with _plain_matcher() as matcher:
            matcher.register_filter(Filter.topic("a"))
            cache = MatchResultCache()
            matcher.prime(
                [Event({"topic": "a", "n": n}) for n in range(10)], cache
            )
            # 10 events / chunk 4 = 3 chunks x 2 shards = 6 tasks.
            assert matcher.tasks == 6
            assert matcher.busy_seconds >= 0.0
            stats = matcher.stats()
            assert stats["tasks"] == 6
            assert stats["pool_live"]


class TestPoolLifecycle:
    def test_filter_change_rebuilds_pool(self):
        with _plain_matcher() as matcher:
            matcher.register_filter(Filter.topic("a"))
            cache = MatchResultCache()
            matcher.prime([Event({"topic": "a"})], cache)
            assert matcher.rebuilds == 0
            matcher.register_filter(Filter.topic("b"))
            matcher.prime([Event({"topic": "b"})], cache)
            assert matcher.rebuilds == 1
            assert cache.lookup(Filter.topic("b"), Event({"topic": "b"}))

    def test_refcounted_unregister(self):
        matcher = _plain_matcher()
        subscription = Filter.topic("a")
        matcher.register_filter(subscription)
        matcher.register_filter(subscription)
        matcher.unregister_filter(subscription)
        assert matcher.filter_count == 1
        matcher.unregister_filter(subscription)
        assert matcher.filter_count == 0
        matcher.unregister_filter(subscription)  # over-unregister: no-op
        assert matcher.filter_count == 0

    def test_invalid_match_mode_rejected(self):
        with pytest.raises(ValueError):
            ShardedMatcher(ParallelPolicy(workers=2), match="wrong")


class TestTreeBinding:
    def test_bind_parallel_registers_existing_and_future_filters(self):
        registry = MetricsRegistry()
        cache = MatchResultCache(registry=registry)
        tree = BrokerTree(
            num_brokers=3, registry=registry, match_cache=cache
        )
        tree.attach_subscriber("s", tree.leaf_ids()[0], lambda _e: None)
        tree.subscribe("s", Filter.topic("pre"))
        with _plain_matcher(registry=registry) as matcher:
            tree.bind_parallel(matcher)
            assert matcher.filter_count == 1
            tree.subscribe("s", Filter.topic("post"))
            assert matcher.filter_count == 2
            tree.unsubscribe("s", Filter.topic("pre"))
            assert matcher.filter_count == 1

    def test_batch_publish_primes_through_bound_matcher(self):
        registry = MetricsRegistry()
        cache = MatchResultCache(registry=registry)
        tree = BrokerTree(
            num_brokers=3, registry=registry, match_cache=cache
        )
        got = []
        tree.attach_subscriber("s", tree.leaf_ids()[0], got.append)
        tree.subscribe("s", Filter.topic("news"))
        with _plain_matcher(registry=registry) as matcher:
            tree.bind_parallel(matcher)
            events = [Event({"topic": "news", "n": n}) for n in range(6)]
            tree.publish(events)
            assert [e.get("n") for e in got] == list(range(6))
            assert matcher.primed_verdicts > 0
