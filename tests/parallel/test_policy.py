"""ParallelPolicy validation and the serial/parallel boundary."""

import pytest

from repro.parallel import ParallelPolicy


def test_defaults_are_serial():
    policy = ParallelPolicy()
    assert policy.workers == 0
    assert policy.chunk_size == 64
    assert not policy.parallel


@pytest.mark.parametrize("workers", [0, 1])
def test_one_or_zero_workers_stays_serial(workers):
    assert not ParallelPolicy(workers=workers).parallel


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_two_plus_workers_arms_the_pool(workers):
    assert ParallelPolicy(workers=workers).parallel


def test_negative_workers_rejected():
    with pytest.raises(ValueError):
        ParallelPolicy(workers=-1)


def test_zero_chunk_size_rejected():
    with pytest.raises(ValueError):
        ParallelPolicy(workers=2, chunk_size=0)


def test_policy_is_frozen_and_hashable():
    policy = ParallelPolicy(workers=4, chunk_size=16)
    with pytest.raises(Exception):
        policy.workers = 8
    assert hash(policy) == hash(ParallelPolicy(workers=4, chunk_size=16))


def test_reexported_from_top_level():
    import repro

    assert repro.ParallelPolicy is ParallelPolicy
    assert "ParallelPolicy" in repro.__all__
