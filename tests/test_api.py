"""The ``repro.api`` facade: one-call wiring of the whole stack."""

import pytest

from repro.api import System, SystemBuilder, connect
from repro.core.kdc import KDC
from repro.obs import Observability
from repro.siena.events import Event
from repro.siena.filters import Filter


@pytest.fixture
def medical_system():
    return connect("cancerTrail", numeric={"age": 128})


def test_quickstart_flow(medical_system):
    system = medical_system
    doctor = system.subscribe(
        "doctor", Filter.numeric_range("cancerTrail", "age", 21, 127)
    )
    outsider = system.subscribe(
        "outsider", Filter.numeric_range("cancerTrail", "age", 31, 127)
    )
    sealed = system.publisher("hospital").publish(
        Event(
            {"topic": "cancerTrail", "age": 25, "patientRecord": "rec-17"},
            publisher="hospital",
        ),
        secret_attributes={"patientRecord"},
    )
    assert "patientRecord" not in dict(sealed.routable.attributes)
    assert len(doctor.opened) == 1
    assert doctor.opened[0].event["patientRecord"] == "rec-17"
    # The outsider's subscription does not match, so nothing arrives.
    assert outsider.opened == []
    assert outsider.unreadable == 0


def test_unauthorized_range_is_unreadable(medical_system):
    system = medical_system
    # Authorized for 31+, but subscribed broadly: events in [21, 30]
    # arrive yet cannot be decrypted.
    nosy = system.subscribe(
        "nosy", Filter.numeric_range("cancerTrail", "age", 31, 127)
    )
    system.tree.subscribe("nosy", Filter.topic("cancerTrail"))
    system.publisher("hospital").publish(
        Event(
            {"topic": "cancerTrail", "age": 25, "secret": "s"},
            publisher="hospital",
        ),
        secret_attributes={"secret"},
    )
    assert nosy.opened == []
    assert nosy.unreadable == 1


def test_publisher_sessions_are_cached(medical_system):
    assert medical_system.publisher("p") is medical_system.publisher("p")


def test_duplicate_subscriber_rejected(medical_system):
    medical_system.subscribe("s", Filter.topic("cancerTrail"))
    with pytest.raises(ValueError, match="already attached"):
        medical_system.subscribe("s", Filter.topic("cancerTrail"))


def test_builder_wires_custom_pieces():
    obs = Observability()
    kdc = KDC(master_key=bytes(16))
    system = (
        System.builder()
        .brokers(7, arity=2)
        .kdc(kdc)
        .observability(obs)
        .topic("t", numeric={"v": 16})
        .build()
    )
    assert system.kdc is kdc
    assert system.obs is obs
    assert system.tree.registry is obs.registry
    assert len(system.tree.leaf_ids()) == 4


def test_subscribers_spread_across_leaves():
    system = connect("t", numeric={"v": 8}, brokers=7)
    for index in range(4):
        system.subscribe(f"s{index}", Filter.topic("t"))
    homes = {session.home for session in system.subscribers.values()}
    assert homes == set(system.tree.leaf_ids())


def test_facade_traces_and_metrics():
    system = connect("t", numeric={"v": 8})
    system.subscribe("s", Filter.numeric_range("t", "v", 0, 7))
    system.publisher("p").publish(
        Event({"topic": "t", "v": 3, "body": "x"}, publisher="p"),
        secret_attributes={"body"},
    )
    summary = system.tracer.summary()
    assert summary["traces_started"] == 1
    assert summary["traces_delivered"] == 1
    assert summary["dropped_spans"] == 0
    assert system.registry.total("broker_deliveries_total") == 1
    assert "broker_deliveries_total" in system.to_prometheus()
    assert system.snapshot()["tracing"]["traces_started"] == 1


def test_package_reexports_blessed_surface():
    import repro

    assert set(repro.__all__) >= {
        "System", "SystemBuilder", "connect", "Event", "Filter",
        "KDC", "Publisher", "Subscriber", "Observability",
        "MetricsRegistry", "Tracer",
    }
    for name in repro.__all__:
        assert getattr(repro, name) is not None
