"""The parallel bench suite: report shape, equivalence, regression gate."""

import copy

import pytest

from repro.bench import (
    BENCH_PARALLEL_SCHEMA,
    ParallelBenchConfig,
    check_parallel_regression,
    render_parallel_report,
    run_parallel_bench,
)

SMALL = ParallelBenchConfig(
    events=60, num_brokers=7, num_subscribers=8,
    topics_per_subscriber=4, batch_size=16, chunk_size=16,
    worker_ladder=(1, 2),
)


@pytest.fixture(scope="module")
def report():
    return run_parallel_bench(SMALL)


def test_report_shape(report):
    assert report["schema"] == BENCH_PARALLEL_SCHEMA
    assert len(report["ladder"]) == 2
    for rung in report["ladder"]:
        assert {"workers", "events_per_sec", "speedup", "equivalent",
                "parallel", "crypto_pool"} <= set(rung)
    assert report["serial"]["events_per_sec"] > 0
    assert report["headline"]["workers"] == 2  # no w=4 rung: last wins


def test_every_rung_is_equivalent(report):
    assert report["equivalence"]["holds"]
    assert all(rung["equivalent"] for rung in report["ladder"])
    assert report["equivalence"]["deliveries"] > 0


def test_one_worker_rung_runs_serial_fallback(report):
    rung = report["ladder"][0]
    assert rung["workers"] == 1
    assert rung["parallel"]["primed_verdicts"] == 0
    assert rung["parallel"]["serial_fallbacks"] > 0


def test_multi_worker_rung_primes(report):
    rung = report["ladder"][1]
    assert rung["workers"] == 2
    assert rung["parallel"]["primed_verdicts"] > 0
    assert rung["parallel"]["serial_fallbacks"] == 0
    assert rung["crypto_pool"]["offloaded"] > 0


def test_self_check_passes(report):
    assert check_parallel_regression(report, report) == []


def test_speedup_regression_detected(report):
    inflated = copy.deepcopy(report)
    for rung in inflated["ladder"]:
        rung["speedup"] *= 10
    problems = check_parallel_regression(report, inflated)
    assert problems
    assert any("speedup regression" in p for p in problems)


def test_throughput_collapse_detected(report):
    inflated = copy.deepcopy(report)
    inflated["headline"]["events_per_sec"] *= 1000
    problems = check_parallel_regression(report, inflated)
    assert any("throughput regression" in p for p in problems)


def test_schema_mismatch_detected(report):
    other = copy.deepcopy(report)
    other["schema"] = "repro.bench/parallel.v999"
    problems = check_parallel_regression(report, other)
    assert problems and "schema mismatch" in problems[0]


def test_render_mentions_every_rung(report):
    rendered = render_parallel_report(report)
    assert "serial" in rendered
    assert "w=1" in rendered and "w=2" in rendered
    assert "equivalence: ok" in rendered


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        ParallelBenchConfig(worker_ladder=())
    with pytest.raises(ValueError):
        ParallelBenchConfig(worker_ladder=(0,))
    with pytest.raises(ValueError):
        ParallelBenchConfig(chunk_size=0)
