"""The sustained-overload bench suite and its regression gate."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_OVERLOAD_SCHEMA,
    OverloadBenchConfig,
    check_overload_regression,
    render_overload_report,
    run_overload_bench,
    write_overload_report,
)

_CONFIG = OverloadBenchConfig(seed=7, factors=(0.8, 3.0), duration=0.3)


@pytest.fixture(scope="module")
def report():
    return run_overload_bench(_CONFIG)


def test_report_shape_and_schema(report):
    assert report["schema"] == BENCH_OVERLOAD_SCHEMA
    assert [rung["factor"] for rung in report["sweep"]] == [0.8, 3.0]
    assert report["config"]["seed"] == 7
    assert set(report["headline"]) == {
        "factor", "high_delivery", "best_effort_delivery",
        "shed_fairness", "shed_events",
    }


def test_sustainable_rung_sheds_nothing(report):
    calm = report["sweep"][0]
    assert calm["shed_events"] == 0
    assert calm["high_delivery"] == 1.0
    assert calm["best_effort_delivery"] == 1.0
    assert calm["shed_fairness"] == 1.0  # vacuously fair


def test_overloaded_rung_protects_high_priority(report):
    storm = report["sweep"][1]
    assert storm["shed_events"] > 0
    assert storm["high_delivery"] >= 0.99
    assert storm["best_effort_delivery"] < 0.7
    # Every shed landed on the best-effort class.
    assert storm["shed_fairness"] == 1.0
    assert storm["shed_by_priority"] == {
        "best-effort": storm["shed_events"]
    }
    assert storm["peak_ingress_depth"] <= _CONFIG.queue_capacity


def test_headline_picks_the_worst_overloaded_rung(report):
    assert report["headline"]["factor"] == 3.0
    assert report["headline"]["shed_events"] > 0


def test_runs_are_deterministic(report):
    assert run_overload_bench(_CONFIG) == report


def test_check_passes_against_itself(report):
    assert check_overload_regression(report, report) == []


def test_check_flags_high_priority_regression(report):
    regressed = copy.deepcopy(report)
    regressed["sweep"][1]["high_delivery"] -= 0.2
    problems = check_overload_regression(regressed, report, 0.05)
    assert any("high-priority" in p for p in problems)


def test_check_flags_unfair_shedding(report):
    regressed = copy.deepcopy(report)
    regressed["sweep"][1]["shed_fairness"] = 0.5
    problems = check_overload_regression(regressed, report, 0.05)
    assert any("fairness" in p for p in problems)


def test_check_flags_queue_bound_violation(report):
    broken = copy.deepcopy(report)
    broken["sweep"][1]["peak_ingress_depth"] = (
        _CONFIG.queue_capacity + 1
    )
    problems = check_overload_regression(broken, report, 0.05)
    assert any("bound" in p for p in problems)


def test_check_rejects_mismatched_ladder(report):
    other = run_overload_bench(
        OverloadBenchConfig(seed=7, factors=(2.0,), duration=0.3)
    )
    problems = check_overload_regression(report, other)
    assert any("ladder" in p for p in problems)


def test_check_rejects_foreign_schema(report):
    problems = check_overload_regression(report, {"schema": "other"})
    assert any("schema" in p for p in problems)
    with pytest.raises(ValueError):
        check_overload_regression(report, report, tolerance=1.5)


def test_report_renders_and_round_trips(report, tmp_path):
    text = render_overload_report(report)
    assert "sustained overload sweep" in text
    assert "headline" in text
    target = tmp_path / "BENCH_overload.json"
    write_overload_report(report, str(target))
    assert json.loads(target.read_text()) == report


def test_config_validation():
    with pytest.raises(ValueError):
        OverloadBenchConfig(factors=())
    with pytest.raises(ValueError):
        OverloadBenchConfig(factors=(0.5, -1.0))
    with pytest.raises(ValueError):
        # 12x storm puts the high slice alone over capacity.
        OverloadBenchConfig(factors=(12.0,))
    with pytest.raises(ValueError):
        OverloadBenchConfig(duration=0.0)


def test_committed_baseline_matches_default_config():
    """The repo baseline must gate a fresh default run cleanly."""
    with open("benchmarks/baselines/BENCH_overload.json",
              encoding="utf-8") as handle:
        baseline = json.load(handle)
    fresh = run_overload_bench(OverloadBenchConfig(seed=7))
    assert check_overload_regression(fresh, baseline, 0.05) == []
