"""The rekey churn-ladder bench: report shape and regression gating."""

import copy

import pytest

from repro.bench import (
    BENCH_REKEY_SCHEMA,
    RekeyBenchConfig,
    check_rekey_regression,
    render_rekey_report,
    run_rekey_bench,
)

#: One-rung ladder small enough for CI; still crosses three rollovers
#: with the full join/leave/revoke choreography.
_TINY = RekeyBenchConfig(seed=11, rungs=(1,), events_per_epoch=4)


@pytest.fixture(scope="module")
def report():
    return run_rekey_bench(_TINY)


def test_config_validation():
    with pytest.raises(ValueError, match="at least one rung"):
        RekeyBenchConfig(rungs=())
    with pytest.raises(ValueError, match="at least one survivor"):
        RekeyBenchConfig(rungs=(1, 0))
    with pytest.raises(ValueError, match=">= 3 rollovers"):
        RekeyBenchConfig(rollovers=2)


def test_report_shape_and_gates(report):
    assert report["schema"] == BENCH_REKEY_SCHEMA
    assert list(report["config"]["rungs"]) == [1]
    assert len(report["rungs"]) == 1
    rung = report["rungs"][0]
    assert rung["survivors"] == 1
    assert rung["subscribers"] == 4  # + victim, joiner, leaver
    assert rung["rollovers"] == 3
    assert rung["gates"] == []
    assert rung["unauthorized_opens"] == 0
    assert rung["unacked_publications"] == 0
    assert rung["survivor_delivery_ratio"] == 1.0
    assert rung["grants_issued"] > 0
    for plane in ("rekey_latency_s", "grant_latency_s"):
        quantiles = rung[plane]["quantiles"]
        assert set(quantiles) >= {"p50", "p95", "p99"}
    totals = report["totals"]
    assert totals["rollovers"] == 3
    assert totals["unauthorized_opens"] == 0
    assert totals["min_survivor_delivery_ratio"] == 1.0


def test_render_mentions_the_ladder(report):
    rendered = render_rekey_report(report)
    assert "membership-churn ladder" in rendered
    assert "rekey p95" in rendered
    assert "ok" in rendered
    assert "totals:" in rendered


def test_self_check_passes(report):
    assert check_rekey_regression(report, report, tolerance=0.25) == []


def test_regression_check_catches_a_latency_collapse(report):
    slow = copy.deepcopy(report)
    slow["rungs"][0]["rekey_latency_s"]["quantiles"]["p95"] = (
        report["rungs"][0]["rekey_latency_s"]["quantiles"]["p95"] * 100
    )
    problems = check_rekey_regression(slow, report, tolerance=0.1)
    assert any("rekey_latency_s p95 regression" in p for p in problems)


def test_regression_check_catches_structural_failures(report):
    broken = copy.deepcopy(report)
    rung = broken["rungs"][0]
    rung["gates"] = ["victim renewed after revocation"]
    rung["unauthorized_opens"] = 2
    rung["survivor_delivery_ratio"] = 0.5
    rung["unacked_publications"] = 1
    del rung["grant_latency_s"]["quantiles"]["p99"]
    problems = check_rekey_regression(broken, report)
    assert any("victim renewed" in p for p in problems)
    assert any("unauthorized post-revocation opens" in p for p in problems)
    assert any("survivor delivery" in p for p in problems)
    assert any("never acked" in p for p in problems)
    assert any("missing grant_latency_s quantile p99" in p for p in problems)


def test_regression_check_rejects_shape_and_schema_drift(report):
    foreign = {"schema": "repro.bench/engine.v1"}
    assert check_rekey_regression(report, foreign) == [
        "schema mismatch: report 'repro.bench/rekey.v1' "
        "vs baseline 'repro.bench/engine.v1'"
    ]
    reshaped = copy.deepcopy(report)
    reshaped["rungs"] = reshaped["rungs"] * 2
    problems = check_rekey_regression(reshaped, report)
    assert any("ladder shape changed" in p for p in problems)


def test_regression_check_rejects_bad_tolerance(report):
    with pytest.raises(ValueError, match="tolerance"):
        check_rekey_regression(report, report, tolerance=1.5)
