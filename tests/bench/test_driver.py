"""The bench driver: report shape, equivalence, regression gating."""

import copy

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchConfig,
    check_regression,
    load_report,
    render_report,
    run_bench,
    write_report,
)

#: Small enough for CI, large enough that every cache sees traffic.
TINY = BenchConfig(
    seed=11,
    events=40,
    num_brokers=7,
    num_subscribers=4,
    num_topics=8,
    topics_per_subscriber=3,
    batch_size=8,
    batch_sweep=(1, 8),
)


@pytest.fixture(scope="module")
def report():
    return run_bench(TINY)


def test_report_schema_and_config(report):
    assert report["schema"] == BENCH_SCHEMA
    assert report["config"]["seed"] == 11
    assert report["config"]["events"] == 40


def test_equivalence_holds_on_reference_workload(report):
    equivalence = report["equivalence"]
    assert equivalence["checked"] is True
    assert equivalence["holds"] is True
    assert equivalence["subscribers"] == 4
    assert equivalence["deliveries"] > 0


def test_both_paths_report_throughput_and_latency(report):
    for path in ("baseline", "engine"):
        section = report[path]
        assert section["events"] == 40
        assert section["events_per_sec"] > 0
        assert section["deliveries"] == report["baseline"]["deliveries"]
        quantiles = section["latency_s"]["quantiles"]
        assert set(quantiles) >= {"p50", "p95", "p99"}
    assert report["engine"]["batch_size"] == 8
    assert report["engine"]["speedup"] > 0


def test_engine_reports_cache_hit_rates(report):
    caches = report["engine"]["caches"]
    for name in ("token_prf", "match_results", "token_authority",
                 "publisher_key_cache", "subscriber_key_caches"):
        assert "hit_rate" in caches[name], name


def test_sweep_covers_requested_batch_sizes(report):
    sweep = report["batch_sweep"]
    assert [entry["batch_size"] for entry in sweep] == [1, 8]
    for entry in sweep:
        assert entry["equivalent"] is True
        assert entry["events_per_sec"] > 0


def test_render_report_mentions_key_numbers(report):
    text = render_report(report)
    assert "baseline" in text
    assert "engine" in text
    assert "equivalence: ok" in text
    assert "b8=" in text


def test_write_and_load_round_trip(report, tmp_path):
    import json

    path = tmp_path / "BENCH_engine.json"
    write_report(report, str(path))
    # JSON renders tuples (e.g. config.batch_sweep) as lists, so compare
    # against the JSON image of the in-memory report.
    assert load_report(str(path)) == json.loads(json.dumps(report))


def test_config_validation():
    with pytest.raises(ValueError):
        BenchConfig(events=0)
    with pytest.raises(ValueError):
        BenchConfig(batch_size=0)


# -- regression gating ---------------------------------------------------------


def test_check_regression_accepts_self(report):
    assert check_regression(report, report) == []


def test_check_regression_tolerance_validation(report):
    for bad in (-0.1, 1.0):
        with pytest.raises(ValueError):
            check_regression(report, report, tolerance=bad)


def test_check_regression_flags_schema_mismatch(report):
    stale = copy.deepcopy(report)
    stale["schema"] = "repro.bench/engine.v0"
    problems = check_regression(report, stale)
    assert len(problems) == 1 and "schema mismatch" in problems[0]


def test_check_regression_flags_broken_equivalence(report):
    broken = copy.deepcopy(report)
    broken["equivalence"]["holds"] = False
    problems = check_regression(broken, report)
    assert any("diverge" in problem for problem in problems)


def test_check_regression_flags_speedup_regression(report):
    slow = copy.deepcopy(report)
    slow["engine"]["speedup"] = report["engine"]["speedup"] * 0.5
    problems = check_regression(slow, report, tolerance=0.25)
    assert any("speedup regression" in problem for problem in problems)
    # Within the tolerance band the same drop passes.
    assert check_regression(slow, report, tolerance=0.6) == []


def test_check_regression_flags_throughput_regression(report):
    slow = copy.deepcopy(report)
    # The absolute floor carries a 2x hardware-variance allowance on top
    # of the tolerance, so a halved throughput passes (different runner)
    # while a pipeline-wide collapse does not.
    slow["engine"]["events_per_sec"] = (
        report["engine"]["events_per_sec"] * 0.5
    )
    slow["engine"]["speedup"] = report["engine"]["speedup"]
    assert check_regression(slow, report, tolerance=0.25) == []
    slow["engine"]["events_per_sec"] = (
        report["engine"]["events_per_sec"] * 0.1
    )
    problems = check_regression(slow, report, tolerance=0.25)
    assert any("throughput regression" in problem for problem in problems)


def test_check_regression_flags_missing_metrics(report):
    gutted = copy.deepcopy(report)
    del gutted["engine"]["latency_s"]["quantiles"]["p99"]
    del gutted["engine"]["caches"]["token_prf"]
    problems = check_regression(gutted, report)
    assert any("p99" in problem for problem in problems)
    assert any("token_prf" in problem for problem in problems)


def test_deterministic_workload_across_runs():
    """Same seed, same interest sets and event draws: the equivalence
    machinery relies on the fixture being replayable."""
    first = run_bench(TINY)
    assert first["equivalence"]["deliveries"] == (
        run_bench(TINY)["equivalence"]["deliveries"]
    )
