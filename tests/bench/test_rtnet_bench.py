"""The socket-path benchmark: equivalence gate, report, regression check."""

import copy

import pytest

from repro.bench import (
    BENCH_RTNET_SCHEMA,
    RtnetBenchConfig,
    check_rtnet_regression,
    render_rtnet_report,
    run_rtnet_bench,
)

_SMALL = RtnetBenchConfig(
    seed=11, events=20, num_brokers=3, arity=2,
    num_subscribers=3, num_topics=8, topics_per_subscriber=2,
)


@pytest.fixture(scope="module")
def report():
    return run_rtnet_bench(_SMALL)


def test_config_validation():
    with pytest.raises(ValueError, match="at least one event"):
        RtnetBenchConfig(events=0)
    with pytest.raises(ValueError, match="at least one broker"):
        RtnetBenchConfig(num_brokers=0)


def test_report_shape_and_gates(report):
    assert report["schema"] == BENCH_RTNET_SCHEMA
    assert report["config"]["events"] == 20
    assert report["equivalence"]["checked"] is True
    assert report["equivalence"]["holds"] is True
    assert report["security"]["unauthorized_opens"] == 0
    live = report["live"]
    assert live["publisher_unacked"] == 0
    assert live["duplicates"] == 0
    assert live["events_per_sec"] > 0
    assert live["deliveries"] == live["opened"] + live["unreadable"]
    # Token covers filter in-network: the live path delivered exactly
    # what the in-process reference delivered.
    assert live["deliveries"] == report["reference"]["deliveries"]
    assert live["opened"] == report["reference"]["opened"]
    for quantile in ("p50", "p95", "p99"):
        assert quantile in live["latency_s"]["quantiles"]


def test_render_mentions_the_verdict(report):
    rendered = render_rtnet_report(report)
    assert "equivalence: ok" in rendered
    assert "unauthorized opens: 0" in rendered
    assert "ev/s" in rendered


def test_self_check_passes(report):
    assert check_rtnet_regression(report, report, tolerance=0.25) == []


def test_regression_check_catches_a_throughput_collapse(report):
    slow = copy.deepcopy(report)
    slow["live"]["events_per_sec"] = (
        report["live"]["events_per_sec"] / 100
    )
    problems = check_rtnet_regression(slow, report, tolerance=0.1)
    assert any("throughput regression" in problem for problem in problems)


def test_regression_check_catches_structural_failures(report):
    broken = copy.deepcopy(report)
    broken["equivalence"]["holds"] = False
    broken["security"]["unauthorized_opens"] = 2
    broken["live"]["publisher_unacked"] = 1
    del broken["live"]["latency_s"]["quantiles"]["p99"]
    problems = check_rtnet_regression(broken, report)
    assert any("diverge" in problem for problem in problems)
    assert any("unauthorized" in problem for problem in problems)
    assert any("never acked" in problem for problem in problems)
    assert any("p99" in problem for problem in problems)


def test_regression_check_rejects_schema_mismatch(report):
    foreign = {"schema": "repro.bench/engine.v1"}
    problems = check_rtnet_regression(report, foreign)
    assert problems == [
        "schema mismatch: report 'repro.bench/rtnet.v1' "
        "vs baseline 'repro.bench/engine.v1'"
    ]


def test_regression_check_rejects_bad_tolerance(report):
    with pytest.raises(ValueError, match="tolerance"):
        check_rtnet_regression(report, report, tolerance=1.5)
