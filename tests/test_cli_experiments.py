"""CLI experiment subcommands that drive the heavier harnesses."""

from repro.cli import main


def test_experiment_keys(capsys):
    assert main(["experiment", "keys"]) == 0
    output = capsys.readouterr().out
    assert "Figure 3" in output
    assert "PSGuard" in output
    # Five NS rows plus headers.
    assert output.count("\n") >= 8
