"""The metrics substrate: instruments, streaming quantiles, stats views."""

import math
import random

import pytest

from repro.obs.metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryBackedStats,
    series_name,
)


class TestCounterAndGauge:
    def test_counter_grows(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative_increments(self):
        counter = Counter("x_total")
        with pytest.raises(ValueError, match="only grow"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("view")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", link="0->1")
        b = registry.counter("hits_total", link="0->1")
        other = registry.counter("hits_total", link="0->2")
        assert a is b
        assert a is not other
        a.inc()
        assert registry.total("hits_total") == 1

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_series_name_rendering(self):
        assert series_name("x_total", ()) == "x_total"
        assert (
            series_name("x_total", (("a", "1"), ("b", "2")))
            == 'x_total{a="1",b="2"}'
        )


class TestHistogramQuantiles:
    def test_small_sample_is_exact(self):
        histogram = Histogram("latency")
        for value in (5.0, 1.0, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 3.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0
        assert histogram.mean == 3.0

    def test_untracked_quantile_raises(self):
        histogram = Histogram("latency")
        histogram.observe(1.0)
        with pytest.raises(KeyError, match="not tracked"):
            histogram.quantile(0.25)

    def test_empty_histogram_quantile_is_nan(self):
        histogram = Histogram("latency")
        assert math.isnan(histogram.quantile(0.5))
        assert math.isnan(histogram.mean)

    @pytest.mark.parametrize("q", DEFAULT_QUANTILES)
    def test_p2_accuracy_uniform(self, q):
        # P-squared on 20k uniform(0,1) samples: the estimate must land
        # within 0.02 absolute of the true quantile (= q itself).
        rng = random.Random(42)
        histogram = Histogram("u")
        for _ in range(20_000):
            histogram.observe(rng.random())
        assert histogram.quantile(q) == pytest.approx(q, abs=0.02)

    @pytest.mark.parametrize("q", DEFAULT_QUANTILES)
    def test_p2_accuracy_exponential(self, q):
        # A skewed distribution: within 10% relative of the analytic
        # quantile -ln(1-q)/lambda.
        rng = random.Random(7)
        histogram = Histogram("e")
        for _ in range(20_000):
            histogram.observe(rng.expovariate(2.0))
        true_quantile = -math.log(1.0 - q) / 2.0
        assert histogram.quantile(q) == pytest.approx(
            true_quantile, rel=0.10
        )

    def test_snapshot_shape(self):
        histogram = Histogram("h")
        for value in range(10):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["count"] == 10
        assert snap["min"] == 0.0
        assert snap["max"] == 9.0
        assert set(snap["quantiles"]) == {"p50", "p95", "p99"}


class TestTimer:
    def test_sim_clock_timer(self):
        # The timer must follow an injected (simulated) clock exactly --
        # no wall-clock contamination.
        now = {"t": 10.0}
        registry = MetricsRegistry()
        timer = registry.timer("span_seconds", clock=lambda: now["t"])
        with timer:
            now["t"] = 12.5
        histogram = registry.histogram("span_seconds")
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(2.5)

    def test_reentrant_nesting(self):
        now = {"t": 0.0}
        registry = MetricsRegistry()
        timer = registry.timer("nest_seconds", clock=lambda: now["t"])
        with timer:
            now["t"] = 1.0
            with timer:
                now["t"] = 3.0
            # inner observed 2.0; outer still running
        histogram = registry.histogram("nest_seconds")
        assert histogram.count == 2
        assert histogram.max == pytest.approx(3.0)   # outer: 0.0 -> 3.0
        assert histogram.min == pytest.approx(2.0)   # inner: 1.0 -> 3.0

    def test_handle_is_idempotent(self):
        now = {"t": 0.0}
        registry = MetricsRegistry()
        timer = registry.timer("h_seconds", clock=lambda: now["t"])
        handle = timer.start()
        now["t"] = 4.0
        assert handle.stop() == pytest.approx(4.0)
        handle.stop()
        assert registry.histogram("h_seconds").count == 1

    def test_observe_since(self):
        now = {"t": 5.0}
        registry = MetricsRegistry()
        timer = registry.timer("o_seconds", clock=lambda: now["t"])
        assert timer.observe_since(3.0) == pytest.approx(2.0)


class _DemoStats(RegistryBackedStats):
    _int_fields = ("hits", "misses")
    _metric_prefix = "demo_"


class TestRegistryBackedStats:
    def test_attribute_view_over_counters(self):
        registry = MetricsRegistry()
        stats = _DemoStats(registry, node="n1")
        stats.hits += 1
        stats.hits += 1
        stats.misses += 1
        assert stats.hits == 2
        assert isinstance(stats.hits, int)
        assert registry.counter("demo_hits_total", node="n1").value == 2

    def test_value_equality_like_a_dataclass(self):
        a = _DemoStats()
        b = _DemoStats()
        assert a == b
        a.hits += 1
        assert a != b
        assert a != object()

    def test_reset_and_as_dict(self):
        stats = _DemoStats()
        stats.inc("hits", 3)
        assert stats.as_dict() == {"hits": 3, "misses": 0}
        stats.reset()
        assert stats.as_dict() == {"hits": 0, "misses": 0}

    def test_unknown_attribute_still_raises(self):
        stats = _DemoStats()
        with pytest.raises(AttributeError):
            stats.nonexistent
