"""Exporters: JSON snapshots and Prometheus text exposition."""

import json

from repro.obs import Observability
from repro.obs.export import snapshot, to_json, to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sends_total", link="0->1").inc(3)
    registry.gauge("view").set(2)
    histogram = registry.histogram("latency_seconds")
    for value in (0.01, 0.02, 0.03, 0.04, 0.05, 0.06):
        histogram.observe(value)
    return registry


def test_snapshot_includes_all_instrument_kinds():
    document = snapshot(_populated_registry())
    assert document["counters"] == {'sends_total{link="0->1"}': 3}
    assert document["gauges"] == {"view": 2}
    assert document["histograms"]["latency_seconds"]["count"] == 6


def test_snapshot_includes_tracing_when_given():
    tracer = Tracer()
    tracer.start_trace(1)
    document = snapshot(MetricsRegistry(), tracer)
    assert document["tracing"]["traces_started"] == 1


def test_to_json_is_valid_and_nan_free():
    registry = _populated_registry()
    registry.histogram("empty_seconds")  # quantiles are NaN, min is inf
    document = json.loads(to_json(registry))
    assert document["histograms"]["empty_seconds"]["quantiles"]["p50"] is None
    assert document["counters"]['sends_total{link="0->1"}'] == 3


def test_prometheus_text_format():
    text = to_prometheus(_populated_registry())
    assert "# TYPE sends_total counter" in text
    assert 'sends_total{link="0->1"} 3' in text
    assert "# TYPE view gauge" in text
    assert "# TYPE latency_seconds summary" in text
    assert 'latency_seconds{quantile="0.5"}' in text
    assert "latency_seconds_sum" in text
    assert "latency_seconds_count 6" in text


def test_prometheus_type_comment_emitted_once_per_name():
    registry = MetricsRegistry()
    registry.counter("hits_total", node="a").inc()
    registry.counter("hits_total", node="b").inc()
    text = to_prometheus(registry)
    assert text.count("# TYPE hits_total counter") == 1


def test_observability_bundle_round_trip():
    obs = Observability()
    obs.registry.counter("x_total").inc()
    obs.tracer.start_trace(1)
    document = json.loads(obs.to_json())
    assert document["counters"]["x_total"] == 1
    assert document["tracing"]["traces_started"] == 1
    assert "x_total 1" in obs.to_prometheus()
