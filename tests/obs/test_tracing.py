"""Per-event traces: journeys reconstruct, accounting stays honest."""

import math

import pytest

from repro.obs.tracing import Tracer


def test_full_journey_reconstructs():
    tracer = Tracer()
    tracer.start_trace(1, at=0.0, size=256)
    tracer.span(1, "publish", 0, 0.0)
    tracer.span(1, "hop", 1, 0.0, end=0.01, attempt=0, link="0->1")
    tracer.span(1, "drop", 2, 0.01, end=0.02, attempt=0, link="1->2")
    tracer.span(1, "hop", 2, 0.05, end=0.06, attempt=1, link="1->2")
    tracer.span(1, "deliver", "subA", 0.06, end=0.07)
    tracer.span(1, "deliver", "subB", 0.06, end=0.09)
    trace = tracer.trace(1)
    assert trace.hop_count == 2
    assert trace.retransmits == 1
    assert trace.drops == 1
    assert trace.fan_out == 2
    assert trace.delivered
    assert trace.end_to_end_latency() == pytest.approx(0.09)
    assert trace.first_delivery_latency() == pytest.approx(0.07)
    assert trace.attrs == {"size": 256}


def test_multipath_split_is_visible():
    tracer = Tracer()
    tracer.start_trace("e", at=0.0)
    tracer.span("e", "hop", "a", 0.0, end=0.01, path=0)
    tracer.span("e", "hop", "b", 0.0, end=0.01, path=1)
    tracer.span("e", "deliver", "sub", 0.01, end=0.02, path=1)
    assert tracer.trace("e").paths == {0, 1}


def test_undelivered_trace_has_nan_latency():
    tracer = Tracer()
    tracer.start_trace(9, at=1.0)
    tracer.span(9, "drop", 1, 1.0)
    trace = tracer.trace(9)
    assert not trace.delivered
    assert math.isnan(trace.end_to_end_latency())


def test_duplicate_trace_id_rejected():
    tracer = Tracer()
    tracer.start_trace(5)
    with pytest.raises(ValueError, match="already started"):
        tracer.start_trace(5)


def test_auto_allocated_ids_are_distinct():
    tracer = Tracer()
    first = tracer.start_trace()
    second = tracer.start_trace()
    assert first != second


def test_unknown_id_counts_as_dropped_span():
    tracer = Tracer()
    tracer.span("never-started", "hop", 1, 0.0)
    assert tracer.dropped_spans == 1
    assert tracer.spans_recorded == 0


def test_eviction_separates_late_from_dropped():
    tracer = Tracer(max_traces=2)
    tracer.start_trace(1)
    tracer.start_trace(2)
    tracer.start_trace(3)          # evicts 1
    assert tracer.traces_evicted == 1
    assert len(tracer) == 2
    tracer.span(1, "hop", 0, 0.0)  # late, not an instrumentation bug
    tracer.span(99, "hop", 0, 0.0)
    assert tracer.late_spans == 1
    assert tracer.dropped_spans == 1


def test_summary_aggregates():
    tracer = Tracer()
    tracer.start_trace(1, at=0.0)
    tracer.span(1, "hop", 1, 0.0, end=0.01, attempt=1)
    tracer.span(1, "deliver", "s", 0.01, end=0.02)
    tracer.start_trace(2, at=0.0)
    tracer.span(2, "drop", 1, 0.0)
    summary = tracer.summary()
    assert summary["traces_started"] == 2
    assert summary["traces_delivered"] == 1
    assert summary["total_retransmits"] == 1
    assert summary["total_drops"] == 1
    assert summary["mean_end_to_end_latency"] == pytest.approx(0.02)
    assert summary["dropped_spans"] == 0
