"""Instrumented LRU cache: eviction order, counters, invalidation."""

import pytest

from repro.obs.lru import LRUCache
from repro.obs.metrics import MetricsRegistry


def test_rejects_nonpositive_capacity():
    for bad in (0, -1):
        with pytest.raises(ValueError):
            LRUCache(bad)


def test_get_counts_hits_and_misses():
    cache = LRUCache(4)
    assert cache.get("a") is None
    assert cache.get("a", "fallback") == "fallback"
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert (cache.hits, cache.misses) == (1, 2)
    assert cache.hit_rate == pytest.approx(1 / 3)


def test_hit_rate_zero_without_lookups():
    assert LRUCache(1).hit_rate == 0.0


def test_eviction_is_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh: "b" is now the LRU entry
    cache.put("c", 3)
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    assert cache.evictions == 1


def test_peek_does_not_count_or_refresh():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1
    assert (cache.hits, cache.misses) == (0, 0)
    cache.put("c", 3)  # "a" was not refreshed, so it is evicted first
    assert "a" not in cache


def test_put_refreshes_existing_key_without_eviction():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    assert len(cache) == 2
    assert cache.evictions == 0
    assert cache.peek("a") == 10


def test_get_or_compute_computes_once():
    cache = LRUCache(4)
    calls = []

    def compute():
        calls.append(1)
        return "v"

    assert cache.get_or_compute("k", compute) == "v"
    assert cache.get_or_compute("k", compute) == "v"
    assert len(calls) == 1
    assert (cache.hits, cache.misses) == (1, 1)


def test_invalidate_single_key():
    cache = LRUCache(4)
    cache.put("a", 1)
    assert cache.invalidate("a") is True
    assert cache.invalidate("a") is False
    assert "a" not in cache


def test_invalidate_where_predicate():
    cache = LRUCache(8)
    for n in range(6):
        cache.put(("f", n), n)
    removed = cache.invalidate_where(lambda key: key[1] % 2 == 0)
    assert removed == 3
    assert sorted(cache) == [("f", 1), ("f", 3), ("f", 5)]


def test_clear_keeps_lifetime_counters():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1


def test_registry_instruments_track_local_counts():
    registry = MetricsRegistry()
    cache = LRUCache(2, "widget_cache", registry, layer="test")
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")
    cache.get("zzz")
    cache.put("c", 3)  # evicts
    counters = registry.snapshot()["counters"]
    assert counters['widget_cache_hits_total{layer="test"}'] == cache.hits == 1
    assert counters['widget_cache_misses_total{layer="test"}'] == 1
    assert counters['widget_cache_evictions_total{layer="test"}'] == 1
    gauges = registry.snapshot()["gauges"]
    assert gauges['widget_cache_entries{layer="test"}'] == len(cache) == 2


def test_stats_summary_is_json_able():
    import json

    cache = LRUCache(3, "s")
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    stats = cache.stats()
    assert json.loads(json.dumps(stats)) == stats
    assert stats["name"] == "s"
    assert stats["entries"] == 1
    assert stats["capacity"] == 3
    assert stats["hit_rate"] == pytest.approx(0.5)
