"""Overload feedback above the overlay: engine, publisher, and facade.

The flow primitives bound *network* behaviour; these tests cover the
producer side of the loop -- AIMD pacing in the publisher, adaptive
batching in the dissemination engine, and edge admission control wired
through the ``System`` facade.
"""

import pytest

from repro.api import System
from repro.core.composite import CompositeKeySpace
from repro.core.kdc import KDC
from repro.core.publisher import Publisher
from repro.engine import DisseminationEngine, EngineConfig
from repro.flow import (
    BEST_EFFORT,
    HIGH,
    AdmissionController,
    AIMDRateLimiter,
    RateLimited,
    with_priority,
)
from repro.siena.events import Event
from repro.siena.filters import Filter


class _Transport:
    def __init__(self):
        self.batches = []

    def publish(self, events):
        self.batches.append(list(events))


class TestEngineOverload:
    def _engine(self, limiter=None, **config):
        transport = _Transport()
        engine = DisseminationEngine(
            transport,
            EngineConfig(batch_size=4, **config),
            clock=lambda: 0.0,
            limiter=limiter,
        )
        return engine, transport

    def test_signal_doubles_batch_size_up_to_ceiling(self):
        engine, _ = self._engine(max_batch_size=12)
        engine.signal_overload(now=0.0)
        assert engine.accumulator.batch_size == 8
        engine.signal_overload(now=1.0)
        assert engine.accumulator.batch_size == 12  # capped, not 16
        assert engine.overload_signals == 2
        assert engine.registry.get("engine_batch_size").value == 12

    def test_signal_backs_off_limiter_once_per_cooldown(self):
        limiter = AIMDRateLimiter(rate=100.0, cooldown=1.0)
        engine, _ = self._engine(limiter=limiter)
        engine.signal_overload(now=0.0)
        engine.signal_overload(now=0.5)  # within cooldown: no double cut
        assert limiter.rate == pytest.approx(50.0)
        assert engine.publish_interval() == pytest.approx(1 / 50.0)

    def test_dispatch_recovers_batch_size_and_rate(self):
        limiter = AIMDRateLimiter(rate=100.0, cooldown=0.0)
        engine, transport = self._engine(limiter=limiter)
        engine.signal_overload(now=0.0)
        assert engine.accumulator.batch_size == 8
        rate_after_cut = limiter.rate
        for k in range(8):
            engine.publish(Event({"topic": "t", "k": k}))
        assert len(transport.batches) == 1
        assert engine.accumulator.batch_size == 7  # slow shrink
        assert limiter.rate > rate_after_cut  # additive recovery

    def test_batch_size_never_shrinks_below_configured(self):
        engine, _ = self._engine()
        for k in range(16):
            engine.publish(Event({"topic": "t", "k": k}))
        assert engine.accumulator.batch_size == 4

    def test_publish_interval_zero_without_limiter(self):
        engine, _ = self._engine()
        assert engine.publish_interval() == 0.0

    def test_max_batch_size_validated(self):
        with pytest.raises(ValueError):
            EngineConfig(batch_size=8, max_batch_size=4)


class TestPublisherRateLimit:
    def _publisher(self, limiter):
        kdc = KDC(master_key=bytes(16))
        kdc.register_topic("news", CompositeKeySpace({}))
        return Publisher("P", kdc, limiter=limiter)

    def test_over_rate_publishes_raise_before_sealing(self):
        publisher = self._publisher(AIMDRateLimiter(rate=10.0))
        publisher.publish(Event({"topic": "news", "body": "a"}), at_time=0.0)
        with pytest.raises(RateLimited):
            publisher.publish(
                Event({"topic": "news", "body": "b"}), at_time=0.0
            )
        assert publisher.stats.events_rate_limited == 1
        assert publisher.stats.events_sealed == 1  # refusal cost no crypto
        # The next pacing slot admits again.
        publisher.publish(Event({"topic": "news", "body": "c"}), at_time=0.1)
        assert publisher.stats.events_sealed == 2

    def test_on_overload_halves_rate(self):
        limiter = AIMDRateLimiter(rate=40.0, cooldown=0.0)
        publisher = self._publisher(limiter)
        publisher.on_overload(at_time=0.0)
        assert limiter.rate == pytest.approx(20.0)

    def test_unlimited_publisher_never_rate_limits(self):
        kdc = KDC(master_key=bytes(16))
        kdc.register_topic("news", CompositeKeySpace({}))
        publisher = Publisher("P", kdc)
        for _ in range(50):
            publisher.publish(Event({"topic": "news", "body": "x"}))
        assert publisher.stats.events_rate_limited == 0


class TestFacadeAdmission:
    def _system(self, **admission):
        return (
            System.builder()
            .topic("news", numeric={"price": 128})
            .admission(**admission)
            .build()
        )

    def test_storm_is_shed_at_the_edge(self):
        system = self._system(rate=10.0, burst=5.0, reserve=0.0)
        watcher = system.subscribe(
            "w", Filter.numeric_range("news", "price", 0, 127)
        )
        feed = system.publisher("feed")
        for k in range(20):
            feed.publish(
                Event({"topic": "news", "price": k % 128, "body": "x"},
                      publisher="feed"),
                at_time=0.0,
            )
        assert len(watcher.opened) == 5  # burst capacity
        assert system.shed_events == 15
        assert feed.shed == 15
        assert system.admission.rejected == 15
        shed_metric = system.registry.get(
            "flow_shed_total", stage="admission", priority="normal"
        )
        assert shed_metric is not None and shed_metric.value == 15

    def test_reserve_protects_high_priority(self):
        system = self._system(rate=10.0, burst=10.0, reserve=0.5)
        watcher = system.subscribe(
            "w", Filter.numeric_range("news", "price", 0, 127)
        )
        feed = system.publisher("feed")
        for k in range(10):
            feed.publish(
                with_priority(
                    Event({"topic": "news", "price": 1, "body": "x"},
                          publisher="feed"),
                    BEST_EFFORT,
                ),
                at_time=0.0,
            )
        # Best effort may only drain half the bucket...
        assert system.shed_events == 5
        for _ in range(5):
            feed.publish(
                with_priority(
                    Event({"topic": "news", "price": 2, "body": "x"},
                          publisher="feed"),
                    HIGH,
                ),
                at_time=0.0,
            )
        # ...while the reserved half admits every high-priority event.
        assert system.shed_events == 5
        assert len(watcher.opened) == 10

    def test_admission_refills_over_publication_time(self):
        system = self._system(rate=10.0, burst=1.0, reserve=0.0)
        watcher = system.subscribe(
            "w", Filter.numeric_range("news", "price", 0, 127)
        )
        feed = system.publisher("feed")
        for k in range(10):
            feed.publish(
                Event({"topic": "news", "price": 3, "body": "x"},
                      publisher="feed"),
                at_time=k * 0.1,
            )
        assert system.shed_events == 0
        assert len(watcher.opened) == 10

    def test_prebuilt_controller_is_used_verbatim(self):
        controller = AdmissionController(rate=5.0, burst=1.0, reserve=0.0)
        system = (
            System.builder()
            .topic("news", numeric={})
            .admission(controller)
            .build()
        )
        assert system.admission is controller

    def test_unconfigured_system_has_no_gate(self):
        system = System.builder().topic("news", numeric={}).build()
        assert system.admission is None
        assert system.shed_events == 0
