"""Property-based shedding invariants (ISSUE 7 satellite).

Under *any* arrival pattern and *any* shed policy:

1. queue depth never exceeds its bound;
2. a higher-priority event is never shed while a lower-priority event
   remains queued (shedding always targets the worst class present);
3. accounting balances: accepted = taken + shed-from-queue + residual.
"""

from hypothesis import given, settings, strategies as st

from repro.flow.policy import BEST_EFFORT, HIGH
from repro.flow.queues import SHED_POLICIES, BoundedPriorityQueue

arrivals = st.lists(
    st.tuples(st.integers(0, 9999), st.integers(HIGH, BEST_EFFORT)),
    min_size=0,
    max_size=200,
)
policies = st.sampled_from(sorted(SHED_POLICIES))
capacities = st.integers(1, 16)
# Interleave occasional service (take) between arrivals.
service_every = st.integers(0, 5)


@settings(max_examples=200, deadline=None)
@given(
    arrivals=arrivals,
    policy=policies,
    capacity=capacities,
    service_every=service_every,
)
def test_shedding_invariants(arrivals, policy, capacity, service_every):
    q = BoundedPriorityQueue(capacity=capacity, shed_policy=policy)
    accepted = 0
    taken = []
    shed_from_queue = 0
    for index, (item, priority) in enumerate(arrivals):
        result = q.offer((item, index), priority)
        # Invariant 1: the bound holds after every single offer.
        assert len(q) <= capacity
        if result.accepted:
            accepted += 1
        if result.shed is not None:
            shed_item, shed_priority = result.shed
            if result.accepted:
                shed_from_queue += 1
            # Invariant 2: nothing better than the victim remains queued
            # below it -- i.e. the victim is in the worst class present.
            worst_queued = max(q.priorities(), default=None)
            if worst_queued is not None:
                assert shed_priority >= worst_queued or (
                    # After eviction the victim's class may have drained;
                    # it still must not beat the incoming event's class.
                    shed_priority >= priority
                )
            # The victim can never outrank the offered event's class
            # when the offered event was accepted over it.
            if result.accepted:
                assert shed_priority >= priority
        if service_every and index % service_every == 0:
            if q.take() is not None:
                taken.append(1)
    residual = len(q.drain())
    # Invariant 3: conservation of accepted events.
    assert accepted == len(taken) + shed_from_queue + residual


@settings(max_examples=120, deadline=None)
@given(arrivals=arrivals, policy=policies, capacity=capacities)
def test_high_priority_never_shed_while_worse_remains(
    arrivals, policy, capacity
):
    q = BoundedPriorityQueue(capacity=capacity, shed_policy=policy)
    for item, priority in arrivals:
        result = q.offer(item, priority)
        if result.shed is not None:
            _, shed_priority = result.shed
            # No queued event may be strictly worse than the victim.
            for queued_priority in q.priorities():
                assert queued_priority <= shed_priority


@settings(max_examples=120, deadline=None)
@given(arrivals=arrivals, policy=policies, capacity=capacities)
def test_service_order_is_priority_then_fifo(arrivals, policy, capacity):
    q = BoundedPriorityQueue(capacity=capacity, shed_policy=policy)
    for index, (item, priority) in enumerate(arrivals):
        q.offer((index, item), priority)
    drained = q.drain()
    priorities = [priority for _, priority in drained]
    assert priorities == sorted(priorities)
    for klass in set(priorities):
        indices = [
            entry[0] for entry, priority in drained if priority == klass
        ]
        assert indices == sorted(indices)
