"""Unit tests for credits, AIMD pacing, breakers, and admission."""

import pytest

from repro.flow.admission import AdmissionController, TokenBucket
from repro.flow.aimd import AIMDRateLimiter
from repro.flow.breaker import CLOSED, HALF_OPEN, OPEN, OverloadBreaker
from repro.flow.credit import CreditGate
from repro.flow.policy import (
    BEST_EFFORT,
    HIGH,
    NORMAL,
    FlowControlPolicy,
    priority_of,
    with_priority,
)
from repro.obs.metrics import MetricsRegistry
from repro.siena.events import Event


class TestPolicy:
    def test_priority_round_trip(self):
        event = Event({"topic": "t"})
        assert priority_of(event) == NORMAL
        stamped = with_priority(event, HIGH)
        assert priority_of(stamped) == HIGH
        assert priority_of(event, default=BEST_EFFORT) == BEST_EFFORT

    def test_policy_validation(self):
        FlowControlPolicy()  # defaults are coherent
        with pytest.raises(ValueError, match="credit_window"):
            FlowControlPolicy(queue_capacity=8, credit_window=9)
        with pytest.raises(ValueError, match="watermarks"):
            FlowControlPolicy(low_watermark=0.9, high_watermark=0.5)
        with pytest.raises(ValueError, match="shed policy"):
            FlowControlPolicy(shed_policy="nope")


class TestCreditGate:
    def test_window_accounting(self):
        gate = CreditGate(window=2)
        assert gate.try_acquire() and gate.try_acquire()
        assert gate.outstanding == 2
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()
        with pytest.raises(ValueError):
            CreditGate(window=0)

    def test_over_release_rejected(self):
        gate = CreditGate(window=1)
        with pytest.raises(RuntimeError, match="never acquired"):
            gate.release()

    def test_stall_timing_with_clock(self):
        now = [0.0]
        registry = MetricsRegistry()
        gate = CreditGate(
            window=1,
            registry=registry,
            clock=lambda: now[0],
            link="0->1",
        )
        assert gate.try_acquire()
        assert not gate.try_acquire()  # stall starts at t=0
        assert not gate.try_acquire()  # same stall, counted once
        assert gate.stalls == 1
        now[0] = 0.5
        gate.release()
        assert gate.try_acquire()
        assert gate.stall_seconds == pytest.approx(0.5)
        counter = registry.counter("flow_credit_stalls_total", link="0->1")
        assert counter.value == 1
        gauge = registry.gauge("flow_credits_available", link="0->1")
        assert gauge.value == 0


class TestAIMDRateLimiter:
    def test_pacing(self):
        limiter = AIMDRateLimiter(rate=10.0)
        assert limiter.try_acquire(now=0.0)
        assert not limiter.try_acquire(now=0.05)
        assert limiter.try_acquire(now=0.1)
        assert limiter.next_slot() == pytest.approx(0.2)

    def test_multiplicative_decrease_with_cooldown(self):
        limiter = AIMDRateLimiter(rate=100.0, cooldown=0.1)
        limiter.on_overload(now=0.0)
        limiter.on_overload(now=0.05)  # inside cooldown: ignored
        assert limiter.rate == pytest.approx(50.0)
        assert limiter.overloads == 1
        limiter.on_overload(now=0.2)
        assert limiter.rate == pytest.approx(25.0)

    def test_additive_increase_bounded(self):
        limiter = AIMDRateLimiter(
            rate=99.99, max_rate=100.0, increase=10.0
        )
        for _ in range(100):
            limiter.on_success()
        assert limiter.rate == pytest.approx(100.0)

    def test_floor(self):
        limiter = AIMDRateLimiter(rate=2.0, min_rate=1.5, cooldown=0.0)
        limiter.on_overload(now=0.0)
        limiter.on_overload(now=1.0)
        assert limiter.rate == pytest.approx(1.5)


class TestOverloadBreaker:
    def test_lifecycle(self):
        breaker = OverloadBreaker(
            high_depth=4, low_depth=1, cooldown=1.0, degrade_floor=NORMAL
        )
        assert breaker.state == CLOSED
        breaker.observe_depth(4, now=0.0)
        assert breaker.state == OPEN
        assert breaker.admits(HIGH, now=0.1)
        assert breaker.admits(NORMAL, now=0.1)
        assert not breaker.admits(BEST_EFFORT, now=0.1)
        assert breaker.rejections == 1
        # Cooldown elapses -> half-open, best-effort probes again.
        assert breaker.admits(BEST_EFFORT, now=1.5)
        assert breaker.state == HALF_OPEN
        breaker.observe_depth(4, now=1.6)  # relapse
        assert breaker.state == OPEN
        breaker.observe_depth(0, now=3.0)
        assert breaker.state == HALF_OPEN
        breaker.observe_depth(0, now=3.1)
        assert breaker.state == CLOSED

    def test_shed_trips_open_and_metrics(self):
        registry = MetricsRegistry()
        breaker = OverloadBreaker(
            high_depth=8,
            low_depth=2,
            cooldown=0.5,
            degrade_floor=NORMAL,
            registry=registry,
            broker="b0",
        )
        breaker.record_shed(now=0.0)
        assert breaker.state == OPEN
        assert registry.gauge("flow_breaker_state", broker="b0").value == OPEN
        assert not breaker.admits(BEST_EFFORT, now=0.1)
        assert (
            registry.counter(
                "flow_breaker_rejections_total", broker="b0"
            ).value
            == 1
        )
        transitions = registry.counter(
            "flow_breaker_transitions_total", state="open", broker="b0"
        )
        assert transitions.value == 1


class TestAdmission:
    def test_token_bucket_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(now=0.0)
        assert bucket.try_take(now=0.0)
        assert not bucket.try_take(now=0.0)
        assert bucket.try_take(now=0.1)

    def test_priority_reserve(self):
        controller = AdmissionController(
            rate=1.0, burst=10.0, reserve=0.5, reserve_floor=HIGH
        )
        # Best-effort may only spend down to the 5-token reserve.
        admitted = sum(
            controller.admit(BEST_EFFORT, now=0.0) for _ in range(10)
        )
        assert admitted == 5
        # High priority drains the reserve too.
        admitted = sum(controller.admit(HIGH, now=0.0) for _ in range(10))
        assert admitted == 5
        assert not controller.admit(HIGH, now=0.0)
        assert controller.rejected == 11

    def test_rejections_counted_as_admission_sheds(self):
        registry = MetricsRegistry()
        controller = AdmissionController(
            rate=1.0, burst=1.0, reserve=0.0, registry=registry, broker="b0"
        )
        assert controller.admit(BEST_EFFORT, now=0.0)
        assert not controller.admit(BEST_EFFORT, now=0.0)
        shed = registry.counter(
            "flow_shed_total",
            stage="admission",
            priority="best-effort",
            broker="b0",
        )
        assert shed.value == 1
