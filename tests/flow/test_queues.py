"""Unit tests for the bounded priority-classed shedding queue."""

import pytest

from repro.flow.policy import BEST_EFFORT, HIGH, NORMAL
from repro.flow.queues import BoundedPriorityQueue
from repro.obs.metrics import MetricsRegistry


def test_strict_priority_fifo_within_class():
    q = BoundedPriorityQueue(capacity=10)
    q.offer("n1", NORMAL)
    q.offer("b1", BEST_EFFORT)
    q.offer("h1", HIGH)
    q.offer("n2", NORMAL)
    q.offer("h2", HIGH)
    order = [item for item, _ in q.drain()]
    assert order == ["h1", "h2", "n1", "n2", "b1"]


def test_depth_never_exceeds_capacity():
    q = BoundedPriorityQueue(capacity=3)
    for k in range(20):
        q.offer(k, k % 3)
        assert len(q) <= 3
    assert q.peak_depth == 3


def test_drop_oldest_evicts_oldest_of_worst_class():
    q = BoundedPriorityQueue(capacity=3, shed_policy="drop-oldest")
    q.offer("b1", BEST_EFFORT)
    q.offer("b2", BEST_EFFORT)
    q.offer("h1", HIGH)
    result = q.offer("n1", NORMAL)
    assert result.accepted
    assert result.shed == ("b1", BEST_EFFORT)
    assert [item for item, _ in q.drain()] == ["h1", "n1", "b2"]


def test_drop_lowest_priority_evicts_newest_queued_of_worst_class():
    q = BoundedPriorityQueue(capacity=3, shed_policy="drop-lowest-priority")
    q.offer("b1", BEST_EFFORT)
    q.offer("b2", BEST_EFFORT)
    q.offer("h1", HIGH)
    result = q.offer("b3", BEST_EFFORT)
    assert result.accepted
    assert result.shed == ("b2", BEST_EFFORT)
    assert [item for item, _ in q.drain()] == ["h1", "b1", "b3"]


def test_reject_new_refuses_incoming_in_worst_class():
    q = BoundedPriorityQueue(capacity=2, shed_policy="reject-new")
    q.offer("b1", BEST_EFFORT)
    q.offer("b2", BEST_EFFORT)
    result = q.offer("b3", BEST_EFFORT)
    assert not result.accepted
    assert result.shed == ("b3", BEST_EFFORT)
    # ... but still makes room for better-class arrivals.
    result = q.offer("h1", HIGH)
    assert result.accepted
    assert result.shed == ("b2", BEST_EFFORT)


@pytest.mark.parametrize(
    "policy", ["drop-oldest", "drop-lowest-priority", "reject-new"]
)
def test_incoming_worse_than_everything_queued_is_rejected(policy):
    q = BoundedPriorityQueue(capacity=2, shed_policy=policy)
    q.offer("h1", HIGH)
    q.offer("n1", NORMAL)
    result = q.offer("b1", BEST_EFFORT)
    assert not result.accepted
    assert result.shed == ("b1", BEST_EFFORT)
    assert [item for item, _ in q.drain()] == ["h1", "n1"]


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown shed policy"):
        BoundedPriorityQueue(capacity=1, shed_policy="drop-random")
    with pytest.raises(ValueError, match="at least one"):
        BoundedPriorityQueue(capacity=0)


def test_take_on_empty_returns_none():
    q = BoundedPriorityQueue(capacity=1)
    assert q.take() is None
    q.offer("x", NORMAL)
    assert q.take() == ("x", NORMAL)
    assert q.take() is None


def test_metrics_emission():
    registry = MetricsRegistry()
    q = BoundedPriorityQueue(
        capacity=2,
        shed_policy="drop-oldest",
        registry=registry,
        broker="b0",
        queue="ingress",
    )
    q.offer("b1", BEST_EFFORT)
    q.offer("b2", BEST_EFFORT)
    q.offer("n1", NORMAL)
    assert q.shed_total == 1
    shed = registry.counter(
        "flow_shed_total",
        priority="best-effort",
        broker="b0",
        queue="ingress",
    )
    assert shed.value == 1
    depth = registry.gauge("flow_queue_depth", broker="b0", queue="ingress")
    peak = registry.gauge(
        "flow_queue_peak_depth", broker="b0", queue="ingress"
    )
    assert depth.value == 2
    assert peak.value == 2
    q.drain()
    assert depth.value == 0
    assert peak.value == 2
