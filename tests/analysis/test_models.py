"""The Section 3.2.2 analytical comparison against Tables 3-6."""

import pytest

from repro.analysis.models import (
    MMNPopulation,
    cost_ratio_lower_bound,
    heavy_tail_overlap_multiplier,
    kdc_cost_table,
    overlap_probability,
    psguard_epoch_messaging,
    psguard_join_keys,
    subscriber_cost_table,
    subscriber_group_epoch_messaging,
    subscriber_group_join_keys,
)


class TestMMN:
    def test_active_subscribers(self):
        population = MMNPopulation(1000, arrival_rate=1.0, departure_rate=3.0)
        assert population.active_subscribers == pytest.approx(250.0)

    def test_join_rate_balances(self):
        population = MMNPopulation(1000, arrival_rate=2.0, departure_rate=2.0)
        # join rate = departure rate in steady state = NS * mu.
        assert population.join_rate == pytest.approx(
            population.active_subscribers * 2.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MMNPopulation(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MMNPopulation(10, 0.0, 1.0)


class TestOverlap:
    def test_formula(self):
        assert overlap_probability(100, 10) == pytest.approx(0.2)

    def test_saturates_at_one(self):
        assert overlap_probability(100, 80) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            overlap_probability(0, 1)


class TestTable5:
    """NS = 10^3, R = 10^4: the paper's ratio column."""

    @pytest.mark.parametrize(
        "span,expected",
        [(10, 1.81), (10**2, 9.04), (10**3, 60.18), (10**4, 451.81)],
    )
    def test_ratio(self, span, expected):
        ratio = cost_ratio_lower_bound(10**3, 10**4, span)
        assert ratio == pytest.approx(expected, rel=0.01)


class TestTable6:
    """phi = 100, R = 10^4: ratio scales linearly with NS."""

    @pytest.mark.parametrize(
        "active,expected",
        [(10, 0.09), (10**2, 0.90), (10**3, 9.04), (10**4, 90.36)],
    )
    def test_ratio(self, active, expected):
        ratio = cost_ratio_lower_bound(active, 10**4, 100)
        assert ratio == pytest.approx(expected, rel=0.01)

    def test_group_approach_wins_only_for_tiny_populations(self):
        """Ratio < 1 below ~NS=100 (the paper's break-even discussion)."""
        assert cost_ratio_lower_bound(10, 10**4, 100) < 1.0
        assert cost_ratio_lower_bound(1000, 10**4, 100) > 1.0


class TestEpochMessaging:
    def test_ratio_consistency(self):
        """The two epoch costs reproduce the tabulated ratio."""
        population = MMNPopulation(10_000, 1.0, 9.0)
        group = subscriber_group_epoch_messaging(population, 100.0, 10**4, 100)
        psguard = psguard_epoch_messaging(population, 100.0, 100)
        assert group / psguard == pytest.approx(
            cost_ratio_lower_bound(
                population.active_subscribers, 10**4, 100
            ),
            rel=1e-9,
        )

    def test_psguard_cost_independent_of_population(self):
        small = MMNPopulation(100, 1.0, 1.0)
        large = MMNPopulation(100_000, 1.0, 1.0)
        per_join_small = psguard_epoch_messaging(small, 1.0, 64) / small.join_rate
        per_join_large = psguard_epoch_messaging(large, 1.0, 64) / large.join_rate
        assert per_join_small == pytest.approx(per_join_large)

    def test_group_cost_scales_with_population(self):
        small = MMNPopulation(100, 1.0, 1.0)
        large = MMNPopulation(10_000, 1.0, 1.0)
        per_join_small = (
            subscriber_group_epoch_messaging(small, 1.0, 10**4, 100)
            / small.join_rate
        )
        per_join_large = (
            subscriber_group_epoch_messaging(large, 1.0, 10**4, 100)
            / large.join_rate
        )
        assert per_join_large == pytest.approx(100 * per_join_small)


class TestJoinKeys:
    def test_psguard_is_log_span(self):
        assert psguard_join_keys(1024) == pytest.approx(10.0)

    def test_group_is_three_overlaps(self):
        assert subscriber_group_join_keys(1000, 10**4, 100) == pytest.approx(
            3 * 1000 * 0.02
        )


class TestHeavyTail:
    def test_uniform_is_the_minimum(self):
        uniform = heavy_tail_overlap_multiplier([1.0] * 100, 10)
        assert uniform == pytest.approx(1.0)

    def test_concentration_inflates_overlap(self):
        concentrated = [10.0] * 10 + [0.1] * 90
        assert heavy_tail_overlap_multiplier(concentrated, 10) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            heavy_tail_overlap_multiplier([], 10)
        with pytest.raises(ValueError):
            heavy_tail_overlap_multiplier([0.0], 10)


class TestTables3And4:
    def test_kdc_table_statelessness(self):
        table = kdc_cost_table(1000, 10**4, 100)
        assert table["psguard"]["stateless"] is True
        assert table["subscriber_group"]["stateless"] is False

    def test_kdc_storage_scaling(self):
        table = kdc_cost_table(1000, 10**4, 100)
        assert table["psguard"]["storage_keys"] == 1.0
        assert table["subscriber_group"]["storage_keys"] == 2000.0

    def test_subscriber_table_event_processing(self):
        table = subscriber_cost_table(1000, 10**4, 100, hash_cost=1,
                                      decrypt_cost=10)
        psguard = table["psguard"]["event_processing"]
        group = table["subscriber_group"]["event_processing"]
        # PSGuard pays D + H log(phi); the group approach only D.
        assert psguard > group
        assert psguard - group == pytest.approx(psguard_join_keys(100))

    def test_subscriber_table_join_traffic(self):
        table = subscriber_cost_table(1000, 10**4, 100)
        assert table["psguard"]["join_keys_active_subscribers"] == 0.0
        assert table["subscriber_group"]["join_keys_active_subscribers"] > 0
