"""NAKT cost formulas against the paper's Tables 1-2."""

import math

import pytest

from repro.analysis.costs import NAKTCostModel, measure_hash_microseconds
from repro.core.nakt import NumericKeySpace


class TestTable1MaxCosts:
    """Table 1 reports, for lc=1: R=10^2 -> 12 keys; 10^3 -> 18; 10^4 -> 26.

    Those are ceil(2 log2 R - 2).
    """

    @pytest.mark.parametrize(
        "range_size,expected_keys",
        [(10**2, 12), (10**3, 18), (10**4, 26)],
    )
    def test_max_keys(self, range_size, expected_keys):
        model = NAKTCostModel(range_size)
        assert math.ceil(model.max_keys()) == expected_keys

    @pytest.mark.parametrize("range_size", [10**2, 10**3, 10**4])
    def test_max_keygen_is_4log_minus_2(self, range_size):
        model = NAKTCostModel(range_size)
        assert model.max_keygen_hashes() == pytest.approx(
            4 * math.log2(range_size) - 2
        )

    @pytest.mark.parametrize("range_size", [10**2, 10**3, 10**4])
    def test_max_derive_is_tree_depth(self, range_size):
        model = NAKTCostModel(range_size)
        assert model.max_derive_hashes() == pytest.approx(
            math.log2(range_size)
        )

    def test_paper_microsecond_scale(self):
        """The paper's us figures imply ~0.96us per hash; any sane host
        is within two orders of magnitude of that."""
        measured = measure_hash_microseconds(2000)
        assert 0.01 < measured < 100


class TestTable2AverageCosts:
    """Table 2 (R=10^4): phi=10 -> 3.32 keys; 10^2 -> 6.64; 10^3 -> 9.97."""

    @pytest.mark.parametrize(
        "span,expected", [(10, 3.32), (10**2, 6.64), (10**3, 9.97)]
    )
    def test_avg_keys(self, span, expected):
        model = NAKTCostModel(10**4)
        assert model.avg_keys(span) == pytest.approx(expected, abs=0.01)

    @pytest.mark.parametrize("span", [10, 10**2, 10**3])
    def test_avg_derive_is_log_span(self, span):
        model = NAKTCostModel(10**4)
        assert model.avg_derive_hashes(span) == pytest.approx(
            math.log2(span)
        )

    def test_avg_keygen_formula(self):
        model = NAKTCostModel(10**4)
        assert model.avg_keygen_hashes(100) == pytest.approx(
            math.log2(10**4) + math.log2(100) - 1
        )


class TestModelValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NAKTCostModel(1)
        with pytest.raises(ValueError):
            NAKTCostModel(100, least_count=0)
        with pytest.raises(ValueError):
            NAKTCostModel(100, least_count=200)

    def test_microseconds_require_measurement(self):
        model = NAKTCostModel(100)
        with pytest.raises(ValueError):
            model.max_keygen_microseconds()

    def test_microsecond_conversion(self):
        model = NAKTCostModel(100, hash_microseconds=1.0)
        assert model.max_derive_microseconds() == pytest.approx(
            model.max_derive_hashes()
        )
        assert model.avg_keygen_microseconds(10) == pytest.approx(
            model.avg_keygen_hashes(10)
        )
        assert model.avg_derive_microseconds(10) == pytest.approx(
            model.avg_derive_hashes(10)
        )

    def test_least_count_reduces_costs(self):
        fine = NAKTCostModel(256, least_count=1)
        coarse = NAKTCostModel(256, least_count=4)
        assert coarse.max_keys() < fine.max_keys()
        assert coarse.max_derive_hashes() < fine.max_derive_hashes()


class TestModelAgreesWithImplementation:
    """The closed-form bounds must hold for the real NAKT."""

    def test_max_keys_bounds_every_cover(self):
        model = NAKTCostModel(256)
        space = NumericKeySpace("v", 256)
        worst = max(
            len(space.cover(low, high))
            for low in range(0, 256, 7)
            for high in range(low, 256, 13)
        )
        assert worst <= math.ceil(model.max_keys())

    def test_avg_keys_approximates_measured_average(self):
        import random

        rng = random.Random(5)
        model = NAKTCostModel(1024)
        space = NumericKeySpace("v", 1024)
        span = 64
        sizes = []
        for _ in range(300):
            low = rng.randint(0, 1023 - span)
            sizes.append(len(space.cover(low, low + span - 1)))
        measured = sum(sizes) / len(sizes)
        assert measured == pytest.approx(model.avg_keys(span), rel=0.5)
