"""M/M/N churn simulation vs. the closed-form model."""

import pytest

from repro.analysis.churn import ChurnSimulation, relative_error
from repro.analysis.models import MMNPopulation


@pytest.fixture(scope="module")
def churn_run():
    population = MMNPopulation(
        total_subscribers=120, arrival_rate=0.05, departure_rate=0.05
    )
    simulation = ChurnSimulation(
        population,
        range_size=1024,
        subscription_span=64,
        epoch_length=50.0,
        seed=31,
    )
    result = simulation.run(duration=600.0)
    return population, simulation, result


def test_active_population_matches_mmn(churn_run):
    """NS = N lambda / (lambda + mu), within stochastic tolerance."""
    population, _, result = churn_run
    # Ignore the warm-up third of the samples.
    warm = result.active_samples[len(result.active_samples) // 3:]
    measured = sum(warm) / len(warm)
    assert relative_error(measured, population.active_subscribers) < 0.25


def test_join_rate_matches_mmn(churn_run):
    population, _, result = churn_run
    assert relative_error(result.join_rate, population.join_rate) < 0.25


def test_population_conservation(churn_run):
    _, simulation, result = churn_run
    assert result.joins - result.leaves == len(simulation._active)
    assert 0 <= len(simulation._active) <= 120


def test_psguard_messaging_tracks_log_span(churn_run):
    """PSGuard ships ~log2(span) keys per join, nothing else."""
    import math

    _, _, result = churn_run
    per_join = result.psguard_keys_sent / result.joins
    assert per_join <= 2 * math.log2(64)
    assert per_join >= 0.5 * math.log2(64)


def test_group_messaging_exceeds_psguard(churn_run):
    """The measured counterpart of the Table 5/6 ratios."""
    _, _, result = churn_run
    group_total = result.group_keys_sent + result.group_epoch_messages
    assert group_total > result.psguard_keys_sent


def test_epochs_completed(churn_run):
    _, _, result = churn_run
    assert result.epochs_completed == pytest.approx(600.0 / 50.0, abs=1)


def test_group_epoch_rekey_generates_traffic(churn_run):
    _, _, result = churn_run
    assert result.group_epoch_messages > 0


def test_span_validation():
    population = MMNPopulation(10, 1.0, 1.0)
    with pytest.raises(ValueError):
        ChurnSimulation(population, range_size=100, subscription_span=0)
    with pytest.raises(ValueError):
        ChurnSimulation(population, range_size=100, subscription_span=101)


def test_relative_error_guard():
    with pytest.raises(ValueError):
        relative_error(1.0, 0.0)
    assert relative_error(11.0, 10.0) == pytest.approx(0.1)
